"""Expression → Python source compiler (the whole-stage-codegen analogue).

A *bound* expression tree (one whose leaves are
:class:`~repro.sql.expressions.BoundReference` ordinals) is lowered to
a straight-line sequence of Python statements operating on a row tuple
``r``, compiled once with :func:`compile`, and called per row without
any tree walking. SQL three-valued logic is preserved exactly: the
generated code branches on ``None`` in the same order the interpreter
does, so a compiled kernel never evaluates a sub-expression the
interpreter would have skipped.

Four kernel shapes are produced:

* :func:`compile_predicate` / :func:`compile_projection` — per-row
  functions (used by join residual conditions and sort keys);
* :func:`compile_filter_project_kernel` — the fused batch kernel: one
  generated loop applying filter + projection to a chunk of rows and
  returning the surviving output tuples (Spark's fused
  ``WholeStageCodegen(Filter, Project)`` stage);
* :func:`compile_key_extractor` — composite grouping / join key
  extraction, optionally folding a NULL component into ``None`` (the
  SQL join-key semantics).

Every ``try_*`` / ``*_fn`` wrapper falls back to the interpreted
``Expression.eval`` path on *any* compile error, records the fallback
in :data:`STATS`, and logs it — an unsupported node costs speed, never
correctness (and never disturbs fault-injection behaviour, because the
interpreted operators are what the chaos suite certifies).
"""

from __future__ import annotations

import itertools
import re
import threading
import warnings
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Iterable, Iterator, Sequence

import logging

from repro.analysis.codegen_rules import validate_generated_source
from repro.errors import FAIL_STOP, CodegenError
from repro.sql import expressions as E

logger = logging.getLogger("repro.codegen")

#: Rows handed to a fused kernel per call; bounds peak memory while
#: keeping the per-chunk Python-loop overhead negligible.
DEFAULT_CHUNK_ROWS = 1024

_fn_ids = itertools.count(1)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------


@dataclass
class CodegenStats:
    """Counters for compiled kernels and interpreter fallbacks."""

    compiled: int = 0
    fallbacks: int = 0
    last_error: str | None = None
    fallback_kinds: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "CodegenStats":
        return CodegenStats(
            self.compiled, self.fallbacks, self.last_error, dict(self.fallback_kinds)
        )


STATS = CodegenStats()
_stats_lock = threading.Lock()


def stats() -> CodegenStats:
    """A point-in-time copy of the global codegen counters."""
    with _stats_lock:
        return STATS.snapshot()


def reset_stats() -> None:
    with _stats_lock:
        STATS.compiled = 0
        STATS.fallbacks = 0
        STATS.last_error = None
        STATS.fallback_kinds.clear()


def _note_compiled() -> None:
    with _stats_lock:
        STATS.compiled += 1


def _note_fallback(kind: str, expr: object, exc: BaseException) -> None:
    with _stats_lock:
        STATS.fallbacks += 1
        STATS.last_error = f"{kind}: {exc}"
        STATS.fallback_kinds[kind] = STATS.fallback_kinds.get(kind, 0) + 1
    logger.warning(
        "codegen fallback (%s) for %r: %s — using the interpreted path",
        kind,
        expr,
        exc,
    )


# ----------------------------------------------------------------------
# Source emission
# ----------------------------------------------------------------------


class _Emitter:
    """Accumulates indented statements, temps, and a constant pool."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 1
        self._temps = itertools.count(1)
        self.consts: list[Any] = []

    def temp(self) -> str:
        return f"t{next(self._temps)}"

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def const(self, value: Any) -> str:
        """Bind ``value`` into the function via a default argument."""
        self.consts.append(value)
        return f"_k{len(self.consts) - 1}"

    class _Block:
        def __init__(self, emitter: "_Emitter") -> None:
            self.emitter = emitter

        def __enter__(self) -> None:
            self.emitter.depth += 1

        def __exit__(self, *exc: Any) -> None:
            self.emitter.depth -= 1

    def block(self) -> "_Emitter._Block":
        return _Emitter._Block(self)


def _unsupported(expr: E.Expression, why: str) -> CodegenError:
    return CodegenError(f"cannot compile {type(expr).__name__} ({why}): {expr!r}")


def _gen(expr: E.Expression, em: _Emitter) -> str:
    """Emit statements evaluating ``expr``; returns the result atom.

    The atom is either a temp variable, a tuple index ``r[i]``, or a
    literal — always side-effect free and cheap to re-read.
    """
    if isinstance(expr, E.Alias):
        return _gen(expr.child, em)

    if isinstance(expr, E.BoundReference):
        return f"r[{expr.ordinal}]"

    if isinstance(expr, E.Literal):
        value = expr.value
        if value is None or isinstance(value, (bool, int, str)):
            return repr(value)
        if isinstance(value, float):
            # repr of inf/nan is not valid source; pool those.
            if value == value and value not in (float("inf"), float("-inf")):
                return repr(value)
        return em.const(value)

    if isinstance(expr, E.Not):
        a = _gen(expr.child, em)
        v = em.temp()
        em.line(f"{v} = (not {a}) if {a} is not None else None")
        return v

    if isinstance(expr, E.UnaryMinus):
        a = _gen(expr.child, em)
        v = em.temp()
        em.line(f"{v} = -({a}) if {a} is not None else None")
        return v

    if isinstance(expr, E.IsNull):
        a = _gen(expr.child, em)
        v = em.temp()
        em.line(f"{v} = {a} is None")
        return v

    if isinstance(expr, E.IsNotNull):
        a = _gen(expr.child, em)
        v = em.temp()
        em.line(f"{v} = {a} is not None")
        return v

    if isinstance(expr, E.Cast):
        caster = E.Cast._casters.get(expr.dtype.name)
        if caster is None:
            raise _unsupported(expr, f"no caster for {expr.dtype.name}")
        a = _gen(expr.child, em)
        fn = em.const(caster)
        v = em.temp()
        em.line(f"if {a} is None:")
        with em.block():
            em.line(f"{v} = None")
        em.line("else:")
        with em.block():
            em.line("try:")
            with em.block():
                em.line(f"{v} = {fn}({a})")
            em.line("except (TypeError, ValueError):")
            with em.block():
                em.line(f"{v} = None")
        return v

    if isinstance(expr, (E.BinaryArithmetic, E.BinaryComparison)):
        return _gen_binary(expr, em)

    if isinstance(expr, E.And):
        return _gen_and_or(expr, em, short="False", both="True")

    if isinstance(expr, E.Or):
        return _gen_and_or(expr, em, short="True", both="False")

    if isinstance(expr, E.In):
        return _gen_in(expr, em)

    if isinstance(expr, E.Like):
        return _gen_like(expr, em)

    if isinstance(expr, E.CaseWhen):
        v = em.temp()
        _gen_case(expr, 0, v, em)
        return v

    if isinstance(expr, E.Coalesce):
        v = em.temp()
        _gen_coalesce(expr.children, 0, v, em)
        return v

    if isinstance(expr, E.ScalarFunction):
        v = em.temp()
        fn = em.const(expr.fn)
        _gen_scalar_call(expr.children, 0, [], fn, v, em)
        return v

    raise _unsupported(expr, "unsupported node type")


def _gen_binary(expr: E.BinaryExpression, em: _Emitter) -> str:
    """Null-propagating infix op; the right side is only evaluated when
    the left is non-NULL, matching the interpreter's laziness."""
    a = _gen(expr.left, em)
    v = em.temp()
    em.line(f"if {a} is None:")
    with em.block():
        em.line(f"{v} = None")
    em.line("else:")
    with em.block():
        b = _gen(expr.right, em)
        em.line(f"if {b} is None:")
        with em.block():
            em.line(f"{v} = None")
        em.line("else:")
        with em.block():
            if isinstance(expr, E.Divide):
                em.line(f"{v} = None if {b} == 0 else {a} / {b}")
            elif isinstance(expr, E.Modulo):
                em.line(f"{v} = None if {b} == 0 else {a} % {b}")
            else:
                op = getattr(type(expr), "py_op", None)
                if op is None:
                    raise _unsupported(expr, "no py_op token")
                em.line(f"{v} = {a} {op} {b}")
    return v


def _gen_and_or(expr: E.BinaryExpression, em: _Emitter, short: str, both: str) -> str:
    """Kleene AND/OR: ``short`` is the dominating value (False for AND,
    True for OR), ``both`` the value when neither side dominates."""
    a = _gen(expr.left, em)
    v = em.temp()
    em.line(f"if {a} is {short}:")
    with em.block():
        em.line(f"{v} = {short}")
    em.line("else:")
    with em.block():
        b = _gen(expr.right, em)
        em.line(f"if {b} is {short}:")
        with em.block():
            em.line(f"{v} = {short}")
        em.line(f"elif {a} is None or {b} is None:")
        with em.block():
            em.line(f"{v} = None")
        em.line("else:")
        with em.block():
            em.line(f"{v} = {both}")
    return v


def _gen_in(expr: E.In, em: _Emitter) -> str:
    if not all(isinstance(o, E.Literal) for o in expr.options):
        raise _unsupported(expr, "non-literal IN list")
    values = [o.value for o in expr.options]  # type: ignore[union-attr]
    saw_null = any(v is None for v in values)
    members = em.const(frozenset(v for v in values if v is not None))
    a = _gen(expr.value, em)
    v = em.temp()
    miss = "None" if saw_null else "False"
    em.line(f"if {a} is None:")
    with em.block():
        em.line(f"{v} = None")
    em.line("else:")
    with em.block():
        em.line(f"{v} = True if {a} in {members} else {miss}")
    return v


def _gen_like(expr: E.Like, em: _Emitter) -> str:
    pattern = expr.right
    if not (isinstance(pattern, E.Literal) and isinstance(pattern.value, str)):
        raise _unsupported(expr, "non-literal LIKE pattern")
    regex = "^" + re.escape(pattern.value).replace("%", ".*").replace("_", ".") + "$"
    matcher = em.const(re.compile(regex).match)
    a = _gen(expr.left, em)
    v = em.temp()
    em.line(f"{v} = None if {a} is None else ({matcher}({a}) is not None)")
    return v


def _gen_case(expr: E.CaseWhen, index: int, v: str, em: _Emitter) -> None:
    if index == len(expr.branches):
        if expr.else_value is not None:
            atom = _gen(expr.else_value, em)
            em.line(f"{v} = {atom}")
        else:
            em.line(f"{v} = None")
        return
    cond, value = expr.branches[index]
    c = _gen(cond, em)
    em.line(f"if {c} is True:")
    with em.block():
        atom = _gen(value, em)
        em.line(f"{v} = {atom}")
    em.line("else:")
    with em.block():
        _gen_case(expr, index + 1, v, em)


def _gen_coalesce(
    children: Sequence[E.Expression], index: int, v: str, em: _Emitter
) -> None:
    if index == len(children):
        em.line(f"{v} = None")
        return
    atom = _gen(children[index], em)
    em.line(f"if {atom} is not None:")
    with em.block():
        em.line(f"{v} = {atom}")
    em.line("else:")
    with em.block():
        _gen_coalesce(children, index + 1, v, em)


def _gen_scalar_call(
    args: Sequence[E.Expression],
    index: int,
    atoms: list[str],
    fn: str,
    v: str,
    em: _Emitter,
) -> None:
    """Null-in/null-out call: later args are not evaluated once an
    earlier one came up NULL (interpreter argument order preserved)."""
    if index == len(args):
        em.line(f"{v} = {fn}({', '.join(atoms)})")
        return
    atom = _gen(args[index], em)
    em.line(f"if {atom} is None:")
    with em.block():
        em.line(f"{v} = None")
    em.line("else:")
    with em.block():
        _gen_scalar_call(args, index + 1, atoms + [atom], fn, v, em)


# ----------------------------------------------------------------------
# Function assembly
# ----------------------------------------------------------------------


def _assemble(
    name: str, params: str, em: _Emitter, header: Sequence[str] = ()
) -> Callable[..., Any]:
    """Compile the emitted body into a callable.

    Constants are bound as default arguments so the generated code
    reads them as locals, not globals.
    """
    defaults = "".join(f", _k{i}=_k{i}" for i in range(len(em.consts)))
    lines = [f"def {name}({params}{defaults}):"]
    lines.extend("    " + h for h in header)
    lines.extend(em.lines)
    src = "\n".join(lines) + "\n"
    problems = validate_generated_source(src, consts=em.consts)
    if problems:
        raise CodegenError(
            f"kernel {name} failed validation: "
            + "; ".join(f"{p.rule} {p.message}" for p in problems)
        )
    namespace: dict[str, Any] = {
        f"_k{i}": value for i, value in enumerate(em.consts)
    }
    with warnings.catch_warnings():
        # Inlined literals produce correct-but-noisy comparisons like
        # ``1 is None`` (always False); CPython flags them.
        warnings.simplefilter("ignore", SyntaxWarning)
        code = compile(src, f"<repro.codegen:{name}>", "exec")
    exec(code, namespace)
    fn = namespace[name]
    fn.__codegen_source__ = src
    return fn


def compile_predicate(expr: E.Expression) -> Callable[[tuple], Any]:
    """Compile a bound boolean expression to ``fn(row) -> True|False|None``."""
    em = _Emitter()
    atom = _gen(expr, em)
    em.line(f"return {atom}")
    return _assemble(f"_pred{next(_fn_ids)}", "r", em)


def compile_value(expr: E.Expression) -> Callable[[tuple], Any]:
    """Compile a bound expression to ``fn(row) -> value``."""
    em = _Emitter()
    atom = _gen(expr, em)
    em.line(f"return {atom}")
    return _assemble(f"_val{next(_fn_ids)}", "r", em)


def compile_projection(exprs: Sequence[E.Expression]) -> Callable[[tuple], tuple]:
    """Compile a projection list to ``fn(row) -> output tuple``."""
    em = _Emitter()
    atoms = [_gen(e, em) for e in exprs]
    inner = ", ".join(atoms) + ("," if len(atoms) == 1 else "")
    em.line(f"return ({inner})")
    return _assemble(f"_proj{next(_fn_ids)}", "r", em)


def compile_key_extractor(
    exprs: Sequence[E.Expression], null_to_none: bool = False
) -> Callable[[tuple], tuple | None]:
    """Compile composite key extraction.

    ``null_to_none=True`` gives SQL join-key semantics: any NULL
    component collapses the whole key to ``None`` (the row can never
    match). ``False`` keeps NULL components — grouping keys group the
    NULLs together, as the interpreter does.
    """
    em = _Emitter()
    atoms = []
    for expr in exprs:
        atom = _gen(expr, em)
        if null_to_none:
            em.line(f"if {atom} is None:")
            with em.block():
                em.line("return None")
        atoms.append(atom)
    inner = ", ".join(atoms) + ("," if len(atoms) == 1 else "")
    em.line(f"return ({inner})")
    return _assemble(f"_key{next(_fn_ids)}", "r", em)


def compile_filter_project_kernel(
    condition: E.Expression | None,
    projections: Sequence[E.Expression] | None,
) -> Callable[[Iterable[tuple]], list[tuple]]:
    """The fused batch kernel: ``kernel(rows) -> surviving out-tuples``.

    One generated loop evaluates the predicate and, for rows where it
    is exactly True, the projection — no per-row function calls at all.
    With ``projections=None`` input rows pass through unchanged; with
    ``condition=None`` every row is projected.
    """
    if condition is None and projections is None:
        raise CodegenError("fused kernel needs a condition or a projection")
    em = _Emitter()
    em.line("out = []")
    em.line("_append = out.append")
    em.line("for r in rows:")
    with em.block():
        if condition is not None:
            pred = _gen(condition, em)
            em.line(f"if {pred} is not True:")
            with em.block():
                em.line("continue")
        if projections is None:
            em.line("_append(r)")
        else:
            atoms = [_gen(e, em) for e in projections]
            inner = ", ".join(atoms) + ("," if len(atoms) == 1 else "")
            em.line(f"_append(({inner}))")
    em.line("return out")
    return _assemble(f"_fused{next(_fn_ids)}", "rows", em)


# ----------------------------------------------------------------------
# Fallback-wrapped entry points (what the operators call)
# ----------------------------------------------------------------------


def predicate_fn(
    expr: E.Expression | None, enabled: bool = True
) -> Callable[[tuple], Any] | None:
    """Compiled predicate, or the interpreted bound method on failure."""
    if expr is None:
        return None
    if enabled:
        try:
            fn = compile_predicate(expr)
            _note_compiled()
            return fn
        except FAIL_STOP:
            raise
        except Exception as exc:  # noqa: BLE001 - any compile error falls back
            _note_fallback("predicate", expr, exc)
    return expr.eval


def value_fn(expr: E.Expression, enabled: bool = True) -> Callable[[tuple], Any]:
    """Compiled scalar extractor, or the interpreted bound method."""
    if enabled:
        try:
            fn = compile_value(expr)
            _note_compiled()
            return fn
        except FAIL_STOP:
            raise
        except Exception as exc:  # noqa: BLE001
            _note_fallback("value", expr, exc)
    return expr.eval


def projection_fn(
    exprs: Sequence[E.Expression], enabled: bool = True
) -> Callable[[tuple], tuple]:
    if enabled:
        try:
            fn = compile_projection(exprs)
            _note_compiled()
            return fn
        except FAIL_STOP:
            raise
        except Exception as exc:  # noqa: BLE001
            _note_fallback("projection", exprs, exc)
    bound = list(exprs)
    return lambda r: tuple(e.eval(r) for e in bound)


def key_fn(
    exprs: Sequence[E.Expression],
    null_to_none: bool = False,
    enabled: bool = True,
) -> Callable[[tuple], tuple | None]:
    if enabled:
        try:
            fn = compile_key_extractor(exprs, null_to_none)
            _note_compiled()
            return fn
        except FAIL_STOP:
            raise
        except Exception as exc:  # noqa: BLE001
            _note_fallback("key", exprs, exc)
    bound = list(exprs)
    if null_to_none:
        def interpreted_join_key(r: tuple) -> tuple | None:
            key = tuple(e.eval(r) for e in bound)
            return None if any(v is None for v in key) else key

        return interpreted_join_key
    return lambda r: tuple(e.eval(r) for e in bound)


def try_filter_project_kernel(
    condition: E.Expression | None,
    projections: Sequence[E.Expression] | None,
    enabled: bool = True,
) -> Callable[[Iterable[tuple]], list[tuple]] | None:
    """Fused kernel or ``None`` (caller keeps its row-at-a-time path)."""
    if not enabled:
        return None
    try:
        kernel = compile_filter_project_kernel(condition, projections)
        _note_compiled()
        return kernel
    except FAIL_STOP:
        raise
    except Exception as exc:  # noqa: BLE001
        _note_fallback("fused", (condition, projections), exc)
        return None


def chunked(
    kernel: Callable[[list[tuple]], list[tuple]],
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Callable[[Iterator[tuple]], Iterator[tuple]]:
    """Adapt a batch kernel to a lazy per-partition iterator.

    The partition is drained in ``chunk_rows`` slices so downstream
    consumers that stop early (``take``, ``LimitExec``) never force the
    whole partition through the kernel.
    """

    from repro.serving.context import check_cancelled

    def run(rows: Iterator[tuple]) -> Iterator[tuple]:
        it = iter(rows)
        while True:
            # Cooperative cancellation poll once per chunk: a served
            # query abandoned mid-kernel stops after the current block
            # rather than pushing the whole partition through. One
            # ContextVar read per chunk_rows rows — noise next to the
            # kernel itself, and a no-op outside the serving layer.
            check_cancelled()
            block = list(islice(it, chunk_rows))
            if not block:
                return
            yield from kernel(block)

    return run
