"""Per-schema compiled bulk row decoders.

:meth:`~repro.core.rowcodec.RowCodec.decode` walks the schema's field
list per row — a Python loop with a bitmap test, a slot lookup, and a
dispatch on fixed vs. variable width for every field of every row. For
an indexed scan that decodes hundreds of thousands of rows per query,
that interpretation dominates the latency.

Two specializations take it away, both generating straight-line source
with the field offsets, struct unpackers, and string/binary dispatch
baked in for one concrete schema (and optionally a column subset):

* :func:`build_batch_decoder` — ``decoder(payloads) -> [tuple, ...]``
  over standalone payload buffers (the backward-chain lookup path);
* :func:`build_region_decoder` — ``decoder(buf, base, end, max_rows)
  -> (rows, next_base)`` walking consecutive stored records *inside a
  batch buffer*, record headers included. The scan path uses this to
  decode straight out of the preallocated batches, skipping the
  per-record memoryview slicing of :meth:`BatchManager.scan`.

Each row takes one of two branches:

* **clear bitmap** — no NULLs, so every bitmap test is skipped; an
  all-fixed schema collapses to the codec's single ``_fast_struct``
  unpack, matching :meth:`RowCodec.decode`'s fast path;
* **checked** — per-field NULL tests, as the interpreted decoder does.

The output is bit-for-bit the same as calling ``codec.decode`` (or
``codec.decode_field`` per column) on each row — the differential
tests in ``tests/codegen`` enforce that.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Sequence, TYPE_CHECKING

from repro.analysis.codegen_rules import validate_generated_source
from repro.errors import CodegenError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.rowcodec import RowCodec

_decoder_ids = itertools.count(1)


class _RowEmitter:
    """Field-decode emission shared by the payload and region builders.

    ``base`` is a source expression for the row's start offset inside
    ``buf`` — the literal ``"0"`` for standalone payloads (offsets fold
    to constants) or a local name like ``"s"`` for the region walker.
    """

    def __init__(self, codec: "RowCodec", buf: str, base: str):
        self.codec = codec
        self.buf = buf
        self.base = base
        self.consts: dict[str, object] = {}
        self.lines: list[str] = []

    def line(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def at(self, offset: int) -> str:
        if self.base == "0":
            return str(offset)
        return f"{self.base} + {offset}" if offset else self.base

    def _zero_test(self) -> str:
        bitmap_bytes = self.codec._bitmap_bytes
        if bitmap_bytes <= 2:
            return " and ".join(
                f"{self.buf}[{self.at(b)}] == 0" for b in range(bitmap_bytes)
            )
        self.consts["_zbm"] = self.codec._zero_bitmap
        return f"{self.buf}[{self.at(0)}:{self.at(bitmap_bytes)}] == _zbm"

    def _emit_fixed(self, depth: int, i: int, checked: bool) -> None:
        codec = self.codec
        name = f"_u{i}"
        if name not in self.consts:
            unpacker = codec._structs[i]
            assert unpacker is not None
            self.consts[name] = unpacker.unpack_from
        byte, bit = i >> 3, 1 << (i & 7)
        read = f"{name}({self.buf}, {self.at(codec._slots[i])})[0]"
        if checked:
            self.line(
                depth,
                f"f{i} = None if {self.buf}[{self.at(byte)}] & {bit} else {read}",
            )
        else:
            self.line(depth, f"f{i} = {read}")

    def _emit_var(self, depth: int, i: int, checked: bool) -> None:
        codec = self.codec
        buf = self.buf
        make = (
            f"str({buf}[o{i}:o{i}+l{i}], 'utf-8')"
            if i in codec._string_set
            else f"bytes({buf}[o{i}:o{i}+l{i}])"
        )
        unpack = f"o{i}, l{i} = _vs({buf}, {self.at(codec._slots[i])})"
        # Var slots store offsets relative to the row start; rebase them
        # to absolute buffer positions when the row is not at offset 0.
        shift = None if self.base == "0" else f"o{i} += {self.base}"
        if checked:
            byte, bit = i >> 3, 1 << (i & 7)
            self.line(depth, f"if {buf}[{self.at(byte)}] & {bit}:")
            self.line(depth + 1, f"f{i} = None")
            self.line(depth, "else:")
            self.line(depth + 1, unpack)
            if shift:
                self.line(depth + 1, shift)
            self.line(depth + 1, f"f{i} = {make}")
        else:
            self.line(depth, unpack)
            if shift:
                self.line(depth, shift)
            self.line(depth, f"f{i} = {make}")

    def emit_row(self, depth: int, fields: list[int], full_row: bool) -> None:
        """The two-branch decode of one row, appending its tuple."""
        codec = self.codec
        tuple_src = (
            "("
            + ", ".join(f"f{i}" for i in fields)
            + ("," if len(fields) == 1 else "")
            + ")"
        )
        self.line(depth, f"if {self._zero_test()}:")
        if codec._fast_struct is not None and full_row:
            # All-fixed full decode: one struct call for the whole row.
            self.consts["_fs"] = codec._fast_struct.unpack_from
            self.line(
                depth + 1,
                f"_append(_fs({self.buf}, {self.at(codec._bitmap_bytes)}))",
            )
        else:
            for i in fields:
                emit = self._emit_var if codec._is_var[i] else self._emit_fixed
                emit(depth + 1, i, checked=False)
            self.line(depth + 1, f"_append({tuple_src})")
        self.line(depth, "else:")
        for i in fields:
            emit = self._emit_var if codec._is_var[i] else self._emit_fixed
            emit(depth + 1, i, checked=True)
        self.line(depth + 1, f"_append({tuple_src})")

    def assemble(self, params: str):
        name = f"_decode{next(_decoder_ids)}"
        defaults = "".join(f", {n}={n}" for n in self.consts)
        src = "\n".join([f"def {name}({params}{defaults}):"] + self.lines) + "\n"
        # Decoders read raw bitmap bytes on purpose, so the 3VL guard
        # rule does not apply; str/bytes are the only builtins allowed.
        problems = validate_generated_source(
            src,
            consts=tuple(self.consts.values()),
            allowed_builtins=frozenset({"str", "bytes"}),
            check_null_guards=False,
        )
        if problems:
            raise CodegenError(
                f"decoder {name} failed validation: "
                + "; ".join(f"{p.rule} {p.message}" for p in problems)
            )
        namespace = dict(self.consts)
        code = compile(src, f"<repro.codegen:{name}>", "exec")
        exec(code, namespace)
        fn = namespace[name]
        fn.__codegen_source__ = src
        return fn


def _check_fields(
    codec: "RowCodec", columns: Sequence[int] | None
) -> list[int]:
    fields = list(range(codec._n)) if columns is None else list(columns)
    for i in fields:
        if not 0 <= i < codec._n:
            raise CodegenError(f"column ordinal {i} out of range for schema")
    return fields


def build_batch_decoder(
    codec: "RowCodec", columns: Sequence[int] | None = None
) -> Callable[[Iterable[bytes]], list[tuple]]:
    """Compile ``decoder(payloads) -> [row tuple, ...]`` for ``codec``.

    ``columns`` selects (and orders) a subset of field ordinals; the
    default decodes full rows. Each payload must hold exactly one
    encoded row starting at offset 0 (what the batch manager yields).
    """
    # Imported here, not at module level: repro.sql's package init pulls
    # in this module via sql.physical → repro.codegen while
    # core.rowcodec may itself still be mid-import (it imports
    # sql.types). By build time both modules are fully initialized.
    from repro.core.rowcodec import _VAR_SLOT

    fields = _check_fields(codec, columns)
    em = _RowEmitter(codec, "p", "0")
    em.consts["_vs"] = _VAR_SLOT.unpack_from
    em.line(1, "out = []")
    em.line(1, "_append = out.append")
    em.line(1, "for p in payloads:")
    em.emit_row(2, fields, full_row=columns is None)
    em.line(1, "return out")
    return em.assemble("payloads")


def build_region_decoder(
    codec: "RowCodec", columns: Sequence[int] | None = None
) -> Callable[..., tuple[list[tuple], int]]:
    """Compile a batch-buffer walker for ``codec``.

    ``decoder(buf, base, end, max_rows) -> (rows, next_base)`` decodes
    up to ``max_rows`` consecutive stored records (10-byte header +
    payload, the :mod:`repro.core.rowbatch` record layout) starting at
    ``base`` and stopping at the ``end`` watermark. Bounding the rows
    per call keeps scans lazy enough for early-stopping consumers
    (``take``, ``Limit``) without giving back the tight-loop decode.
    """
    from repro.core.rowbatch import _HEADER, HEADER_SIZE
    from repro.core.rowcodec import _VAR_SLOT

    fields = _check_fields(codec, columns)
    em = _RowEmitter(codec, "buf", "s")
    em.consts["_vs"] = _VAR_SLOT.unpack_from
    em.consts["_hdr"] = _HEADER.unpack_from
    em.line(1, "out = []")
    em.line(1, "_append = out.append")
    em.line(1, "while max_rows and base < end:")
    em.line(2, "max_rows -= 1")
    em.line(2, "_prev, _len = _hdr(buf, base)")
    em.line(2, f"s = base + {HEADER_SIZE}")
    em.line(2, "base = s + _len")
    em.emit_row(2, fields, full_row=columns is None)
    em.line(1, "return out, base")
    return em.assemble("buf, base, end, max_rows")


def build_chain_decoder(
    codec: "RowCodec", layout
) -> Callable[..., None]:
    """Compile a backward-chain walker for ``codec`` under ``layout``.

    ``walk(buffers, pointer, _append)`` follows the packed backward
    pointers from ``pointer`` (newest first), decoding each row straight
    out of its batch buffer and feeding the tuples to ``_append``. The
    pointer field shifts/masks of the :class:`PointerLayout` are inlined
    as constants, so the whole cTrie-hit → rows path runs without
    memoryview slicing or an intermediate payload list.
    """
    from repro.core.pointers import NULL_POINTER
    from repro.core.rowbatch import _HEADER, HEADER_SIZE

    from repro.core.rowcodec import _VAR_SLOT

    fields = _check_fields(codec, None)
    em = _RowEmitter(codec, "buf", "s")
    em.consts["_vs"] = _VAR_SLOT.unpack_from
    em.consts["_hdr"] = _HEADER.unpack_from
    batch_shift = layout.offset_bits + layout.size_bits
    em.line(1, f"while pointer != {NULL_POINTER}:")
    em.line(2, f"buf = buffers[pointer >> {batch_shift}]")
    em.line(2, f"o = (pointer >> {layout.size_bits}) & {layout.max_offset}")
    em.line(2, "pointer = _hdr(buf, o)[0]")
    em.line(2, f"s = o + {HEADER_SIZE}")
    em.emit_row(2, fields, full_row=True)
    return em.assemble("buffers, pointer, _append")
