"""Compiled expression evaluation and batch decoders.

The whole-stage-codegen analogue for the repro engine: bound
:class:`~repro.sql.expressions.Expression` trees are lowered to Python
source, compiled once, and applied batch-at-a-time by the physical
operators. Anything the compiler does not understand falls back to the
interpreted ``Expression.eval`` path — codegen trades speed, never
correctness, and it never changes fault-injection behaviour.

See :mod:`repro.codegen.compiler` for the expression compiler and
:mod:`repro.codegen.decoders` for the per-schema bulk row decoders.
"""

from repro.codegen.compiler import (
    DEFAULT_CHUNK_ROWS,
    CodegenStats,
    chunked,
    compile_filter_project_kernel,
    compile_key_extractor,
    compile_predicate,
    compile_projection,
    compile_value,
    key_fn,
    predicate_fn,
    projection_fn,
    reset_stats,
    stats,
    try_filter_project_kernel,
    value_fn,
)
from repro.codegen.decoders import build_batch_decoder
from repro.errors import CodegenError

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "CodegenError",
    "CodegenStats",
    "build_batch_decoder",
    "chunked",
    "compile_filter_project_kernel",
    "compile_key_extractor",
    "compile_predicate",
    "compile_projection",
    "compile_value",
    "key_fn",
    "predicate_fn",
    "projection_fn",
    "reset_stats",
    "stats",
    "try_filter_project_kernel",
    "value_fn",
]
