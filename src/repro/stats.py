"""Statistics for statistics-driven execution: zone maps and pruning.

The paper's Indexed DataFrame wins by *skipping work* — ``getRows``
touches one hash partition instead of scanning all of them (§2). This
module generalizes that idea into lightweight, updatable per-partition
and per-batch summaries (zone maps, in the CUBIT sense: cheap min/max /
null-count sketches that stay correct under appends) plus the predicate
analysis that turns a filter condition into sound skip decisions.

Three pieces live here because every layer needs them:

* :class:`ColumnStats` / :class:`ZoneMap` — incremental per-column
  summaries maintained by the storage layer (row batches, indexed
  partitions) and computed lazily by the vanilla relations;
* :func:`extract_pruning_predicates` / :meth:`ZoneMap.may_match` — the
  planner-side analysis: which conjuncts of a filter are prunable, and
  whether a given zone can possibly contain a matching row;
* :class:`PruningMetrics` — counters proving what was skipped, surfaced
  by benchmarks, tests, and the CI smoke job.

Soundness contract: ``may_match`` may return ``True`` spuriously (the
filter above the scan re-checks every row) but must never return
``False`` for a zone that contains a matching row. Anything the
analysis cannot prove — mixed-type columns, non-literal operands,
unknown operators — degrades to "may match".
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Sequence

#: Pruning predicate operators understood by :meth:`ZoneMap.may_match`.
_COMPARISONS = ("eq", "in", "lt", "le", "gt", "ge", "isnull", "notnull")


class ColumnStats:
    """Incremental min/max/null-count summary of one column.

    ``valid`` turns False the first time two values fail to compare
    (mixed-type columns); from then on the column can never prune.
    """

    __slots__ = ("min", "max", "nulls", "valid")

    def __init__(self) -> None:
        self.min: Any = None
        self.max: Any = None
        self.nulls = 0
        self.valid = True

    def update(self, value: Any) -> None:
        if value is None:
            self.nulls += 1
            return
        if not self.valid:
            return
        try:
            if self.min is None:
                self.min = value
                self.max = value
            elif value < self.min:
                self.min = value
            elif value > self.max:
                self.max = value
        except TypeError:
            self.min = None
            self.max = None
            self.valid = False

    def merge(self, other: "ColumnStats") -> None:
        self.nulls += other.nulls
        if not other.valid:
            self.min = None
            self.max = None
            self.valid = False
        if not self.valid:
            return
        if other.min is not None:
            self.update(other.min)
            self.update(other.max)

    def copy(self) -> "ColumnStats":
        out = ColumnStats()
        out.min = self.min
        out.max = self.max
        out.nulls = self.nulls
        out.valid = self.valid
        return out

    def __repr__(self) -> str:
        if not self.valid:
            return f"ColumnStats(invalid, nulls={self.nulls})"
        return f"ColumnStats(min={self.min!r}, max={self.max!r}, nulls={self.nulls})"


class ZoneMap:
    """Per-column summaries for one zone (a row batch or a partition).

    Zone maps are shared by reference across MVCC snapshots (only the
    active tail zone is copied), so a sealed zone must never change
    again. :meth:`seal` write-poisons the zone: with sanitizers on, the
    storage layer seals every zone it publishes to a snapshot or rolls
    past, and any later :meth:`update_row` / :meth:`merge` raises
    :class:`~repro.errors.SanitizerError` (rule SZ001) instead of
    silently corrupting every snapshot that shares the zone.
    """

    __slots__ = ("columns", "rows", "sealed")

    def __init__(self, num_columns: int):
        self.columns = [ColumnStats() for _ in range(num_columns)]
        self.rows = 0
        self.sealed = False

    def seal(self) -> None:
        self.sealed = True

    def _poisoned(self, action: str) -> None:
        from repro.errors import SanitizerError

        raise SanitizerError(
            "SZ001", f"{action} on a sealed (snapshot-shared) ZoneMap"
        )

    def update_row(self, row: Sequence[Any]) -> None:
        if self.sealed:
            self._poisoned("update_row")
        self.rows += 1
        for stats, value in zip(self.columns, row):
            stats.update(value)

    def merge(self, other: "ZoneMap") -> None:
        if self.sealed:
            self._poisoned("merge")
        self.rows += other.rows
        for mine, theirs in zip(self.columns, other.columns):
            mine.merge(theirs)

    def copy(self) -> "ZoneMap":
        out = ZoneMap(0)
        out.columns = [c.copy() for c in self.columns]
        out.rows = self.rows
        return out

    @classmethod
    def from_rows(cls, num_columns: int, rows: Iterable[Sequence[Any]]) -> "ZoneMap":
        zone = cls(num_columns)
        for row in rows:
            zone.update_row(row)
        return zone

    # ------------------------------------------------------------------

    def may_match(self, predicates: Sequence["PruningPredicate"]) -> bool:
        """Could any row in this zone satisfy *all* predicates?

        Conservative: returns True unless some predicate provably
        excludes every row of the zone.
        """
        if self.rows == 0:
            return False
        for pred in predicates:
            if pred.ordinal >= len(self.columns):
                continue
            if not _column_may_match(self.columns[pred.ordinal], self.rows, pred):
                return False
        return True

    def __repr__(self) -> str:
        return f"ZoneMap(rows={self.rows}, columns={self.columns!r})"


def _column_may_match(stats: ColumnStats, rows: int, pred: "PruningPredicate") -> bool:
    op = pred.op
    if op == "isnull":
        return stats.nulls > 0
    if op == "notnull":
        return stats.nulls < rows
    # Every remaining operator is a comparison: NULLs never match, so a
    # zone of only NULLs can be skipped outright.
    if stats.nulls >= rows:
        return False
    if not stats.valid or stats.min is None:
        return True  # nothing provable; keep the zone
    lo, hi = stats.min, stats.max
    try:
        if op == "eq":
            return lo <= pred.values[0] <= hi
        if op == "in":
            return any(lo <= v <= hi for v in pred.values)
        value = pred.values[0]
        if op == "lt":
            return lo < value
        if op == "le":
            return lo <= value
        if op == "gt":
            return hi > value
        if op == "ge":
            return hi >= value
    except TypeError:
        return True  # predicate literal not comparable to the column
    return True


class PruningPredicate:
    """One prunable conjunct: ``column <op> literal(s)``."""

    __slots__ = ("ordinal", "op", "values")

    def __init__(self, ordinal: int, op: str, values: tuple = ()):
        if op not in _COMPARISONS:
            raise ValueError(f"unknown pruning operator {op!r}")
        self.ordinal = ordinal
        self.op = op
        self.values = values

    def with_ordinal(self, ordinal: int) -> "PruningPredicate":
        return PruningPredicate(ordinal, self.op, self.values)

    def __repr__(self) -> str:
        if self.op in ("isnull", "notnull"):
            return f"#{self.ordinal} {self.op}"
        shown = self.values[0] if self.op != "in" else list(self.values)
        return f"#{self.ordinal} {self.op} {shown!r}"


def extract_pruning_predicates(condition, attrs) -> list[PruningPredicate]:
    """The prunable conjuncts of ``condition`` against ``attrs``.

    Recognizes ``attr <cmp> literal`` (either operand order), ``attr IN
    (literals)``, and ``attr IS [NOT] NULL``. Conjuncts referencing
    NULL literals or non-attribute operands are ignored (never pruned
    on), keeping the analysis trivially sound.
    """
    # Imported lazily: storage-layer users of this module must not pull
    # the SQL expression tree in at import time.
    from repro.sql.expressions import (
        Attribute,
        EqualTo,
        GreaterThan,
        GreaterThanOrEqual,
        In,
        IsNotNull,
        IsNull,
        LessThan,
        LessThanOrEqual,
        Literal,
        split_conjuncts,
    )

    ordinals = {a.expr_id: i for i, a in enumerate(attrs)}
    flipped = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq"}
    ops = {
        EqualTo: "eq",
        LessThan: "lt",
        LessThanOrEqual: "le",
        GreaterThan: "gt",
        GreaterThanOrEqual: "ge",
    }

    out: list[PruningPredicate] = []
    for conjunct in split_conjuncts(condition):
        if isinstance(conjunct, IsNull) and isinstance(conjunct.child, Attribute):
            ordinal = ordinals.get(conjunct.child.expr_id)
            if ordinal is not None:
                out.append(PruningPredicate(ordinal, "isnull"))
            continue
        if isinstance(conjunct, IsNotNull) and isinstance(conjunct.child, Attribute):
            ordinal = ordinals.get(conjunct.child.expr_id)
            if ordinal is not None:
                out.append(PruningPredicate(ordinal, "notnull"))
            continue
        if isinstance(conjunct, In):
            if isinstance(conjunct.value, Attribute) and all(
                isinstance(o, Literal) for o in conjunct.options
            ):
                ordinal = ordinals.get(conjunct.value.expr_id)
                values = tuple(o.value for o in conjunct.options)
                if ordinal is not None and values and None not in values:
                    out.append(PruningPredicate(ordinal, "in", values))
            continue
        op = ops.get(type(conjunct))
        if op is None:
            continue
        left, right = conjunct.left, conjunct.right
        if isinstance(left, Attribute) and isinstance(right, Literal):
            attr, literal, final_op = left, right, op
        elif isinstance(right, Attribute) and isinstance(left, Literal):
            attr, literal, final_op = right, left, flipped[op]
        else:
            continue
        ordinal = ordinals.get(attr.expr_id)
        if ordinal is None or literal.value is None:
            continue
        out.append(PruningPredicate(ordinal, final_op, (literal.value,)))
    return out


class PruningMetrics:
    """Counters proving what statistics-driven pruning skipped.

    One instance per :class:`~repro.engine.context.EngineContext`;
    recorded at plan time (pruning decisions are made when the scan
    operator is constructed, which is what makes them EXPLAIN-visible).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.scans = 0  # guarded-by: _lock
        self.partitions_total = 0  # guarded-by: _lock
        self.partitions_pruned = 0  # guarded-by: _lock
        self.partitions_routed = 0  # guarded-by: _lock
        self.batches_total = 0  # guarded-by: _lock
        self.batches_pruned = 0  # guarded-by: _lock
        self.index_rejected = 0  # guarded-by: _lock

    def record_scan(
        self,
        partitions_total: int,
        partitions_pruned: int,
        batches_total: int = 0,
        batches_pruned: int = 0,
        routed: bool = False,
    ) -> None:
        with self._lock:
            self.scans += 1
            self.partitions_total += partitions_total
            self.partitions_pruned += partitions_pruned
            self.batches_total += batches_total
            self.batches_pruned += batches_pruned
            if routed:
                self.partitions_routed += partitions_pruned

    def record_index_rejected(self) -> None:
        """A bitmap-index candidate lost the cost comparison and the
        query took the (already-recorded) pruned-scan or lookup path.
        Counted so EXPLAIN's ``index_rejected`` markers and the metrics
        snapshot agree."""
        with self._lock:
            self.index_rejected += 1

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                name: getattr(self, name)
                for name in (
                    "scans",
                    "partitions_total",
                    "partitions_pruned",
                    "partitions_routed",
                    "batches_total",
                    "batches_pruned",
                    "index_rejected",
                )
            }

    def __repr__(self) -> str:
        return f"PruningMetrics({self.snapshot()})"
