"""Single source of truth for on-the-wire / on-disk pickle framing.

Every subsystem that pickles data — the durability WAL, checkpoint
images, and the cluster task-dispatch codec — must agree on one
protocol number, or artifacts written by one component (say, a
checkpoint taken on the driver) stop being readable by another (a
worker process replaying it).  Protocol 4 is the floor for framed
out-of-band-friendly pickles and is supported by every interpreter
this project targets (3.9+), so artifacts stay portable across minor
Python upgrades; protocol 5 buffers are deliberately avoided because
WAL segments must be byte-stable across writer versions.
"""

from __future__ import annotations

import pickle
from typing import Any

#: The one pickle protocol used for WAL frames, checkpoint images, and
#: cluster task dispatch.  Bump deliberately and in one place only.
PICKLE_PROTOCOL = 4


def dumps(obj: Any) -> bytes:
    """``pickle.dumps`` pinned to :data:`PICKLE_PROTOCOL`."""
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def loads(data: bytes) -> Any:
    return pickle.loads(data)
