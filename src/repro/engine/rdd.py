"""Resilient Distributed Datasets: lazy, partitioned collections.

This module implements the RDD programming model (Zaharia et al., NSDI
'12) that Spark SQL's physical operators — and the paper's Indexed
Row-Batch RDD — compile down to: an immutable, partitioned collection
with *narrow* dependencies (computed pipeline-fashion inside a stage)
and *shuffle* dependencies (stage boundaries handled by the
:class:`~repro.engine.scheduler.DAGScheduler`).

Transformations are lazy; actions (``collect``, ``count``, ...) submit
a job to the context's scheduler.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro.engine.partitioner import HashPartitioner, Partitioner, portable_hash
from repro.engine.shuffle import Aggregator, ShuffleDependency
from repro.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import EngineContext


class Dependency:
    """Edge in the RDD lineage graph."""

    def __init__(self, rdd: "RDD"):
        self.rdd = rdd


class NarrowDependency(Dependency):
    """Each child partition depends on a bounded set of parent partitions."""

    def parents(self, partition: int) -> Sequence[int]:
        raise NotImplementedError


class OneToOneDependency(NarrowDependency):
    """Child partition *i* depends exactly on parent partition *i*."""

    def parents(self, partition: int) -> Sequence[int]:
        return (partition,)


class RangeDependency(NarrowDependency):
    """Child partitions ``[out_start, out_start+length)`` map one-to-one
    onto parent partitions ``[in_start, in_start+length)`` (union)."""

    def __init__(self, rdd: "RDD", in_start: int, out_start: int, length: int):
        super().__init__(rdd)
        self.in_start = in_start
        self.out_start = out_start
        self.length = length

    def parents(self, partition: int) -> Sequence[int]:
        if self.out_start <= partition < self.out_start + self.length:
            return (partition - self.out_start + self.in_start,)
        return ()


class ShuffleDependencyEdge(Dependency):
    """Adapter exposing a :class:`ShuffleDependency` in the lineage graph."""

    def __init__(self, dep: ShuffleDependency):
        super().__init__(dep.rdd)
        self.shuffle = dep


class RDD(ABC):
    """Base class for all RDDs.

    Subclasses define :attr:`num_partitions` and :meth:`compute`;
    everything else (transformations, actions, caching) is inherited.
    """

    _ids = itertools.count()

    def __init__(self, context: "EngineContext", dependencies: Sequence[Dependency]):
        self.rdd_id = next(RDD._ids)
        self.context = context
        self.dependencies = list(dependencies)
        self.partitioner: Partitioner | None = None
        self._cached = False
        # True when this RDD's semantics depend on the *identity* of
        # upstream partition indices (e.g. a function receiving the
        # partition index, or a fixed permutation). The scheduler skips
        # adaptive partition coalescing for any job containing one —
        # merging reduce buckets renumbers partitions.
        self._index_sensitive = False

    # ------------------------------------------------------------------
    # Core contract
    # ------------------------------------------------------------------

    @property
    @abstractmethod
    def num_partitions(self) -> int:
        """Number of partitions in this RDD."""

    @abstractmethod
    def compute(self, split: int) -> Iterator[Any]:
        """Compute partition ``split`` from scratch (no cache)."""

    def iterator(self, split: int) -> Iterator[Any]:
        """Cache-aware access to partition ``split``.

        If this RDD is marked cached, the block manager either returns
        the stored partition or computes, stores, and returns it.
        """
        if self._cached:
            block = self.context.block_manager.get_or_compute(
                (self.rdd_id, split), lambda: list(self.compute(split))
            )
            return iter(block)
        return self.compute(split)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def cache(self) -> "RDD":
        """Mark this RDD's partitions for in-memory caching."""
        self._cached = True
        return self

    def unpersist(self) -> "RDD":
        """Drop cached partitions and stop caching."""
        self._cached = False
        self.context.block_manager.remove_rdd(self.rdd_id)
        return self

    @property
    def is_cached(self) -> bool:
        return self._cached

    # ------------------------------------------------------------------
    # Narrow transformations
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return MapPartitionsRDD(self, lambda _i, it: map(fn, it))

    def filter(self, fn: Callable[[Any], bool]) -> "RDD":
        rdd = MapPartitionsRDD(self, lambda _i, it: filter(fn, it))
        rdd.partitioner = self.partitioner  # filtering preserves layout
        return rdd

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return MapPartitionsRDD(
            self, lambda _i, it: itertools.chain.from_iterable(map(fn, it))
        )

    def map_partitions(
        self, fn: Callable[[Iterator[Any]], Iterable[Any]], preserves_partitioning: bool = False
    ) -> "RDD":
        rdd = MapPartitionsRDD(self, lambda _i, it: fn(it))
        if preserves_partitioning:
            rdd.partitioner = self.partitioner
        return rdd

    def map_partitions_with_index(
        self, fn: Callable[[int, Iterator[Any]], Iterable[Any]],
        preserves_partitioning: bool = False,
    ) -> "RDD":
        rdd = MapPartitionsRDD(self, fn)
        if preserves_partitioning:
            rdd.partitioner = self.partitioner
        # The callback observes partition indices, so upstream reduce
        # partitions must keep their planned numbering.
        rdd._index_sensitive = True
        return rdd

    def glom(self) -> "RDD":
        """Collapse each partition into a single list element."""
        return MapPartitionsRDD(self, lambda _i, it: iter([list(it)]))

    def key_by(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda x: (fn(x), x))

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self.context, [self, other])

    def zip_with_index(self) -> "RDD":
        """Pair each element with its global index (requires a count job
        per preceding partition, like Spark's ``zipWithIndex``)."""
        counts = self.map_partitions(lambda it: [sum(1 for _ in it)]).collect()
        offsets = [0]
        for c in counts[:-1]:
            offsets.append(offsets[-1] + c)

        def attach(i: int, it: Iterator[Any]) -> Iterator[Any]:
            return ((x, offsets[i] + j) for j, x in enumerate(it))

        return self.map_partitions_with_index(attach)

    def sample(self, fraction: float, seed: int = 17) -> "RDD":
        """Deterministic Bernoulli sample based on a per-element hash."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        threshold = int(fraction * (1 << 32))

        def keep(i: int, it: Iterator[Any]) -> Iterator[Any]:
            for j, x in enumerate(it):
                h = portable_hash((seed, i, j)) & 0xFFFFFFFF
                if h < threshold:
                    yield x

        return self.map_partitions_with_index(keep)

    # ------------------------------------------------------------------
    # Wide (shuffle) transformations
    # ------------------------------------------------------------------

    def partition_by(self, partitioner: Partitioner) -> "RDD":
        """Shuffle ``(key, value)`` pairs according to ``partitioner``.

        A no-op when already partitioned exactly this way — the
        optimization that makes co-partitioned indexed joins cheap.
        """
        if self.partitioner == partitioner:
            return self
        shuffled = ShuffledRDD(self, partitioner)
        # An explicit partitioner is a placement contract — key k lives
        # at partition(k) — so adaptive coalescing must not renumber it.
        # Internal aggregation shuffles only promise co-location.
        shuffled.allow_coalesce = False
        return shuffled

    def group_by_key(self, num_partitions: int | None = None) -> "RDD":
        agg = Aggregator(
            create=lambda v: [v],
            merge=lambda acc, v: (acc.append(v) or acc),
            combine=lambda a, b: a + b,
        )
        return self._combine(agg, num_partitions, map_side_combine=False)

    def reduce_by_key(
        self, fn: Callable[[Any, Any], Any], num_partitions: int | None = None
    ) -> "RDD":
        agg = Aggregator(create=lambda v: v, merge=fn, combine=fn)
        return self._combine(agg, num_partitions, map_side_combine=True)

    def combine_by_key(
        self,
        create: Callable[[Any], Any],
        merge: Callable[[Any, Any], Any],
        combine: Callable[[Any, Any], Any],
        num_partitions: int | None = None,
        map_side_combine: bool = True,
    ) -> "RDD":
        agg = Aggregator(create=create, merge=merge, combine=combine)
        return self._combine(agg, num_partitions, map_side_combine)

    def _combine(
        self, agg: Aggregator, num_partitions: int | None, map_side_combine: bool
    ) -> "RDD":
        n = num_partitions or self.context.config.shuffle_partitions
        partitioner = HashPartitioner(n)
        if self.partitioner == partitioner:
            # Already co-partitioned: aggregate within each partition.
            def local(it: Iterator[tuple[Any, Any]]) -> Iterator[tuple[Any, Any]]:
                create, merge = agg.create, agg.merge
                _missing = object()
                acc: dict[Any, Any] = {}
                acc_get = acc.get
                for k, v in it:
                    prev = acc_get(k, _missing)
                    acc[k] = create(v) if prev is _missing else merge(prev, v)
                return iter(acc.items())

            return self.map_partitions(local, preserves_partitioning=True)
        return ShuffledRDD(self, partitioner, agg, map_side_combine)

    def cogroup(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Group both pair-RDDs by key: ``(k, (list_self, list_other))``."""
        n = num_partitions or self.context.config.shuffle_partitions
        left = self.map(lambda kv: (kv[0], (0, kv[1])))
        right = other.map(lambda kv: (kv[0], (1, kv[1])))
        tagged = left.union(right)
        agg = Aggregator(
            create=lambda tv: ([tv[1]], []) if tv[0] == 0 else ([], [tv[1]]),
            merge=lambda acc, tv: (
                (acc[0] + [tv[1]], acc[1]) if tv[0] == 0 else (acc[0], acc[1] + [tv[1]])
            ),
            combine=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        return tagged._combine(agg, n, map_side_combine=False)

    def join_pairs(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Inner join of pair RDDs → ``(k, (v_self, v_other))``."""

        def emit(kv: tuple[Any, tuple[list, list]]) -> Iterator[Any]:
            k, (lefts, rights) = kv
            return ((k, (lv, rv)) for lv in lefts for rv in rights)

        return self.cogroup(other, num_partitions).flat_map(emit)

    def distinct(self, num_partitions: int | None = None) -> "RDD":
        return (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .map(lambda kv: kv[0])
        )

    def sort_by(
        self,
        key_fn: Callable[[Any], Any],
        ascending: bool = True,
        num_partitions: int | None = None,
    ) -> "RDD":
        """Total sort via range partitioning + per-partition sort.

        The input is materialized once up front: sampling the key
        distribution and then shuffling must not recompute the (maybe
        expensive) upstream lineage twice.
        """
        from repro.engine.partitioner import RangePartitioner

        n = num_partitions or self.context.config.shuffle_partitions
        parts = self.context.run_job(self, list)
        data = ParallelCollectionRDD.from_partitions(self.context, parts)
        total = sum(len(p) for p in parts)
        sample_fraction = min(1.0, 1000.0 * n / max(1, total))
        sample = data.map(key_fn).sample(sample_fraction).collect()
        if not sample:
            sample = data.map(key_fn).take(1000)
        partitioner = RangePartitioner.from_sample(sample, n)
        keyed = data.map(lambda x: (key_fn(x), x))
        shuffled = ShuffledRDD(keyed, partitioner)

        def sort_part(it: Iterator[tuple[Any, Any]]) -> Iterator[Any]:
            rows = sorted(it, key=lambda kv: kv[0], reverse=not ascending)
            return (v for _k, v in rows)

        result = shuffled.map_partitions(sort_part)
        if not ascending:
            # Range partitioner orders partitions ascending; reverse them.
            m = result.num_partitions
            return ReorderedRDD(result, list(range(m - 1, -1, -1)))
        return result

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def collect(self) -> list[Any]:
        parts = self.context.run_job(self, lambda it: list(it))
        return [x for part in parts for x in part]

    def count(self) -> int:
        return sum(self.context.run_job(self, lambda it: sum(1 for _ in it)))

    def take(self, n: int) -> list[Any]:
        """Collect up to ``n`` elements, scanning partitions in order."""
        if n <= 0:
            return []
        out: list[Any] = []
        for split in range(self.num_partitions):
            part = self.context.run_job(
                self, lambda it: list(itertools.islice(it, n - len(out))), [split]
            )[0]
            out.extend(part)
            if len(out) >= n:
                break
        return out[:n]

    def first(self) -> Any:
        rows = self.take(1)
        if not rows:
            raise EngineError("first() on an empty RDD")
        return rows[0]

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        def reduce_part(it: Iterator[Any]) -> list[Any]:
            acc = None
            seen = False
            for x in it:
                acc = x if not seen else fn(acc, x)
                seen = True
            return [acc] if seen else []

        parts = [x for part in self.context.run_job(self, reduce_part) for x in part]
        if not parts:
            raise EngineError("reduce() on an empty RDD")
        acc = parts[0]
        for x in parts[1:]:
            acc = fn(acc, x)
        return acc

    def fold(self, zero: Any, fn: Callable[[Any, Any], Any]) -> Any:
        def fold_part(it: Iterator[Any]) -> Any:
            acc = zero
            for x in it:
                acc = fn(acc, x)
            return acc

        acc = zero
        for part in self.context.run_job(self, fold_part):
            acc = fn(acc, part)
        return acc

    def sum(self) -> Any:
        parts = self.context.run_job(self, lambda it: sum(it))
        return sum(parts)

    def foreach_partition(self, fn: Callable[[Iterator[Any]], None]) -> None:
        self.context.run_job(self, lambda it: fn(it))

    def count_by_key(self) -> dict[Any, int]:
        return dict(self.map(lambda kv: (kv[0], 1)).reduce_by_key(lambda a, b: a + b).collect())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.rdd_id}, partitions={self.num_partitions})"


class ParallelCollectionRDD(RDD):
    """An RDD materialized from a local Python sequence."""

    def __init__(self, context: "EngineContext", data: Sequence[Any], num_slices: int):
        super().__init__(context, [])
        if num_slices < 1:
            raise ValueError("num_slices must be >= 1")
        self._slices = self._slice(list(data), num_slices)

    @classmethod
    def from_partitions(
        cls, context: "EngineContext", partitions: list[list[Any]]
    ) -> "ParallelCollectionRDD":
        """Wrap pre-partitioned data without re-slicing it."""
        rdd = cls(context, [], 1)
        rdd._slices = [list(p) for p in partitions] or [[]]
        return rdd

    @staticmethod
    def _slice(data: list[Any], num_slices: int) -> list[list[Any]]:
        n = len(data)
        slices = []
        for i in range(num_slices):
            start = (i * n) // num_slices
            end = ((i + 1) * n) // num_slices
            slices.append(data[start:end])
        return slices

    @property
    def num_partitions(self) -> int:
        return len(self._slices)

    def compute(self, split: int) -> Iterator[Any]:
        return iter(self._slices[split])


class MapPartitionsRDD(RDD):
    """Applies ``fn(partition_index, iterator)`` to each parent partition."""

    def __init__(self, parent: RDD, fn: Callable[[int, Iterator[Any]], Iterable[Any]]):
        super().__init__(parent.context, [OneToOneDependency(parent)])
        self._parent = parent
        self._fn = fn

    @property
    def num_partitions(self) -> int:
        return self._parent.num_partitions

    def compute(self, split: int) -> Iterator[Any]:
        return iter(self._fn(split, self._parent.iterator(split)))


class UnionRDD(RDD):
    """Concatenation of several RDDs' partitions."""

    def __init__(self, context: "EngineContext", rdds: Sequence[RDD]):
        deps: list[Dependency] = []
        out_start = 0
        for rdd in rdds:
            deps.append(RangeDependency(rdd, 0, out_start, rdd.num_partitions))
            out_start += rdd.num_partitions
        super().__init__(context, deps)
        self._rdds = list(rdds)

    @property
    def num_partitions(self) -> int:
        return sum(r.num_partitions for r in self._rdds)

    def compute(self, split: int) -> Iterator[Any]:
        for rdd in self._rdds:
            if split < rdd.num_partitions:
                return rdd.iterator(split)
            split -= rdd.num_partitions
        raise EngineError(f"partition {split} out of range for union")


class ReorderedRDD(RDD):
    """Presents the parent's partitions in a different order (used to
    implement descending total sorts)."""

    def __init__(self, parent: RDD, order: Sequence[int]):
        super().__init__(parent.context, [OneToOneDependency(parent)])
        if sorted(order) != list(range(parent.num_partitions)):
            raise EngineError("order must be a permutation of partition indices")
        self._parent = parent
        self._order = list(order)
        # The permutation is fixed at build time against the parent's
        # planned partition count — coalescing would invalidate it.
        self._index_sensitive = True

    @property
    def num_partitions(self) -> int:
        return self._parent.num_partitions

    def compute(self, split: int) -> Iterator[Any]:
        return self._parent.iterator(self._order[split])


class ShuffledRDD(RDD):
    """Reduce side of a shuffle: fetches buckets from the shuffle manager.

    When an aggregator is present and map-side combine is off, values are
    combined here on the reduce side.

    Adaptive execution may *coalesce* this RDD after the map stage has
    recorded bucket sizes: :meth:`set_coalesce_groups` merges adjacent
    reduce buckets into fewer partitions. Each key still lives in
    exactly one (coalesced) partition — whole buckets move together —
    so keyed aggregation and cogroup stay correct; only partition
    *numbering* changes, which is why index-sensitive jobs opt out.
    """

    def __init__(
        self,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: Aggregator | None = None,
        map_side_combine: bool = False,
    ):
        dep = ShuffleDependency(parent, partitioner, aggregator, map_side_combine)
        super().__init__(parent.context, [ShuffleDependencyEdge(dep)])
        self.shuffle_dep = dep
        self.partitioner = partitioner
        #: Post-map coalescing plan: partition ``i`` reads the original
        #: reduce buckets ``_reduce_groups[i]``. ``None`` = uncoalesced.
        self._reduce_groups: list[list[int]] | None = None
        #: Cleared by the scheduler to veto coalescing for this shuffle.
        self.allow_coalesce = True

    def set_coalesce_groups(self, groups: Sequence[Sequence[int]]) -> None:
        """Adopt a coalescing plan (scheduler-only; sticky once set).

        The original partitioner no longer describes the physical
        layout, so it is dropped — later graph construction must not
        elide shuffles against the pre-coalesce partitioning.
        """
        expected = sorted(i for group in groups for i in group)
        if expected != list(range(self.shuffle_dep.partitioner.num_partitions)):
            raise EngineError("coalesce groups must cover every reduce bucket once")
        self._reduce_groups = [list(g) for g in groups]
        self.partitioner = None

    @property
    def num_partitions(self) -> int:
        if self._reduce_groups is not None:
            return len(self._reduce_groups)
        return self.shuffle_dep.partitioner.num_partitions

    def _fetch(self, split: int) -> Iterator[Any]:
        fetch = self.context.shuffle_manager.fetch
        shuffle_id = self.shuffle_dep.shuffle_id
        if self._reduce_groups is None:
            return fetch(shuffle_id, split)
        buckets = self._reduce_groups[split]
        if len(buckets) == 1:
            return fetch(shuffle_id, buckets[0])
        return itertools.chain.from_iterable(fetch(shuffle_id, b) for b in buckets)

    def compute(self, split: int) -> Iterator[Any]:
        records = self._fetch(split)
        agg = self.shuffle_dep.aggregator
        if agg is None:
            return records
        # Hot loops: one iteration per fetched record, so the aggregator
        # callables and dict probe are hoisted to local names. Merged
        # buckets hold disjoint key sets, so one pass over the chained
        # records aggregates each exactly as the separate buckets would.
        _missing = object()
        acc: dict[Any, Any] = {}
        acc_get = acc.get
        if self.shuffle_dep.map_side_combine:
            # Map outputs are already accumulators; merge them.
            combine = agg.combine
            for k, v in records:
                prev = acc_get(k, _missing)
                acc[k] = v if prev is _missing else combine(prev, v)
            return iter(acc.items())
        create, merge = agg.create, agg.merge
        for k, v in records:
            prev = acc_get(k, _missing)
            acc[k] = create(v) if prev is _missing else merge(prev, v)
        return iter(acc.items())
