"""In-memory shuffle: map-output registry and fetch API.

A :class:`ShuffleDependency` marks a stage boundary. During the map
stage each map task partitions its key-value output into
``num_partitions`` buckets and registers them here; reduce tasks fetch
the bucket with their index from every map output. This mirrors Spark's
hash shuffle with all blocks held in process memory.

Fault model: a fetch that finds map outputs missing — whether lost to
the seeded injector (which deletes a victim output to simulate a died
executor) or simply never produced — raises
:class:`~repro.errors.FetchFailedError`. The scheduler reacts with
lineage recomputation: :meth:`ShuffleManager.missing_map_indices` names
exactly the map tasks to re-run.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.engine.cache import estimate_size
from repro.engine.partitioner import Partitioner
from repro.errors import EngineError, FetchFailedError
from repro.faults import NULL_INJECTOR, FaultInjector
from repro.serving.context import check_cancelled, current_query


@dataclass
class Aggregator:
    """Optional map-side combine, as in ``reduceByKey``.

    ``create`` builds an accumulator from the first value, ``merge``
    folds another value in, and ``combine`` merges two accumulators on
    the reduce side.
    """

    create: Callable[[Any], Any]
    merge: Callable[[Any, Any], Any]
    combine: Callable[[Any, Any], Any]


class ShuffleDependency:
    """Wide dependency on ``rdd``, partitioned by ``partitioner``.

    The parent RDD must produce ``(key, value)`` pairs.
    """

    _ids = itertools.count()

    def __init__(
        self,
        rdd: "Any",
        partitioner: Partitioner,
        aggregator: Aggregator | None = None,
        map_side_combine: bool = False,
    ):
        if map_side_combine and aggregator is None:
            raise EngineError("map_side_combine requires an aggregator")
        self.shuffle_id = next(ShuffleDependency._ids)
        self.rdd = rdd
        self.partitioner = partitioner
        self.aggregator = aggregator
        self.map_side_combine = map_side_combine


@dataclass
class _ShuffleState:
    """Map outputs for one shuffle: ``outputs[map_idx][reduce_idx]``.

    ``sizes[map_idx][reduce_idx]`` records ``(rows, est_bytes)`` per
    bucket — the map-output statistics adaptive execution plans from.
    """

    num_maps: int
    outputs: dict[int, list[list[Any]]] = field(default_factory=dict)
    sizes: dict[int, list[tuple[int, int]]] = field(default_factory=dict)

    def complete(self) -> bool:
        return len(self.outputs) == self.num_maps


def _bucket_size(bucket: list[Any]) -> tuple[int, int]:
    """``(rows, est_bytes)`` for one reduce bucket.

    Bytes are estimated from the first record (deep-sized) times the
    bucket length — adaptive coalescing needs relative magnitudes, not
    exact accounting, and sizing every record would put an O(fields)
    walk on the shuffle write path.
    """
    rows = len(bucket)
    if rows == 0:
        return 0, 0
    return rows, rows * max(1, estimate_size(bucket[0]))


class ShuffleManager:
    """Registry of map outputs keyed by shuffle id.

    Thread-safe: map tasks from one stage register concurrently.
    """

    def __init__(self, injector: FaultInjector | None = None) -> None:
        self._lock = threading.Lock()
        self._shuffles: dict[int, _ShuffleState] = {}  # guarded-by: _lock
        self._injector = injector or NULL_INJECTOR
        self.lost_map_outputs = 0  # guarded-by: _lock

    def register_shuffle(self, shuffle_id: int, num_maps: int) -> None:
        """Declare a shuffle before its map stage runs (idempotent)."""
        with self._lock:
            if shuffle_id not in self._shuffles:
                self._shuffles[shuffle_id] = _ShuffleState(num_maps=num_maps)

    def is_complete(self, shuffle_id: int) -> bool:
        with self._lock:
            state = self._shuffles.get(shuffle_id)
            return state is not None and state.complete()

    def map_writer(
        self, dep: ShuffleDependency
    ) -> Callable[[int, Iterable[tuple[Any, Any]]], Any]:
        """A callable the map task runs to persist its output.

        The in-memory manager writes straight into the registry and
        returns nothing; the cluster manager overrides this with a
        picklable spill-file writer returning a ``MapStatus`` that the
        scheduler hands to :meth:`commit_map_outputs` after the stage.
        """

        def write(map_index: int, records: Iterable[tuple[Any, Any]]) -> None:
            self.write_map_output(dep, map_index, records)

        return write

    def commit_map_outputs(self, shuffle_id: int, statuses: list[Any]) -> None:
        """Commit per-map writer results after a map stage (no-op here:
        :meth:`write_map_output` already registered the buckets)."""

    def write_map_output(
        self,
        dep: ShuffleDependency,
        map_index: int,
        records: Iterable[tuple[Any, Any]],
    ) -> None:
        """Partition one map task's records into reduce buckets.

        Both loops run once per record of the map task — the attribute
        lookups (partition function, bucket appends, aggregator
        callables) are hoisted out so the loop body is pure local-name
        dispatch.
        """
        n = dep.partitioner.num_partitions
        partition_of = dep.partitioner.partition
        buckets: list[list[Any]] = [[] for _ in range(n)]
        if dep.map_side_combine and dep.aggregator is not None:
            agg = dep.aggregator
            agg_create, agg_merge = agg.create, agg.merge
            combined: list[dict[Any, Any]] = [dict() for _ in range(n)]
            _missing = object()
            for key, value in records:  # lint: allow[CP001] -- hot per-record map loop; PR 6 put the poll at stage granularity
                bucket = combined[partition_of(key)]
                acc = bucket.get(key, _missing)
                bucket[key] = (
                    agg_create(value) if acc is _missing else agg_merge(acc, value)
                )
            for i, bucket in enumerate(combined):
                buckets[i] = list(bucket.items())
        else:
            appends = [bucket.append for bucket in buckets]
            for key, value in records:  # lint: allow[CP001] -- hot per-record map loop; PR 6 put the poll at stage granularity
                appends[partition_of(key)]((key, value))
        sizes = [_bucket_size(bucket) for bucket in buckets]
        query = current_query()
        if query is not None and query.governor is not None:
            # Charge the shuffle write against the serving memory
            # budgets before the buckets become reachable: a kill
            # decision then unwinds before the state is registered.
            query.governor.charge(query, sum(est for _rows, est in sizes))
        with self._lock:
            state = self._shuffles.get(dep.shuffle_id)
            if state is None:
                raise EngineError(f"shuffle {dep.shuffle_id} was never registered")
            state.outputs[map_index] = buckets
            state.sizes[map_index] = sizes

    def fetch(self, shuffle_id: int, reduce_index: int) -> Iterator[tuple[Any, Any]]:
        """All records destined for ``reduce_index``.

        Validates eagerly (so missing outputs fail at call time, inside
        the fetching task) and returns an iterator over the buckets.
        """
        with self._lock:
            state = self._shuffles.get(shuffle_id)
            if state is None:
                raise EngineError(f"shuffle {shuffle_id} was never registered")
            if state.complete() and self._injector.should_fire("shuffle.fetch"):
                # Simulate a died executor: one map output vanishes and
                # this fetch fails; the scheduler must recompute it.
                victim = self._injector.choose(
                    "shuffle.fetch", sorted(state.outputs)
                )
                del state.outputs[victim]
                self.lost_map_outputs += 1
                raise FetchFailedError(
                    shuffle_id,
                    victim,
                    f"shuffle {shuffle_id}: map output {victim} lost (injected)",
                )
            if not state.complete():
                missing = state.num_maps - len(state.outputs)
                raise FetchFailedError(
                    shuffle_id,
                    None,
                    f"shuffle {shuffle_id} incomplete: {missing} map outputs missing",
                )
            outputs = [state.outputs[i][reduce_index] for i in sorted(state.outputs)]

        def drain() -> Iterator[tuple[Any, Any]]:
            for bucket in outputs:
                # Cooperative cancellation poll once per map bucket: a
                # cancelled query stops fetching instead of draining
                # every remaining bucket through the reduce task.
                check_cancelled()
                yield from bucket

        return drain()

    def reduce_sizes(self, shuffle_id: int) -> list[tuple[int, int]] | None:
        """Per-reduce-partition ``(rows, est_bytes)`` totals across maps.

        ``None`` until every map output has been registered — adaptive
        decisions only make sense over the complete picture.
        """
        with self._lock:
            state = self._shuffles.get(shuffle_id)
            if state is None or not state.complete():
                return None
            totals: list[tuple[int, int]] | None = None
            for map_index in state.outputs:
                sizes = state.sizes.get(map_index)
                if sizes is None:
                    return None
                if totals is None:
                    totals = list(sizes)
                else:
                    totals = [
                        (r + br, b + bb)
                        for (r, b), (br, bb) in zip(totals, sizes)
                    ]
            return totals

    def missing_map_indices(self, shuffle_id: int) -> list[int]:
        """Map indices whose output is absent (lineage-recompute set)."""
        with self._lock:
            state = self._shuffles.get(shuffle_id)
            if state is None:
                return []
            return [i for i in range(state.num_maps) if i not in state.outputs]

    def remove_shuffle(self, shuffle_id: int) -> None:
        """Drop all map outputs for a shuffle (GC after a job)."""
        with self._lock:
            self._shuffles.pop(shuffle_id, None)

    def stats(self) -> dict[str, int]:
        """Counters for tests and the benchmark harness."""
        with self._lock:
            records = sum(
                len(bucket)
                for state in self._shuffles.values()
                for buckets in state.outputs.values()
                for bucket in buckets
            )
            return {"shuffles": len(self._shuffles), "records": records}
