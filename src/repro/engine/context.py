"""EngineContext: the ``SparkContext`` analogue.

Owns the shuffle manager, the block-manager cache, the executor thread
pool, and the DAG scheduler, and is the factory for source RDDs and
broadcast variables. One context per :class:`~repro.sql.session.Session`.
"""

from __future__ import annotations

import shutil
import tempfile
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterator, Sequence, TypeVar

from repro.config import Config
from repro.engine.accumulators import Accumulator, list_accumulator, long_accumulator
from repro.engine.broadcast import Broadcast
from repro.engine.cache import BlockManager
from repro.engine.rdd import RDD, ParallelCollectionRDD
from repro.engine.scheduler import DAGScheduler
from repro.engine.cache import estimate_size
from repro.engine.shuffle import ShuffleManager
from repro.faults import FaultInjector
from repro.serving.context import current_query
from repro.stats import PruningMetrics

T = TypeVar("T")


class EngineContext:
    """Entry point to the execution engine.

    Typical use::

        ctx = EngineContext(Config(executor_threads=4))
        rdd = ctx.parallelize(range(1000), 8)
        total = rdd.map(lambda x: x * x).sum()
        ctx.stop()

    Contexts are also context managers, closing the pool on exit.
    """

    def __init__(self, config: Config | None = None):
        self.config = config or Config()
        # One seeded injector per context: engine, shuffle, and indexed
        # operators all draw from the same reproducible fault streams.
        self.fault_injector = FaultInjector(
            self.config.faults, self.config.fault_schedule
        )
        self._spill_root: str | None = None
        self._owns_spill_root = False
        if self.config.executors > 0:
            # Cluster mode: spill-file shuffle, shared-memory ship
            # store, and N forked worker processes behind the backend.
            from repro.cluster.backend import ProcessBackend
            from repro.cluster.shm import DriverShipStore
            from repro.cluster.shuffle import ClusterShuffleManager

            if self.config.cluster_spill_dir is not None:
                self._spill_root = self.config.cluster_spill_dir
            else:
                self._spill_root = tempfile.mkdtemp(prefix="repro-spill-")
                self._owns_spill_root = True
            self.shuffle_manager: ShuffleManager = ClusterShuffleManager(
                self._spill_root,
                self.fault_injector,
                self.config.rpc_max_retries,
            )
            self.ship_store = DriverShipStore()
            self.backend = ProcessBackend(
                self.config.executors,
                self.config,
                self.shuffle_manager,
                self.ship_store,
                self.fault_injector,
            )
            pool_workers = max(self.config.executor_threads, self.config.executors)
        else:
            from repro.cluster.backend import LocalBackend

            self.shuffle_manager = ShuffleManager(self.fault_injector)
            self.ship_store = None
            self.backend = LocalBackend()
            pool_workers = self.config.executor_threads
        self.block_manager = BlockManager(self.config.cache_capacity_bytes)
        self._pool = ThreadPoolExecutor(
            max_workers=pool_workers,
            thread_name_prefix="repro-executor",
        )
        self.scheduler = DAGScheduler(
            self.shuffle_manager,
            self._pool,
            self.config,
            self.fault_injector,
            backend=self.backend,
        )
        # Zone-map / partition-pruning counters, bumped by scan
        # operators at plan time (tests and EXPLAIN read them back).
        self.pruning_metrics = PruningMetrics()
        # Set by the ServingRuntime when resource governance is enabled
        # (GuardedIndexExec and friends read breakers through it).
        self.serving = None
        self._stopped = False

    # ------------------------------------------------------------------
    # RDD and broadcast factories
    # ------------------------------------------------------------------

    def parallelize(self, data: Sequence[Any], num_slices: int | None = None) -> RDD:
        """Create an RDD from a local sequence."""
        n = num_slices or self.config.default_parallelism
        return ParallelCollectionRDD(self, data, n)

    def empty_rdd(self) -> RDD:
        return ParallelCollectionRDD(self, [], 1)

    def broadcast(self, value: T) -> Broadcast[T]:
        """Share a read-only value with every task."""
        query = current_query()
        if query is not None and query.governor is not None:
            query.governor.charge(query, estimate_size(value))
        return Broadcast(value)

    def long_accumulator(self, name: str | None = None) -> Accumulator[int]:
        """A shared counter tasks can add to (driver reads .value)."""
        return long_accumulator(name)

    def list_accumulator(self, name: str | None = None) -> Accumulator[list]:
        """A shared collector (e.g. for sampled bad records)."""
        return list_accumulator(name)

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------

    def run_job(
        self,
        rdd: RDD,
        func: Callable[[Iterator[Any]], Any],
        partitions: Sequence[int] | None = None,
    ) -> list[Any]:
        if self._stopped:
            raise RuntimeError("EngineContext is stopped")
        return self.scheduler.run_job(rdd, func, partitions)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def stop(self) -> None:
        if not self._stopped:
            self._stopped = True
            self._pool.shutdown(wait=True)
            self.backend.stop()
            if self._owns_spill_root and self._spill_root is not None:
                shutil.rmtree(self._spill_root, ignore_errors=True)

    def __enter__(self) -> "EngineContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "stopped" if self._stopped else "running"
        return f"EngineContext(threads={self.config.executor_threads}, {state})"
