"""DAG scheduler: stages split at shuffle boundaries, tasks on a pool.

Given an action on a target RDD, the scheduler

1. walks the lineage graph and collects every *incomplete* shuffle
   dependency reachable from the target;
2. topologically orders those shuffles (a shuffle can only run once the
   shuffles *it* depends on have produced their map outputs);
3. runs one *map stage* per shuffle — a task per parent partition that
   writes bucketed map output into the shuffle manager;
4. runs the *result stage* — a task per requested target partition that
   applies the action's function to the partition iterator.

Tasks of one stage run concurrently on the executor pool; stages run
in sequence, exactly as in Spark.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from repro.engine.rdd import RDD, ShuffleDependencyEdge
from repro.engine.shuffle import ShuffleDependency, ShuffleManager
from repro.errors import TaskError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import EngineContext


@dataclass
class JobMetrics:
    """Per-job counters surfaced by the benchmark harness."""

    job_id: int
    stages: int = 0
    tasks: int = 0
    shuffle_records: int = 0


@dataclass
class SchedulerMetrics:
    """Cumulative scheduler counters."""

    jobs: int = 0
    stages: int = 0
    tasks: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_job(self, job: JobMetrics) -> None:
        with self._lock:
            self.jobs += 1
            self.stages += job.stages
            self.tasks += job.tasks


class DAGScheduler:
    """Runs jobs for an :class:`~repro.engine.context.EngineContext`."""

    _job_ids = itertools.count()

    def __init__(self, shuffle_manager: ShuffleManager, pool: ThreadPoolExecutor):
        self._shuffles = shuffle_manager
        self._pool = pool
        # Serialize whole jobs: tasks within a stage are parallel, but two
        # concurrent jobs sharing lineage would race on map-output state.
        self._job_lock = threading.RLock()
        self.metrics = SchedulerMetrics()

    # ------------------------------------------------------------------

    def run_job(
        self,
        rdd: RDD,
        func: Callable[[Iterator[Any]], Any],
        partitions: Sequence[int] | None = None,
    ) -> list[Any]:
        """Run ``func`` over the given partitions of ``rdd``; returns the
        per-partition results in partition order."""
        if partitions is None:
            partitions = range(rdd.num_partitions)
        job = JobMetrics(job_id=next(DAGScheduler._job_ids))
        with self._job_lock:
            for dep in self._missing_shuffles(rdd):
                self._run_map_stage(dep, job)
            results = self._run_result_stage(rdd, func, partitions, job)
        self.metrics.record_job(job)
        return results

    # ------------------------------------------------------------------

    def _missing_shuffles(self, rdd: RDD) -> list[ShuffleDependency]:
        """Incomplete shuffles reachable from ``rdd`` in execution order
        (parents before children)."""
        ordered: list[ShuffleDependency] = []
        seen_rdds: set[int] = set()
        seen_shuffles: set[int] = set()

        def visit(node: RDD) -> None:
            if node.rdd_id in seen_rdds:
                return
            seen_rdds.add(node.rdd_id)
            # A cached RDD whose every partition is stored needs no
            # upstream recomputation: its shuffles can be skipped.
            if node.is_cached and self._fully_cached(node):
                return
            for edge in node.dependencies:
                visit(edge.rdd)
                if isinstance(edge, ShuffleDependencyEdge):
                    dep = edge.shuffle
                    if dep.shuffle_id in seen_shuffles:
                        continue
                    seen_shuffles.add(dep.shuffle_id)
                    if not self._shuffles.is_complete(dep.shuffle_id):
                        ordered.append(dep)

        visit(rdd)
        return ordered

    def _fully_cached(self, rdd: RDD) -> bool:
        bm = rdd.context.block_manager
        return all(bm.contains((rdd.rdd_id, p)) for p in range(rdd.num_partitions))

    def _run_map_stage(self, dep: ShuffleDependency, job: JobMetrics) -> None:
        parent: RDD = dep.rdd
        num_maps = parent.num_partitions
        self._shuffles.register_shuffle(dep.shuffle_id, num_maps)
        stage_id = job.stages
        job.stages += 1

        def map_task(map_index: int) -> None:
            try:
                records = parent.iterator(map_index)
                self._shuffles.write_map_output(dep, map_index, records)
            except TaskError:
                raise
            except Exception as exc:  # noqa: BLE001 - wrap any task failure
                raise TaskError(stage_id, map_index, exc) from exc

        job.tasks += num_maps
        self._run_all(map_task, range(num_maps))

    def _run_result_stage(
        self,
        rdd: RDD,
        func: Callable[[Iterator[Any]], Any],
        partitions: Sequence[int],
        job: JobMetrics,
    ) -> list[Any]:
        stage_id = job.stages
        job.stages += 1
        job.tasks += len(partitions)

        def result_task(split: int) -> Any:
            try:
                return func(rdd.iterator(split))
            except TaskError:
                raise
            except Exception as exc:  # noqa: BLE001 - wrap any task failure
                raise TaskError(stage_id, split, exc) from exc

        return self._run_all(result_task, partitions)

    def _run_all(self, task: Callable[[int], Any], splits: Sequence[int]) -> list[Any]:
        splits = list(splits)
        if len(splits) <= 1:
            return [task(s) for s in splits]
        futures = [self._pool.submit(task, s) for s in splits]
        results = []
        first_error: BaseException | None = None
        for fut in futures:
            try:
                results.append(fut.result())
            except BaseException as exc:  # noqa: BLE001 - propagate after drain
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results
