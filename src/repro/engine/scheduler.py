"""DAG scheduler: stages split at shuffle boundaries, tasks on a pool.

Given an action on a target RDD, the scheduler

1. walks the lineage graph and collects every *incomplete* shuffle
   dependency reachable from the target;
2. topologically orders those shuffles (a shuffle can only run once the
   shuffles *it* depends on have produced their map outputs);
3. runs one *map stage* per shuffle — a task per parent partition that
   writes bucketed map output into the shuffle manager;
4. runs the *result stage* — a task per requested target partition that
   applies the action's function to the partition iterator.

Tasks of one stage run concurrently on the executor pool; stages run
in sequence, exactly as in Spark.

Fault tolerance (mirroring Spark's recovery model):

* **bounded retries** — a task failing with a *transient* cause (an
  injected fault, a lost shuffle fetch, an OS-level I/O error) is
  resubmitted with exponential backoff up to
  ``Config.task_max_retries`` times, after which the stage raises
  :class:`~repro.errors.RetryExhaustedError`. Deterministic user-code
  errors fail fast (set ``Config.retry_all_errors`` to retry those
  too);
* **lineage recomputation** — a
  :class:`~repro.errors.FetchFailedError` does not burn retries
  blindly: the scheduler looks up the shuffle dependency in the job's
  lineage, re-runs exactly the missing map tasks, and only then
  resubmits the fetching task;
* **stage deadline** — ``Config.stage_timeout_s`` bounds each stage's
  wall-clock time; on expiry outstanding tasks are cancelled and
  :class:`~repro.errors.StageTimeoutError` is raised;
* **speculation** — with ``Config.speculation`` on, a task running
  longer than ``speculation_multiplier`` × the median finished-task
  duration gets a second concurrent attempt; the first to finish wins;
* **failure cancellation** — once a stage is doomed, queued tasks are
  cancelled instead of draining the whole pool.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from repro.config import Config
from repro.engine.rdd import RDD, ShuffleDependencyEdge
from repro.engine.shuffle import ShuffleDependency, ShuffleManager
from repro.errors import (
    CircuitOpenError,
    ClusterTimeoutError,
    DurabilityError,
    FetchFailedError,
    InjectedFault,
    QueryCancelledError,
    RetryExhaustedError,
    StageTimeoutError,
    TaskError,
    WorkerLostError,
)
from repro.faults import NULL_INJECTOR, FaultInjector
from repro.serving.context import QueryContext, activate, current_query, deactivate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import EngineContext
    from repro.serving.runtime import ServingRuntime

#: Upper bound on one retry backoff sleep.
_MAX_BACKOFF_S = 1.0
#: Driver poll tick while waiting on task futures (also the resolution
#: of deadline checks and speculation scans).
_DRIVER_TICK_S = 0.02


class _StageAborted(Exception):
    """Internal: raised by queued attempts once their stage is doomed."""


def _find_transient(exc: BaseException | None) -> BaseException | None:
    """The transient cause inside a (possibly nested) task failure.

    Walks ``TaskError.cause`` chains looking for an injected fault, a
    shuffle fetch failure, a WAL/checkpoint I/O failure, a lost worker
    process, or an OS-level error — the failure classes a retry can
    plausibly heal. A :class:`~repro.errors.RecoveryError` is
    deliberately *not* here: a failed restore means durable state is
    corrupt, and replaying the task would only mask that.
    """
    depth = 0
    while exc is not None and depth < 16:
        if isinstance(
            exc,
            (
                InjectedFault,
                FetchFailedError,
                DurabilityError,
                WorkerLostError,
                ClusterTimeoutError,
                ConnectionError,
                TimeoutError,
                OSError,
            ),
        ):
            return exc
        exc = getattr(exc, "cause", None) or exc.__cause__
        depth += 1
    return None


def _find_fetch_failure(exc: BaseException | None) -> FetchFailedError | None:
    depth = 0
    while exc is not None and depth < 16:
        if isinstance(exc, FetchFailedError):
            return exc
        exc = getattr(exc, "cause", None) or exc.__cause__
        depth += 1
    return None


def _find_cancellation(exc: BaseException | None) -> QueryCancelledError | None:
    """A cooperative cancellation buried in a task-failure chain.

    A :class:`QueryCancelledError` raised inside a task gets wrapped in
    :class:`TaskError` like any other failure; it must be unwrapped and
    re-raised — never retried — so the whole job unwinds and releases
    its slots (the entire point of cancellation).
    """
    depth = 0
    while exc is not None and depth < 16:
        if isinstance(exc, QueryCancelledError):
            return exc
        exc = getattr(exc, "cause", None) or exc.__cause__
        depth += 1
    return None


class _StageClock:
    """Per-stage deadline, and the **single** place ``stage_timeouts``
    is bumped.

    The old code bumped the counter at both the inline and the pooled
    check site, so one expiry observed on both paths (a pooled stage
    unwinding through a nested inline recomputation) double-counted.
    The once-flag makes the metric mean what it says: one expired stage,
    one count — however many frames re-observe the expiry.
    """

    __slots__ = ("stage_id", "deadline", "timeout_s", "_metrics", "_counted")

    def __init__(
        self,
        stage_id: int,
        timeout_s: float | None,
        metrics: "SchedulerMetrics",
    ):
        self.stage_id = stage_id
        self.timeout_s = timeout_s
        self.deadline = None if timeout_s is None else time.monotonic() + timeout_s
        self._metrics = metrics
        self._counted = False

    def check(self) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            if not self._counted:
                self._counted = True
                self._metrics.bump("stage_timeouts")
            raise StageTimeoutError(self.stage_id, self.timeout_s or 0.0)


# Fetch failures draw on their own retry budget, task_max_retries times
# this factor. A coalesced reduce task fetches many map buckets, so one
# attempt makes many independent fetch draws; charging those against the
# crash budget would exhaust it in proportion to the coalesce width even
# though each loss is repaired by lineage recomputation, not by the
# retry itself. task_max_retries=0 still means fail-fast for both kinds.
_FETCH_RETRY_FACTOR = 4


@dataclass
class _TaskFailures:
    """Per-task retry accounting: crashes and fetch failures draw on
    separate budgets (see ``_FETCH_RETRY_FACTOR``)."""

    crashes: int = 0
    fetches: int = 0
    #: Cluster RPC faults (lost or fenced workers) among the crashes —
    #: the subset the ``cluster.rpc`` breaker accounts.
    rpc_faults: int = 0

    @property
    def attempts(self) -> int:
        return self.crashes + self.fetches


@dataclass
class JobMetrics:
    """Per-job counters surfaced by the benchmark harness."""

    job_id: int
    stages: int = 0
    tasks: int = 0
    shuffle_records: int = 0


@dataclass
class SchedulerMetrics:
    """Cumulative scheduler counters."""

    jobs: int = 0  # guarded-by: _lock
    stages: int = 0  # guarded-by: _lock
    tasks: int = 0  # guarded-by: _lock
    task_failures: int = 0  # guarded-by: _lock
    task_retries: int = 0  # guarded-by: _lock
    fetch_failures: int = 0  # guarded-by: _lock
    recomputed_map_stages: int = 0  # guarded-by: _lock
    speculative_tasks: int = 0  # guarded-by: _lock
    speculative_wins: int = 0  # guarded-by: _lock
    stage_timeouts: int = 0  # guarded-by: _lock
    workers_lost: int = 0  # guarded-by: _lock
    cluster_timeouts: int = 0  # guarded-by: _lock
    plan_cache_hits: int = 0  # guarded-by: _lock
    plan_cache_misses: int = 0  # guarded-by: _lock
    plan_cache_full_hits: int = 0  # guarded-by: _lock
    index_fallbacks: int = 0  # guarded-by: _lock
    coalesced_shuffles: int = 0  # guarded-by: _lock
    coalesced_partitions: int = 0  # guarded-by: _lock
    runtime_broadcast_joins: int = 0  # guarded-by: _lock
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_job(self, job: JobMetrics) -> None:
        with self._lock:
            self.jobs += 1
            self.stages += job.stages
            self.tasks += job.tasks

    def record_index_fallback(self, label: str | None = None) -> None:
        """An indexed operator degraded to its vanilla plan."""
        with self._lock:
            self.index_fallbacks += 1

    def bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                name: getattr(self, name)
                for name in (
                    "jobs",
                    "stages",
                    "tasks",
                    "task_failures",
                    "task_retries",
                    "fetch_failures",
                    "recomputed_map_stages",
                    "speculative_tasks",
                    "speculative_wins",
                    "stage_timeouts",
                    "workers_lost",
                    "cluster_timeouts",
                    "plan_cache_hits",
                    "plan_cache_misses",
                    "plan_cache_full_hits",
                    "index_fallbacks",
                    "coalesced_shuffles",
                    "coalesced_partitions",
                    "runtime_broadcast_joins",
                )
            }


class DAGScheduler:
    """Runs jobs for an :class:`~repro.engine.context.EngineContext`."""

    _job_ids = itertools.count()

    def __init__(
        self,
        shuffle_manager: ShuffleManager,
        pool: ThreadPoolExecutor,
        config: Config | None = None,
        injector: FaultInjector | None = None,
        backend: "Any | None" = None,
    ):
        self._shuffles = shuffle_manager
        self._pool = pool
        self._config = config or Config()
        self._injector = injector or NULL_INJECTOR
        if backend is None:
            from repro.cluster.backend import LocalBackend

            backend = LocalBackend()
        self._backend = backend
        # Serialize whole jobs: tasks within a stage are parallel, but two
        # concurrent jobs sharing lineage would race on map-output state.
        self._job_lock = threading.RLock()
        # Lineage of the active job: shuffle_id → dependency, consulted
        # when a fetch failure demands recomputation (one job at a time).
        self._lineage: dict[int, ShuffleDependency] = {}  # guarded-by: _job_lock
        self.metrics = SchedulerMetrics()
        # Set by the serving runtime when resource governance is on;
        # None keeps every serving hook a single attribute check.
        self.serving: "ServingRuntime | None" = None

    # ------------------------------------------------------------------

    def run_job(
        self,
        rdd: RDD,
        func: Callable[[Iterator[Any]], Any],
        partitions: Sequence[int] | None = None,
    ) -> list[Any]:
        """Run ``func`` over the given partitions of ``rdd``; returns the
        per-partition results in partition order."""
        job = JobMetrics(job_id=next(DAGScheduler._job_ids))
        query = current_query()
        # Polling acquire (deadline-aware for served queries), then a
        # reentrant with-block so the lock discipline stays textual.
        self._acquire_job_lock(query)
        try:
            with self._job_lock:
                # The backend hooks run under the job lock: one job at a
                # time, so the cluster backend's single shared cancel
                # flag always belongs to *this* job's query.
                self._backend.begin_job(query)
                try:
                    results = self._run_job_locked(rdd, func, partitions, job, query)
                finally:
                    self._backend.end_job(query)
        finally:
            self._job_lock.release()
        self.metrics.record_job(job)
        return results

    def _run_job_locked(  # requires-lock: _job_lock
        self,
        rdd: RDD,
        func: Callable[[Iterator[Any]], Any],
        partitions: Sequence[int] | None,
        job: JobMetrics,
        query: QueryContext | None,
    ) -> list[Any]:
        missing, lineage, readers, index_sensitive = self._collect_shuffles(rdd)
        self._lineage = lineage
        # Coalescing renumbers reduce partitions, so it is only
        # attempted when (a) adaptivity is on, (b) the caller asked
        # for *all* partitions (explicit indices, e.g. take(), were
        # chosen against the planned count), and (c) nothing in the
        # job graph depends on partition identity.
        coalesce = (
            self._config.adaptive_enabled
            and partitions is None
            and not index_sensitive
        )
        try:
            for dep in missing:
                if query is not None:
                    query.check()
                self._run_map_stage(dep, job)
                if coalesce:
                    # Map-output sizes are now recorded: shrink tiny
                    # adjacent reduce buckets before anything reads
                    # them (the next map stage or the result stage).
                    for reader in readers.get(dep.shuffle_id, ()):
                        self._maybe_coalesce(dep, reader)
            if partitions is None:
                # Resolved only now: coalescing may have shrunk the
                # target RDD's partition count.
                partitions = range(rdd.num_partitions)
            return self._run_result_stage(rdd, func, partitions, job)
        except QueryCancelledError:
            # A cancelled job must not leave half-written shuffle
            # state behind: a later run would see the shuffle as
            # registered-but-incomplete and fetch into lineage
            # recomputation against stale partial outputs. Complete
            # shuffles are durable job results and stay reusable.
            self._drop_incomplete_shuffles(lineage)
            raise
        finally:
            self._lineage = {}

    def _acquire_job_lock(self, query: QueryContext | None) -> None:
        """Take the whole-job lock; a served query polls its deadline /
        cancellation token while queued behind other jobs instead of
        blocking indefinitely."""
        if query is None:
            self._job_lock.acquire()
            return
        while not self._job_lock.acquire(timeout=_DRIVER_TICK_S):
            query.check()

    def _drop_incomplete_shuffles(
        self, lineage: dict[int, ShuffleDependency]
    ) -> None:
        # Caller holds _job_lock (acquired explicitly in run_job, so a
        # textual with-block annotation cannot express it).
        for shuffle_id in lineage:
            if not self._shuffles.is_complete(shuffle_id):
                self._shuffles.remove_shuffle(shuffle_id)

    def _maybe_coalesce(self, dep: ShuffleDependency, reader: "Any") -> None:
        """Merge adjacent small reduce buckets of one completed shuffle."""
        if not reader.allow_coalesce or reader._reduce_groups is not None:
            return
        sizes = self._shuffles.reduce_sizes(dep.shuffle_id)
        if sizes is None or len(sizes) <= 1:
            return
        target = self._config.target_reduce_bytes
        groups: list[list[int]] = []
        current: list[int] = []
        current_bytes = 0
        for index, (_rows, est_bytes) in enumerate(sizes):
            if current and current_bytes + est_bytes > target:
                groups.append(current)
                current, current_bytes = [], 0
            current.append(index)
            current_bytes += est_bytes
        if current:
            groups.append(current)
        if len(groups) >= len(sizes):
            return  # nothing to merge
        reader.set_coalesce_groups(groups)
        self.metrics.bump("coalesced_shuffles")
        self.metrics.bump("coalesced_partitions", len(sizes) - len(groups))

    # ------------------------------------------------------------------

    def _collect_shuffles(
        self, rdd: RDD
    ) -> tuple[
        list[ShuffleDependency],
        dict[int, ShuffleDependency],
        dict[int, list[RDD]],
        bool,
    ]:
        """Walk the lineage: returns (incomplete shuffles in execution
        order, every reachable shuffle keyed by id, the reader RDD(s)
        per shuffle id, and whether any reachable RDD is
        index-sensitive).

        The full map is kept even for complete shuffles — their outputs
        can still be lost mid-job and need lineage recomputation. The
        readers and index-sensitivity feed adaptive coalescing.
        """
        ordered: list[ShuffleDependency] = []
        lineage: dict[int, ShuffleDependency] = {}
        readers: dict[int, list[RDD]] = {}
        seen_rdds: set[int] = set()
        index_sensitive = False

        def visit(node: RDD) -> None:
            nonlocal index_sensitive
            if node.rdd_id in seen_rdds:
                return
            seen_rdds.add(node.rdd_id)
            if node._index_sensitive:
                index_sensitive = True
            # A cached RDD whose every partition is stored needs no
            # upstream recomputation: its shuffles can be skipped.
            if node.is_cached and self._fully_cached(node):
                return
            for edge in node.dependencies:
                visit(edge.rdd)
                if isinstance(edge, ShuffleDependencyEdge):
                    dep = edge.shuffle
                    readers.setdefault(dep.shuffle_id, []).append(node)
                    if dep.shuffle_id in lineage:
                        continue
                    lineage[dep.shuffle_id] = dep
                    if not self._shuffles.is_complete(dep.shuffle_id):
                        ordered.append(dep)

        visit(rdd)
        return ordered, lineage, readers, index_sensitive

    def _fully_cached(self, rdd: RDD) -> bool:
        bm = rdd.context.block_manager
        return all(bm.contains((rdd.rdd_id, p)) for p in range(rdd.num_partitions))

    def _run_map_stage(
        self,
        dep: ShuffleDependency,
        job: JobMetrics,
        map_indices: Sequence[int] | None = None,
    ) -> None:
        parent: RDD = dep.rdd
        num_maps = parent.num_partitions
        self._shuffles.register_shuffle(dep.shuffle_id, num_maps)
        if map_indices is None:
            # Only the absent outputs: a full first run computes all of
            # them, a recomputation touches just what was lost.
            map_indices = self._shuffles.missing_map_indices(dep.shuffle_id)
        indices = list(map_indices)
        if not indices:
            return
        stage_id = job.stages
        job.stages += 1
        injector = self._injector
        # The writer is a standalone callable (not a bound method of the
        # manager) so map tasks stay picklable for the process backend;
        # the in-memory writer registers directly and the commit below
        # is a no-op, the cluster writer spills and returns a MapStatus
        # that the commit registers.
        writer = self._shuffles.map_writer(dep)

        def map_task(map_index: int) -> Any:
            try:
                injector.maybe_delay("task.slow")
                injector.maybe_fail("task")
                records = parent.iterator(map_index)
                return writer(map_index, records)
            except (TaskError, QueryCancelledError):
                # Cancellation is not a task failure: it propagates
                # untouched so the failure policy re-raises it verbatim.
                raise
            except Exception as exc:  # noqa: BLE001 - wrap any task failure
                raise TaskError(stage_id, map_index, exc) from exc

        job.tasks += len(indices)
        statuses = self._run_stage(map_task, indices, job, stage_id)
        self._shuffles.commit_map_outputs(
            dep.shuffle_id, [s for s in statuses if s is not None]
        )

    def _run_result_stage(
        self,
        rdd: RDD,
        func: Callable[[Iterator[Any]], Any],
        partitions: Sequence[int],
        job: JobMetrics,
    ) -> list[Any]:
        stage_id = job.stages
        job.stages += 1
        job.tasks += len(partitions)
        injector = self._injector

        def result_task(split: int) -> Any:
            try:
                injector.maybe_delay("task.slow")
                injector.maybe_fail("task")
                return func(rdd.iterator(split))
            except (TaskError, QueryCancelledError):
                raise
            except Exception as exc:  # noqa: BLE001 - wrap any task failure
                raise TaskError(stage_id, split, exc) from exc

        return self._run_stage(result_task, partitions, job, stage_id)

    # ------------------------------------------------------------------
    # Stage execution with retries / deadline / speculation
    # ------------------------------------------------------------------

    def _run_stage(
        self,
        task: Callable[[int], Any],
        splits: Sequence[int],
        job: JobMetrics,
        stage_id: int,
    ) -> list[Any]:
        splits = list(splits)
        if not splits:
            return []
        clock = _StageClock(stage_id, self._config.stage_timeout_s, self.metrics)
        if len(splits) == 1:
            # Inline fast path: deterministic single-task stages never
            # touch the pool (and never deadlock a saturated pool during
            # nested recomputation).
            return [self._run_task_inline(task, splits[0], job, stage_id, clock)]
        return self._run_stage_pooled(task, splits, job, stage_id, clock)

    def _run_task_inline(
        self,
        task: Callable[[int], Any],
        split: int,
        job: JobMetrics,
        stage_id: int,
        clock: _StageClock,
    ) -> Any:
        failures = _TaskFailures()
        query = current_query()
        while True:
            clock.check()
            if query is not None:
                query.check()
            try:
                value = task(split)
                self._note_retry_success(failures)
                return value
            except BaseException as exc:  # lint: allow[ET002] -- _on_task_failure re-raises every non-transient class
                self._on_task_failure(exc, split, job, stage_id, failures)
                delay = self._backoff(failures.attempts)
                if delay:
                    time.sleep(delay)

    def _run_stage_pooled(
        self,
        task: Callable[[int], Any],
        splits: list[int],
        job: JobMetrics,
        stage_id: int,
        clock: _StageClock,
    ) -> list[Any]:
        cfg = self._config
        abort = threading.Event()
        results: dict[int, Any] = {}
        failures: dict[int, _TaskFailures] = {s: _TaskFailures() for s in splits}
        speculated: set[int] = set()
        durations: list[float] = []
        inflight: dict[Future, tuple[int, bool, float]] = {}
        # Pool threads do not inherit the driver's contextvars: capture
        # the served query here and re-activate it around each attempt
        # so in-task poll sites (shuffle drain, codegen chunks) see it.
        query = current_query()

        # Pooled attempts go through the executor backend: in-process
        # for LocalBackend, dispatched to a worker process for
        # ProcessBackend. Inline single-split stages deliberately stay
        # driver-side (_run_task_inline) so result closures that cannot
        # cross a process boundary — take()'s collectors, local-variable
        # sinks — keep working regardless of backend.
        backend = self._backend

        def attempt(split: int, delay: float, prefer_healthy: bool) -> Any:
            if delay:
                time.sleep(delay)
            if abort.is_set():
                raise _StageAborted()
            if query is None:
                return backend.run_task(task, split, prefer_healthy)
            token = activate(query)
            try:
                query.check()
                return backend.run_task(task, split, prefer_healthy)
            finally:
                deactivate(token)

        def submit(split: int, delay: float = 0.0, speculative: bool = False) -> None:
            # Speculative copies route around SUSPECT slots: a backup
            # queued behind the very straggler it races is useless.
            fut = self._pool.submit(attempt, split, delay, speculative)
            inflight[fut] = (split, speculative, time.monotonic())

        for s in splits:  # lint: allow[CP001] -- nonblocking enqueue; the wait loop below polls every tick
            submit(s)

        try:
            while len(results) < len(splits):
                clock.check()
                if query is not None:
                    query.check()
                done, _ = wait(
                    list(inflight), timeout=_DRIVER_TICK_S, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                for fut in done:
                    split, speculative, started = inflight.pop(fut)
                    if split in results:
                        continue  # the other attempt already won
                    try:
                        value = fut.result()
                    except _StageAborted:
                        continue
                    except BaseException as exc:  # lint: allow[ET002] -- routed to _on_task_failure, which re-raises non-transients
                        if speculative:
                            # The original attempt still owns the split;
                            # a crashed speculative copy is just noise.
                            continue
                        self._on_task_failure(
                            exc, split, job, stage_id, failures[split]
                        )
                        submit(split, delay=self._backoff(failures[split].attempts))
                        continue
                    results[split] = value
                    durations.append(now - started)
                    self._note_retry_success(failures[split])
                    if speculative:
                        self.metrics.bump("speculative_wins")
                if cfg.speculation:
                    self._maybe_speculate(
                        len(splits), results, inflight, speculated, durations, submit, now
                    )
                    self._speculate_suspects(
                        results, inflight, speculated, submit
                    )
        except BaseException:
            # Doomed stage: stop burning the pool. Queued attempts are
            # cancelled outright; running ones see the abort flag on
            # their next (re)submission.
            abort.set()
            for fut in inflight:
                fut.cancel()
            raise
        return [results[s] for s in splits]

    def _maybe_speculate(
        self,
        total: int,
        results: dict[int, Any],
        inflight: dict[Future, tuple[int, bool, float]],
        speculated: set[int],
        durations: list[float],
        submit: Callable[..., None],
        now: float,
    ) -> None:
        cfg = self._config
        needed = max(1, int(cfg.speculation_quantile * total))
        if len(durations) < needed:
            return
        median = sorted(durations)[len(durations) // 2]
        threshold = max(cfg.speculation_multiplier * median, 1e-3)
        for split, speculative, started in list(inflight.values()):
            if speculative or split in results or split in speculated:
                continue
            if now - started > threshold:
                speculated.add(split)
                self.metrics.bump("speculative_tasks")
                submit(split, speculative=True)

    def _speculate_suspects(
        self,
        results: dict[int, Any],
        inflight: dict[Future, tuple[int, bool, float]],
        speculated: set[int],
        submit: Callable[..., None],
    ) -> None:
        """Liveness-driven speculation: a task in flight on a slot the
        heartbeat monitor already distrusts gets its backup immediately,
        without waiting for the duration-quantile heuristic — the
        monitor's SUSPECT verdict *is* the straggler signal."""
        suspects = self._backend.suspect_slots()
        if not suspects:
            return
        slot_for = getattr(self._backend, "slot_for_split", None)
        if slot_for is None:
            return
        for split, speculative, _started in list(inflight.values()):
            if speculative or split in results or split in speculated:
                continue
            if slot_for(split) in suspects:
                speculated.add(split)
                self.metrics.bump("speculative_tasks")
                submit(split, speculative=True)

    def _note_retry_success(self, failures: _TaskFailures) -> None:
        """A split that previously failed on a cluster RPC fault just
        completed: the respawn healed it, so the breaker resets."""
        if failures.rpc_faults and self.serving is not None:
            self.serving.breaker("cluster.rpc").record_success()

    # ------------------------------------------------------------------
    # Failure policy
    # ------------------------------------------------------------------

    def _on_task_failure(
        self,
        exc: BaseException,
        split: int,
        job: JobMetrics,
        stage_id: int,
        failures: _TaskFailures,
    ) -> None:
        """Central per-task failure policy.

        Updates the failure accounting in place when the task should
        be retried; raises otherwise. Fetch failures trigger lineage
        recomputation of the lost map outputs before the retry, and
        draw on a separate, wider budget than crashes: the recompute
        is what repairs them, so a task that reads many (possibly
        coalesced) shuffle buckets must not burn its crash budget on
        losses it did not cause.
        """
        cancelled = _find_cancellation(exc)
        if cancelled is not None:
            # Not a failure to retry around: surface the cancellation
            # itself so the job unwinds and releases its slots.
            raise cancelled
        self.metrics.bump("task_failures")
        fetch = _find_fetch_failure(exc)
        if fetch is not None:
            self.metrics.bump("fetch_failures")
            breaker = None if self.serving is None else self.serving.breaker(
                "shuffle.fetch"
            )
            if breaker is not None:
                breaker.record_failure()
                if not breaker.allow():
                    # Persistent fetch failure: fast-fail instead of
                    # burning the fetch retry budget on a dead shuffle.
                    raise RetryExhaustedError(
                        f"stage {stage_id}, partition {split}",
                        failures.attempts + 1,
                        CircuitOpenError("shuffle.fetch", breaker.retry_after()),
                    ) from exc
            self._recover_lost_shuffle(fetch, job)
            if breaker is not None:
                # Lineage recomputation is the repair for a lost fetch;
                # reaching here means the recompute succeeded.
                breaker.record_success()
        transient = _find_transient(exc)
        if isinstance(transient, WorkerLostError):
            self.metrics.bump("workers_lost")
        if isinstance(transient, ClusterTimeoutError):
            self.metrics.bump("cluster_timeouts")
        if isinstance(transient, (WorkerLostError, ClusterTimeoutError)):
            failures.rpc_faults += 1
            breaker = None if self.serving is None else self.serving.breaker(
                "cluster.rpc"
            )
            if breaker is not None:
                breaker.record_failure()
                if not breaker.allow():
                    # Workers dying or timing out faster than respawn
                    # can heal: fast-fail instead of feeding more tasks
                    # into a flapping cluster.
                    raise RetryExhaustedError(
                        f"stage {stage_id}, partition {split}",
                        failures.attempts + 1,
                        CircuitOpenError("cluster.rpc", breaker.retry_after()),
                    ) from exc
        if transient is None and not self._config.retry_all_errors:
            raise exc
        budget = self._config.task_max_retries
        if fetch is not None:
            failures.fetches += 1
            exhausted = failures.fetches > budget * _FETCH_RETRY_FACTOR
        else:
            failures.crashes += 1
            exhausted = failures.crashes > budget
        if exhausted:
            cause = exc.cause if isinstance(exc, TaskError) else exc
            raise RetryExhaustedError(
                f"stage {stage_id}, partition {split}", failures.attempts, cause
            ) from exc
        self.metrics.bump("task_retries")

    def _recover_lost_shuffle(self, fetch: FetchFailedError, job: JobMetrics) -> None:
        """Lineage recomputation: re-run exactly the missing map tasks
        of the shuffle a fetch failed against."""
        dep = self._lineage.get(fetch.shuffle_id)
        if dep is None:
            # Not in this job's lineage (shouldn't happen): the retry
            # will hit the same wall and exhaust honestly.
            return
        missing = self._shuffles.missing_map_indices(fetch.shuffle_id)
        if not missing:
            return  # another task's failure already recomputed it
        self.metrics.bump("recomputed_map_stages")
        self._run_map_stage(dep, job, map_indices=missing)

    def _backoff(self, failures: int) -> float:
        base = self._config.retry_backoff_s
        if base <= 0 or failures <= 0:
            return 0.0
        return min(base * (2 ** (failures - 1)), _MAX_BACKOFF_S)
