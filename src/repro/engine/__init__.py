"""Spark-core substrate: RDDs, DAG scheduler, shuffle, cache, broadcast.

This package is a faithful, single-process analogue of the Spark core
execution model the paper builds on:

* :class:`~repro.engine.rdd.RDD` — lazy, partitioned, immutable
  collections with narrow and shuffle dependencies;
* :class:`~repro.engine.scheduler.DAGScheduler` — splits the dependency
  graph into stages at shuffle boundaries and runs each stage's tasks on
  a thread pool (our stand-in for a cluster of executors);
* :class:`~repro.engine.shuffle.ShuffleManager` — in-memory map-output
  registry used by wide dependencies;
* :class:`~repro.engine.cache.BlockManager` — per-partition cache with
  LRU eviction, the substrate the Indexed DataFrame "stays cached" in;
* :class:`~repro.engine.context.EngineContext` — the ``SparkContext``
  analogue tying the pieces together.
"""

from repro.engine.accumulators import Accumulator, list_accumulator, long_accumulator
from repro.engine.context import EngineContext
from repro.engine.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.engine.rdd import RDD

__all__ = [
    "Accumulator",
    "long_accumulator",
    "list_accumulator",
    "EngineContext",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "RDD",
]
