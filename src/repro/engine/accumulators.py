"""Accumulators: write-only shared counters for tasks.

The Spark primitive for side-channel metrics (rows seen, bad records,
bytes read). Tasks only ``add``; the driver reads ``value``. Thread
safe, since tasks of one stage run concurrently on the pool.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Generic, TypeVar

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A commutative, associative accumulator."""

    _ids = itertools.count()

    def __init__(self, zero: T, op: Callable[[T, T], T], name: str | None = None):
        self.accumulator_id = next(Accumulator._ids)
        self.name = name or f"accumulator_{self.accumulator_id}"
        self._zero = zero
        self._op = op
        self._value = zero
        self._lock = threading.Lock()

    def add(self, amount: T) -> None:
        """Fold ``amount`` into the accumulator (callable from tasks)."""
        with self._lock:
            self._value = self._op(self._value, amount)

    def __iadd__(self, amount: T) -> "Accumulator[T]":
        self.add(amount)
        return self

    @property
    def value(self) -> T:
        """Driver-side read of the current total."""
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = self._zero

    def __repr__(self) -> str:
        return f"Accumulator({self.name}={self.value!r})"


def long_accumulator(name: str | None = None) -> Accumulator[int]:
    """A counting accumulator starting at 0."""
    return Accumulator(0, lambda a, b: a + b, name)


def list_accumulator(name: str | None = None) -> Accumulator[list]:
    """Collects items (e.g. sampled bad records)."""
    return Accumulator([], lambda a, b: a + [b], name)
