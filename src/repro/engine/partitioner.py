"""Partitioners: deciding which reduce partition a key lands in.

The Indexed DataFrame is hash-partitioned on its indexed column (paper
§2, "Index Creation"), so :class:`HashPartitioner` equality is what lets
the planner elide a shuffle when the probe side of an indexed join is
already co-partitioned with the index.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Any, Sequence


def portable_hash(key: Any) -> int:
    """Deterministic, non-negative hash for partitioning.

    Python's built-in ``hash`` is salted per-process for strings; we
    need a stable value so that re-partitioning the same key always
    lands in the same partition (and so tests are reproducible). Small
    fixed-width mixing of the repr-independent value.
    """
    if key is None:
        return 0
    if isinstance(key, int):
        # bools intentionally take this path too: True == 1 in Python,
        # so equal keys must hash equally.
        # splitmix64 finalizer: consecutive ids spread across partitions.
        h = (key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return (h ^ (h >> 31)) & 0x7FFFFFFFFFFFFFFF
    if isinstance(key, float):
        if key.is_integer():
            return portable_hash(int(key))
        return hash(key) & 0x7FFFFFFFFFFFFFFF
    if isinstance(key, str):
        h = 0xCBF29CE484222325
        for ch in key.encode("utf-8"):
            h ^= ch
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h & 0x7FFFFFFFFFFFFFFF
    if isinstance(key, bytes):
        h = 0xCBF29CE484222325
        for ch in key:
            h ^= ch
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h & 0x7FFFFFFFFFFFFFFF
    if isinstance(key, tuple):
        h = 0x345678
        for item in key:
            h = (h * 1000003) ^ portable_hash(item)
            h &= 0xFFFFFFFFFFFFFFFF
        return h & 0x7FFFFFFFFFFFFFFF
    return hash(key) & 0x7FFFFFFFFFFFFFFF


def bucket_keys(
    keys: Sequence[Any],
    partitioner: "Partitioner",
    dedupe: bool = True,
    skip_none: bool = True,
) -> list[list[Any]]:
    """Route ``keys`` to their partitions: one key list per partition.

    The single hash-routing helper shared by index lookups, partition
    pruning, and fine-grained appends — every consumer that asks "which
    partition(s) hold these keys" goes through here so routing and
    exchange can never disagree. ``dedupe`` drops repeated keys
    (preserving first-seen order); ``skip_none`` drops NULL keys (they
    match no equality predicate and index no row).
    """
    buckets: list[list[Any]] = [[] for _ in range(partitioner.num_partitions)]
    seen: set[Any] = set()
    for key in keys:
        if skip_none and key is None:
            continue
        if dedupe:
            if key in seen:
                continue
            seen.add(key)
        buckets[partitioner.partition(key)].append(key)
    return buckets


class Partitioner(ABC):
    """Maps keys to partition indices in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions

    @abstractmethod
    def partition(self, key: Any) -> int:
        """Return the partition index for ``key``."""

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_partitions})"


class HashPartitioner(Partitioner):
    """Partition by ``portable_hash(key) % num_partitions``."""

    def partition(self, key: Any) -> int:
        return portable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Partition by key range, given sorted split bounds.

    ``bounds`` has ``num_partitions - 1`` entries; keys ``<= bounds[i]``
    go to partition ``i``, keys above the last bound go to the final
    partition. Used by sort-based operators.
    """

    def __init__(self, bounds: Sequence[Any]):
        super().__init__(len(bounds) + 1)
        self.bounds = list(bounds)

    @classmethod
    def from_sample(cls, sample: Sequence[Any], num_partitions: int) -> "RangePartitioner":
        """Build bounds from a sample of keys (Spark's reservoir trick,
        simplified to a sort + evenly spaced picks)."""
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        ordered = sorted(sample)
        if num_partitions == 1 or not ordered:
            return cls([])
        step = len(ordered) / num_partitions
        bounds = []
        for i in range(1, num_partitions):
            bounds.append(ordered[min(int(i * step), len(ordered) - 1)])
        # Dedupe while preserving order; fewer bounds = fewer partitions.
        unique: list[Any] = []
        for b in bounds:
            if not unique or b != unique[-1]:
                unique.append(b)
        return cls(unique)

    def partition(self, key: Any) -> int:
        return bisect.bisect_left(self.bounds, key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RangePartitioner) and self.bounds == other.bounds

    def __hash__(self) -> int:
        return hash(("RangePartitioner", tuple(self.bounds)))
