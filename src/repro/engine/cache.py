"""Block manager: the in-memory cache RDD partitions live in.

The paper's key pain point is that *"updates to the graph invalidate
caching of Dataframes"* in vanilla Spark — a cached DataFrame must be
re-materialized after any change, while the Indexed DataFrame stays
cached across appends. This module provides the substrate for both
behaviours: cached blocks keyed by ``(rdd_id, partition)``, LRU
eviction under a byte budget, and hit/miss statistics the benchmarks
report.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable


def estimate_size(obj: Any, _depth: int = 0) -> int:
    """Rough recursive size estimate in bytes.

    Precise accounting is not the point — eviction order and budget
    pressure are. Containers are sampled shallowly beyond depth 2 to
    keep the estimator cheap on large cached partitions.
    """
    size = sys.getsizeof(obj)
    if _depth >= 3:
        return size
    if isinstance(obj, (list, tuple, set, frozenset)):
        n = len(obj)
        if n == 0:
            return size
        if n <= 16:
            return size + sum(estimate_size(x, _depth + 1) for x in obj)
        sample = list(obj)[:16]
        avg = sum(estimate_size(x, _depth + 1) for x in sample) / len(sample)
        return size + int(avg * n)
    if isinstance(obj, dict):
        n = len(obj)
        if n == 0:
            return size
        items = list(obj.items())[:16]
        avg = sum(
            estimate_size(k, _depth + 1) + estimate_size(v, _depth + 1) for k, v in items
        ) / len(items)
        return size + int(avg * n)
    if isinstance(obj, (bytes, bytearray, memoryview, str)):
        return size
    return size


@dataclass
class CacheStats:
    """Counters exposed to tests and benchmarks."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stored_bytes: int = 0
    failed_computes: int = 0
    recovery_invalidations: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "stored_bytes": self.stored_bytes,
                "failed_computes": self.failed_computes,
                "recovery_invalidations": self.recovery_invalidations,
            }


class BlockManager:
    """LRU cache of computed partitions under a byte budget.

    Keys are ``(rdd_id, partition_index)``. A block larger than the
    whole budget is returned to the caller but not stored (matching
    Spark's behaviour of skipping blocks that do not fit).
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        self.capacity_bytes = capacity_bytes
        self._lock = threading.RLock()
        self._blocks: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()  # guarded-by: _lock
        self.stats = CacheStats()

    def get(self, key: Hashable) -> Any | None:
        with self._lock:
            entry = self._blocks.get(key)
            if entry is None:
                with self.stats._lock:
                    self.stats.misses += 1
                return None
            self._blocks.move_to_end(key)
            with self.stats._lock:
                self.stats.hits += 1
            return entry[0]

    def put(self, key: Hashable, value: Any) -> bool:
        """Store a block; returns False if it did not fit at all."""
        size = estimate_size(value)
        if size > self.capacity_bytes:
            return False
        with self._lock:
            if key in self._blocks:
                _, old = self._blocks.pop(key)
                with self.stats._lock:
                    self.stats.stored_bytes -= old
            self._evict_until_fits(size)
            self._blocks[key] = (value, size)
            with self.stats._lock:
                self.stats.stored_bytes += size
        return True

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached block, or compute and cache it.

        The compute function runs outside the lock so that independent
        partitions can be materialized concurrently; a racing duplicate
        computation is possible but harmless (last write wins).
        """
        cached = self.get(key)
        if cached is not None:
            return cached
        try:
            value = compute()
        except BaseException:
            # A crashed (or fault-injected) task must never poison the
            # cache with a partial block; count it so retry storms are
            # visible in cache stats, and let the scheduler retry.
            with self.stats._lock:
                self.stats.failed_computes += 1
            raise
        self.put(key, value)
        return value

    def contains(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._blocks

    def remove_rdd(self, rdd_id: int) -> int:
        """Drop every block belonging to ``rdd_id``; returns count dropped."""
        with self._lock:
            doomed = [k for k in self._blocks if isinstance(k, tuple) and k[0] == rdd_id]
            for k in doomed:
                _, size = self._blocks.pop(k)
                with self.stats._lock:
                    self.stats.stored_bytes -= size
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            with self.stats._lock:
                self.stats.stored_bytes = 0

    def invalidate_all(self) -> int:
        """Drop every block after crash recovery; returns count dropped.

        Cached blocks can hold references into pre-recovery storage
        objects (batch buffers, snapshots) that the rebuilt store no
        longer owns — serving them would mix two incarnations of the
        data. Counted separately from ordinary evictions so tests can
        assert recovery actually flushed the cache.
        """
        with self._lock:
            dropped = len(self._blocks)
            self._blocks.clear()
            with self.stats._lock:
                self.stats.stored_bytes = 0
                self.stats.recovery_invalidations += dropped
        return dropped

    def _evict_until_fits(self, incoming: int) -> None:  # requires-lock: _lock
        while self._blocks and self.stats.stored_bytes + incoming > self.capacity_bytes:
            _key, (_value, size) = self._blocks.popitem(last=False)
            with self.stats._lock:
                self.stats.stored_bytes -= size
                self.stats.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)
