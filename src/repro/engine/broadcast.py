"""Broadcast variables.

In a single-process engine a broadcast is just a shared read-only
reference, but we keep the Spark API shape — ``context.broadcast(x)``
returning a handle with ``.value`` — because the indexed join's
broadcast fallback (paper §2, "Indexed Join") is expressed through it,
and because destroying a broadcast must invalidate readers exactly as
in Spark.
"""

from __future__ import annotations

import itertools
from typing import Any, Generic, TypeVar

from repro.errors import EngineError

T = TypeVar("T")


class Broadcast(Generic[T]):
    """Read-only value shared by all tasks of a job."""

    _ids = itertools.count()

    def __init__(self, value: T):
        self.broadcast_id = next(Broadcast._ids)
        self._value: T | None = value
        self._valid = True

    @property
    def value(self) -> T:
        if not self._valid:
            raise EngineError(f"broadcast {self.broadcast_id} was destroyed")
        return self._value  # type: ignore[return-value]

    def destroy(self) -> None:
        """Release the value; subsequent reads raise."""
        self._valid = False
        self._value = None

    def __repr__(self) -> str:
        state = "valid" if self._valid else "destroyed"
        return f"Broadcast(id={self.broadcast_id}, {state})"
