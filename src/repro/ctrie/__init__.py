"""Concurrent trie (cTrie) with constant-time snapshots.

Implementation of Prokopec et al., *Concurrent Tries with Efficient
Non-blocking Snapshots* (PPoPP 2012) — the index structure inside every
Indexed DataFrame partition (paper §2). Key properties the paper's
system relies on:

* sub-linear (O(log32 n)) lookup and insert for point queries;
* lock-free-style concurrent readers and writers (CAS emulated with
  fine-grained atomics under the GIL);
* **O(1) snapshots** via generation stamping — the mechanism behind the
  Indexed DataFrame's multi-version concurrency: queries read a stable
  snapshot while appends keep mutating the live trie.
"""

from repro.ctrie.atomic import AtomicReference
from repro.ctrie.ctrie import CTrie

__all__ = ["AtomicReference", "CTrie"]
