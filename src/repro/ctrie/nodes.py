"""Node types of the concurrent trie.

The structure follows the reference Scala implementation
(``scala.collection.concurrent.TrieMap``):

* an :class:`INode` is an *indirection* node whose ``main`` pointer is
  updated with GCAS; it carries the generation it was created in;
* a :class:`CNode` is a branch: a 32-bit bitmap plus a dense array of
  children (either :class:`SNode` leaves or nested :class:`INode`\\ s);
* an :class:`SNode` is a key/value leaf;
* a :class:`TNode` is a *tombed* singleton left behind by removals,
  compressed away lazily;
* an :class:`LNode` is a collision list used when two keys share the
  full 64-bit hash;
* a :class:`FailedNode` marks a GCAS that must roll back.

Generations (:class:`Gen`) are plain marker objects: a snapshot stamps
a fresh generation on the root, and writers copy any node of an older
generation before mutating beneath it — the copy-on-write that makes
snapshots O(1).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.ctrie.atomic import AtomicReference

#: Branching factor 2**W = 32 children per level.
W = 5
#: Hash width; beyond this depth collisions go to an LNode.
HASH_BITS = 64


class Gen:
    """Generation marker; identity is all that matters."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gen@{id(self):#x}"


class MainNode:
    """Base for nodes an INode's ``main`` pointer can reference.

    ``prev`` carries GCAS bookkeeping: a non-None value means the node
    is not yet committed (or has failed and must roll back).
    """

    __slots__ = ("prev",)

    def __init__(self) -> None:
        self.prev = AtomicReference(None)


class FailedNode(MainNode):
    """Marks a failed GCAS; ``wrapped`` is the node to roll back to."""

    __slots__ = ("wrapped",)

    def __init__(self, wrapped: MainNode):
        super().__init__()
        self.wrapped = wrapped
        self.prev.set(wrapped)


class SNode:
    """Immutable key/value leaf (a *branch*, not a main node)."""

    __slots__ = ("key", "value", "hash")

    def __init__(self, key: Any, value: Any, hash_: int):
        self.key = key
        self.value = value
        self.hash = hash_

    def copy(self) -> "SNode":
        return SNode(self.key, self.value, self.hash)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SNode({self.key!r}={self.value!r})"


class TNode(MainNode):
    """Tombed singleton: the last entry of a collapsed CNode."""

    __slots__ = ("key", "value", "hash")

    def __init__(self, key: Any, value: Any, hash_: int):
        super().__init__()
        self.key = key
        self.value = value
        self.hash = hash_

    def untombed(self) -> SNode:
        return SNode(self.key, self.value, self.hash)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TNode({self.key!r}={self.value!r})"


class LNode(MainNode):
    """Collision list for keys whose 64-bit hashes are fully equal."""

    __slots__ = ("entries",)

    def __init__(self, entries: Sequence[tuple[Any, Any]]):
        super().__init__()
        self.entries = tuple(entries)

    def inserted(self, key: Any, value: Any) -> "LNode":
        kept = [(k, v) for k, v in self.entries if k != key]
        kept.append((key, value))
        return LNode(kept)

    def removed(self, key: Any) -> "LNode":
        return LNode([(k, v) for k, v in self.entries if k != key])

    def get(self, key: Any) -> Any:
        for k, v in self.entries:
            if k == key:
                return v
        return _NO_VALUE

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LNode({list(self.entries)!r})"


class INode:
    """Indirection node; ``main`` is swung by GCAS."""

    __slots__ = ("main", "gen")

    def __init__(self, main: MainNode | None, gen: Gen):
        self.main = AtomicReference(main)
        self.gen = gen

    def copy_to_gen(self, gen: Gen, main: MainNode) -> "INode":
        """A fresh INode in ``gen`` sharing the (committed) main node."""
        return INode(main, gen)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"INode(gen={self.gen!r})"


class CNode(MainNode):
    """Branch node: bitmap + dense child array, immutable."""

    __slots__ = ("bitmap", "array", "gen")

    def __init__(self, bitmap: int, array: Sequence[Any], gen: Gen):
        super().__init__()
        self.bitmap = bitmap
        self.array = tuple(array)
        self.gen = gen

    # -- structural updates (all return new CNodes) ---------------------

    def inserted_at(self, pos: int, flag: int, branch: Any, gen: Gen) -> "CNode":
        arr = list(self.array)
        arr.insert(pos, branch)
        return CNode(self.bitmap | flag, arr, gen)

    def updated_at(self, pos: int, branch: Any, gen: Gen) -> "CNode":
        arr = list(self.array)
        arr[pos] = branch
        return CNode(self.bitmap, arr, gen)

    def removed_at(self, pos: int, flag: int, gen: Gen) -> "CNode":
        arr = list(self.array)
        del arr[pos]
        return CNode(self.bitmap & ~flag, arr, gen)

    def renewed(self, gen: Gen, trie: Any) -> "CNode":
        """Copy this CNode into ``gen``, copying INode children too —
        the copy-on-write step of the snapshot algorithm."""
        arr = []
        for child in self.array:
            if isinstance(child, INode):
                main = trie.gcas_read(child)
                arr.append(child.copy_to_gen(gen, main))
            else:
                arr.append(child)
        return CNode(self.bitmap, arr, gen)

    # -- compression -----------------------------------------------------

    def to_compressed(self, trie: Any, level: int, gen: Gen) -> MainNode:
        """Resurrect tombed children and contract if possible."""
        arr = []
        for child in self.array:
            if isinstance(child, INode):
                main = trie.gcas_read(child)
                if isinstance(main, TNode):
                    arr.append(main.untombed())
                else:
                    arr.append(child)
            else:
                arr.append(child)
        return CNode(self.bitmap, arr, gen).to_contracted(level)

    def to_contracted(self, level: int) -> MainNode:
        """A single-SNode CNode below the root contracts to a TNode."""
        if level > 0 and len(self.array) == 1:
            only = self.array[0]
            if isinstance(only, SNode):
                return TNode(only.key, only.value, only.hash)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CNode(bitmap={self.bitmap:#x}, children={len(self.array)})"


class _NoValue:
    """Sentinel distinct from any user value (None is a legal value)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<no-value>"


_NO_VALUE = _NoValue()
#: Sentinel returned by internal ops to request a retry from the root.
RESTART = _NoValue()


def flag_pos(hash_: int, level: int, bitmap: int) -> tuple[int, int]:
    """Bitmap flag and dense-array position for ``hash_`` at ``level``."""
    index = (hash_ >> level) & 0x1F
    flag = 1 << index
    pos = (bitmap & (flag - 1)).bit_count()
    return flag, pos


def dual(
    first: SNode, second: SNode, level: int, gen: Gen
) -> MainNode:
    """Build the subtree distinguishing two colliding SNodes.

    Descends levels until the hash bits differ; identical 64-bit hashes
    end in an LNode.
    """
    if level >= HASH_BITS:
        return LNode([(first.key, first.value), (second.key, second.value)])
    xidx = (first.hash >> level) & 0x1F
    yidx = (second.hash >> level) & 0x1F
    bmp = (1 << xidx) | (1 << yidx)
    if xidx == yidx:
        sub = INode(dual(first, second, level + W, gen), gen)
        return CNode(bmp, [sub], gen)
    if xidx < yidx:
        return CNode(bmp, [first, second], gen)
    return CNode(bmp, [second, first], gen)


def iterate_main(trie: Any, node: MainNode | None) -> Iterator[tuple[Any, Any]]:
    """Depth-first iteration over all key/value pairs under ``node``."""
    if node is None:
        return
    if isinstance(node, CNode):
        for child in node.array:
            if isinstance(child, SNode):
                yield (child.key, child.value)
            elif isinstance(child, INode):
                yield from iterate_main(trie, trie.gcas_read(child))
    elif isinstance(node, TNode):
        yield (node.key, node.value)
    elif isinstance(node, LNode):
        yield from node.entries
