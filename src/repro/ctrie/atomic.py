"""Atomic reference cells with compare-and-set.

CPython has no user-level CAS instruction, so we emulate one with a
per-cell lock. The lock is held only for the pointer comparison and
swap — the algorithms built on top (GCAS, RDCSS) retain their retry
structure and their semantics; only the progress guarantee weakens from
lock-free to fine-grained blocking, which is invisible to the paper's
evaluation (single process, GIL).

Comparison is by identity (``is``), exactly like a hardware CAS on a
pointer.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

#: Instrumented yield point for the deterministic interleaving driver
#: (:mod:`repro.analysis.interleave`). When installed, every atomic
#: operation calls the hook *on entry, before taking the cell lock* —
#: never while holding it, so the driver can park a thread here without
#: wedging other threads on the same cell. ``None`` (the default) costs
#: one global read per operation.
_yield_hook: Callable[[str], None] | None = None


def install_yield_hook(hook: Callable[[str], None]) -> None:
    """Install a yield hook; it receives the operation name per call."""
    global _yield_hook
    _yield_hook = hook


def clear_yield_hook() -> None:
    global _yield_hook
    _yield_hook = None


class AtomicReference:
    """A mutable cell supporting get / set / compare_and_set."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: Any = None):
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> Any:
        if _yield_hook is not None:
            _yield_hook("get")
        # A plain read is atomic under the GIL.
        return self._value

    def set(self, value: Any) -> None:
        if _yield_hook is not None:
            _yield_hook("set")
        with self._lock:
            self._value = value

    def compare_and_set(self, expect: Any, update: Any) -> bool:
        """Atomically set to ``update`` iff the current value *is*
        ``expect``. Returns True on success."""
        if _yield_hook is not None:
            _yield_hook("compare_and_set")
        with self._lock:
            if self._value is expect:
                self._value = update
                return True
            return False

    def get_and_set(self, value: Any) -> Any:
        if _yield_hook is not None:
            _yield_hook("get_and_set")
        with self._lock:
            old = self._value
            self._value = value
            return old

    def __repr__(self) -> str:
        return f"AtomicReference({self._value!r})"
