"""The concurrent trie proper: GCAS updates, RDCSS root swaps,
generation-stamped O(1) snapshots.

The control flow mirrors the reference Scala implementation:

* ``GCAS`` (generation-compare-and-swap) publishes a new main node on
  an INode only if the root generation has not changed underneath the
  writer — the mechanism that isolates snapshots from in-flight writes;
* ``RDCSS`` (restricted double-compare single-swap) swings the root to
  a new generation atomically with respect to the old root's main node;
* writers descending through a node of an older generation first copy
  it into the current generation (``CNode.renewed``), so a snapshot
  never observes post-snapshot mutations.

Public surface is dict-like (``insert``/``lookup``/``remove``,
``__getitem__`` and friends) plus :meth:`CTrie.snapshot` and
:meth:`CTrie.readonly_snapshot`.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.ctrie.atomic import AtomicReference
from repro.ctrie.nodes import (
    RESTART,
    W,
    CNode,
    FailedNode,
    Gen,
    INode,
    LNode,
    MainNode,
    SNode,
    TNode,
    _NO_VALUE,
    dual,
    flag_pos,
    iterate_main,
)
from repro.engine.partitioner import portable_hash
from repro.errors import ConcurrencyError


class _RDCSSDescriptor:
    """In-flight root swap: ``old`` → ``nv`` iff ``old``'s main is
    still ``expected_main``."""

    __slots__ = ("old", "expected_main", "nv", "committed")

    def __init__(self, old: INode, expected_main: MainNode, nv: INode):
        self.old = old
        self.expected_main = expected_main
        self.nv = nv
        self.committed = False


class CTrie:
    """A concurrent hash trie map with constant-time snapshots.

    Example::

        trie = CTrie()
        trie.insert("a", 1)
        snap = trie.readonly_snapshot()
        trie.insert("a", 2)
        assert snap["a"] == 1 and trie["a"] == 2
    """

    def __init__(self, root: INode | None = None, readonly: bool = False):
        if root is None:
            gen = Gen()
            root = INode(CNode(0, [], gen), gen)
        self._root = AtomicReference(root)
        self._readonly = readonly

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    @staticmethod
    def _hash(key: Any) -> int:
        return portable_hash(key)

    # ------------------------------------------------------------------
    # GCAS
    # ------------------------------------------------------------------

    def gcas_read(self, inode: INode) -> MainNode:
        main = inode.main.get()
        if main is not None and main.prev.get() is not None:
            return self._gcas_complete(inode, main)
        return main

    def _gcas_complete(self, inode: INode, main: MainNode | None) -> MainNode:
        while True:
            if main is None:
                return None  # type: ignore[return-value]
            prev = main.prev.get()
            if prev is None:
                return main
            root = self._rdcss_read_root(abort=True)
            if isinstance(prev, FailedNode):
                # A failed commit: roll the INode back to the old main.
                if inode.main.compare_and_set(main, prev.wrapped):
                    return prev.wrapped
                main = inode.main.get()
                continue
            if root.gen is inode.gen and not self._readonly:
                # Still in the current generation: try to commit.
                if main.prev.compare_and_set(prev, None):
                    return main
                continue
            # Generation moved on (a snapshot happened): fail the write.
            main.prev.compare_and_set(prev, FailedNode(prev))
            main = inode.main.get()

    def _gcas(self, inode: INode, old: MainNode, new: MainNode) -> bool:
        new.prev.set(old)
        if inode.main.compare_and_set(old, new):
            self._gcas_complete(inode, new)
            return new.prev.get() is None
        return False

    # ------------------------------------------------------------------
    # RDCSS on the root
    # ------------------------------------------------------------------

    def _rdcss_read_root(self, abort: bool = False) -> INode:
        root = self._root.get()
        if isinstance(root, _RDCSSDescriptor):
            return self._rdcss_complete(abort)
        return root

    def _rdcss_complete(self, abort: bool) -> INode:
        while True:
            value = self._root.get()
            if isinstance(value, INode):
                return value
            desc: _RDCSSDescriptor = value
            if abort:
                if self._root.compare_and_set(desc, desc.old):
                    return desc.old
                continue
            old_main = self.gcas_read(desc.old)
            if old_main is desc.expected_main:
                if self._root.compare_and_set(desc, desc.nv):
                    desc.committed = True
                    return desc.nv
                continue
            if self._root.compare_and_set(desc, desc.old):
                return desc.old

    def _rdcss_root(self, old: INode, expected_main: MainNode, nv: INode) -> bool:
        desc = _RDCSSDescriptor(old, expected_main, nv)
        if self._root.compare_and_set(old, desc):
            self._rdcss_complete(abort=False)
            return desc.committed
        return False

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    @classmethod
    def from_items(cls, items: "Any") -> "CTrie":
        """Bulk-load a fresh trie from ``(key, value)`` pairs.

        The checkpoint-restore path: a recovered cTrie is rebuilt from
        its serialized manifest (``to_dict``) before the trie is shared,
        so the loop needs no CAS retries beyond the ones ``insert``
        already performs on a private structure.
        """
        trie = cls()
        insert = trie.insert
        for key, value in items:
            insert(key, value)
        return trie

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        if self._readonly:
            raise ConcurrencyError("cannot insert into a read-only snapshot")
        h = self._hash(key)
        while True:
            root = self._rdcss_read_root()
            if self._iinsert(root, key, value, h, 0, None, root.gen):
                return

    def _iinsert(
        self,
        inode: INode,
        key: Any,
        value: Any,
        h: int,
        level: int,
        parent: INode | None,
        startgen: Gen,
    ) -> bool:
        main = self.gcas_read(inode)
        if isinstance(main, CNode):
            flag, pos = flag_pos(h, level, main.bitmap)
            if (main.bitmap & flag) == 0:
                renewed = main if main.gen is startgen else main.renewed(startgen, self)
                new = renewed.inserted_at(pos, flag, SNode(key, value, h), startgen)
                return self._gcas(inode, main, new)
            child = main.array[pos]
            if isinstance(child, INode):
                if startgen is child.gen:
                    return self._iinsert(child, key, value, h, level + W, inode, startgen)
                if self._gcas(inode, main, main.renewed(startgen, self)):
                    return self._iinsert(inode, key, value, h, level, parent, startgen)
                return False
            # SNode collision
            if child.hash == h and child.key == key:
                renewed = main if main.gen is startgen else main.renewed(startgen, self)
                return self._gcas(
                    inode, main, renewed.updated_at(pos, SNode(key, value, h), startgen)
                )
            renewed = main if main.gen is startgen else main.renewed(startgen, self)
            grown = INode(
                dual(child.copy(), SNode(key, value, h), level + W, startgen), startgen
            )
            return self._gcas(inode, main, renewed.updated_at(pos, grown, startgen))
        if isinstance(main, TNode):
            self._clean(parent, level - W)
            return False
        if isinstance(main, LNode):
            return self._gcas(inode, main, main.inserted(key, value))
        raise ConcurrencyError(f"unexpected main node {main!r}")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, key: Any, default: Any = None) -> Any:
        """Return the value for ``key`` or ``default``."""
        h = self._hash(key)
        while True:
            root = self._rdcss_read_root()
            result = self._ilookup(root, key, h, 0, None, root.gen)
            if result is not RESTART:
                return default if result is _NO_VALUE else result

    def _ilookup(
        self,
        inode: INode,
        key: Any,
        h: int,
        level: int,
        parent: INode | None,
        startgen: Gen,
    ) -> Any:
        main = self.gcas_read(inode)
        if isinstance(main, CNode):
            flag, pos = flag_pos(h, level, main.bitmap)
            if (main.bitmap & flag) == 0:
                return _NO_VALUE
            child = main.array[pos]
            if isinstance(child, INode):
                if self._readonly or startgen is child.gen:
                    return self._ilookup(child, key, h, level + W, inode, startgen)
                if self._gcas(inode, main, main.renewed(startgen, self)):
                    return self._ilookup(inode, key, h, level, parent, startgen)
                return RESTART
            if child.hash == h and child.key == key:
                return child.value
            return _NO_VALUE
        if isinstance(main, TNode):
            if self._readonly:
                if main.hash == h and main.key == key:
                    return main.value
                return _NO_VALUE
            self._clean(parent, level - W)
            return RESTART
        if isinstance(main, LNode):
            return main.get(key)
        raise ConcurrencyError(f"unexpected main node {main!r}")

    # ------------------------------------------------------------------
    # Remove
    # ------------------------------------------------------------------

    def remove(self, key: Any) -> Any:
        """Remove ``key``; returns the removed value or None."""
        if self._readonly:
            raise ConcurrencyError("cannot remove from a read-only snapshot")
        h = self._hash(key)
        while True:
            root = self._rdcss_read_root()
            result = self._iremove(root, key, h, 0, None, root.gen)
            if result is not RESTART:
                return None if result is _NO_VALUE else result

    def _iremove(
        self,
        inode: INode,
        key: Any,
        h: int,
        level: int,
        parent: INode | None,
        startgen: Gen,
    ) -> Any:
        main = self.gcas_read(inode)
        if isinstance(main, CNode):
            flag, pos = flag_pos(h, level, main.bitmap)
            if (main.bitmap & flag) == 0:
                return _NO_VALUE
            child = main.array[pos]
            if isinstance(child, INode):
                if startgen is child.gen:
                    result = self._iremove(child, key, h, level + W, inode, startgen)
                elif self._gcas(inode, main, main.renewed(startgen, self)):
                    result = self._iremove(inode, key, h, level, parent, startgen)
                else:
                    result = RESTART
            else:
                if child.hash == h and child.key == key:
                    contracted = main.removed_at(pos, flag, startgen).to_contracted(level)
                    if self._gcas(inode, main, contracted):
                        result = child.value
                    else:
                        result = RESTART
                else:
                    result = _NO_VALUE
            if result is RESTART or result is _NO_VALUE:
                return result
            # The subtree may have collapsed to a tomb: propagate upward.
            if parent is not None:
                after = self.gcas_read(inode)
                if isinstance(after, TNode):
                    self._clean_parent(parent, inode, h, level - W, startgen)
            return result
        if isinstance(main, TNode):
            self._clean(parent, level - W)
            return RESTART
        if isinstance(main, LNode):
            value = main.get(key)
            if value is _NO_VALUE:
                return _NO_VALUE
            shrunk: MainNode = main.removed(key)
            if len(shrunk) == 1:
                only_key, only_value = shrunk.entries[0]
                shrunk = TNode(only_key, only_value, self._hash(only_key))
            if self._gcas(inode, main, shrunk):
                return value
            return RESTART
        raise ConcurrencyError(f"unexpected main node {main!r}")

    # ------------------------------------------------------------------
    # Cleaning (lazy compression after removals / tombs)
    # ------------------------------------------------------------------

    def _clean(self, inode: INode | None, level: int) -> None:
        if inode is None:
            return
        main = self.gcas_read(inode)
        if isinstance(main, CNode):
            self._gcas(inode, main, main.to_compressed(self, level, inode.gen))

    def _clean_parent(
        self, parent: INode, inode: INode, h: int, level: int, startgen: Gen
    ) -> None:
        while True:
            pmain = self.gcas_read(parent)
            if not isinstance(pmain, CNode):
                return
            flag, pos = flag_pos(h, level, pmain.bitmap)
            if (pmain.bitmap & flag) == 0:
                return
            if pmain.array[pos] is not inode:
                return
            main = self.gcas_read(inode)
            if isinstance(main, TNode):
                contracted = pmain.updated_at(pos, main.untombed(), inode.gen)
                contracted = contracted.to_contracted(level)
                if not self._gcas(parent, pmain, contracted):
                    if self._rdcss_read_root().gen is startgen:
                        continue
            return

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> "CTrie":
        """O(1) *writable* snapshot.

        Both this trie and the returned snapshot receive fresh
        generations; they lazily copy shared structure on write.
        """
        while True:
            root = self._rdcss_read_root()
            expected = self.gcas_read(root)
            if self._rdcss_root(root, expected, root.copy_to_gen(Gen(), expected)):
                return CTrie(root=root.copy_to_gen(Gen(), expected))

    def readonly_snapshot(self) -> "CTrie":
        """O(1) *read-only* snapshot (cheaper reads: no renew on path)."""
        if self._readonly:
            return self
        while True:
            root = self._rdcss_read_root()
            expected = self.gcas_read(root)
            if self._rdcss_root(root, expected, root.copy_to_gen(Gen(), expected)):
                return CTrie(root=root, readonly=True)

    @property
    def readonly(self) -> bool:
        return self._readonly

    # ------------------------------------------------------------------
    # Dict-like surface
    # ------------------------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        result = self.lookup(key, _NO_VALUE)
        if result is _NO_VALUE:
            raise KeyError(key)
        return result

    def __setitem__(self, key: Any, value: Any) -> None:
        self.insert(key, value)

    def __delitem__(self, key: Any) -> None:
        if self.lookup(key, _NO_VALUE) is _NO_VALUE:
            raise KeyError(key)
        self.remove(key)

    def __contains__(self, key: Any) -> bool:
        return self.lookup(key, _NO_VALUE) is not _NO_VALUE

    def get(self, key: Any, default: Any = None) -> Any:
        return self.lookup(key, default)

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Iterate a consistent view (a read-only snapshot is taken
        first unless this trie is already read-only)."""
        source = self if self._readonly else self.readonly_snapshot()
        root = source._rdcss_read_root()
        yield from iterate_main(source, source.gcas_read(root))

    def keys(self) -> Iterator[Any]:
        return (k for k, _v in self.items())

    def values(self) -> Iterator[Any]:
        return (v for _k, v in self.items())

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def to_dict(self) -> dict[Any, Any]:
        return dict(self.items())

    def __repr__(self) -> str:
        mode = "readonly" if self._readonly else "live"
        return f"CTrie({mode}, ~{len(self)} entries)"
