# lint: allow[CP002] -- liveness is query-agnostic daemon machinery: the monitor outlives every query and must keep sweeping while one is cancelled
"""Cluster liveness: worker heartbeats and the driver-side monitor.

PR 7's cluster backend only detects *clean* worker death — EOF on the
task pipe. A hung, slow, or partially-responsive worker (the gray
failure) pins the dispatcher in ``recv`` forever. This module closes
that gap with Spark's heartbeat design:

* every worker runs a daemon **beat thread** that writes one small
  frame — ``(generation, monotonic timestamp)`` — onto a dedicated
  beat pipe every ``Config.heartbeat_interval`` seconds. The beat
  channel is separate from the task pipe on purpose: a worker stuck
  in task compute still beats (it is *slow*, not *dead*), while a
  worker frozen whole (an injected ``cluster.hang``, a SIGSTOP, a
  pathological page fault storm) stops beating;

* the driver runs one **monitor thread** for all slots. Per slot it
  tracks the last beat instant and walks a three-state ladder:
  ``LIVE`` → ``SUSPECT`` (no beat for half the timeout — the
  scheduler's speculation hook may launch a backup attempt on a
  healthy slot) → ``DEAD`` (no beat for ``Config.heartbeat_timeout``).

* a ``DEAD`` verdict *fences* the slot: the monitor records the fence
  reason for the slot's current generation and SIGKILLs the process.
  It deliberately does **not** respawn — the kill surfaces as EOF on
  the task pipe, so the dispatcher's single existing death path
  (respawn, invalidate the pid's map outputs, fail the in-flight
  attempt) handles heartbeat death exactly like organic death, with
  one difference: the recorded fence reason upgrades the attempt's
  failure to :class:`~repro.errors.ClusterTimeoutError`. One death
  path means no monitor/dispatcher respawn race.

Determinism hook: an armed ``cluster.heartbeat_miss`` schedule site is
drawn **once per (slot, generation) at registration** (the generation
is the attempt key), entirely driver-side — the monitor simply discards
that generation's beats, so a perfectly healthy worker gets fenced and
the chaos suite proves fencing never loses or duplicates rows.
"""

from __future__ import annotations

import os
import signal
import struct
import threading
import time
from typing import Callable

from repro.faults import NULL_INJECTOR, FaultInjector

#: One beat frame: (generation, time.monotonic() at send).
BEAT = struct.Struct("<Id")

#: Liveness states (per slot, monitor-owned).
LIVE = "live"
SUSPECT = "suspect"
DEAD = "dead"


def beat_loop(conn, generation: int, interval: float, pause, stop) -> None:
    """Worker-side beat thread body.

    ``pause`` (a :class:`threading.Event`) models whole-worker hangs:
    while set, no beats are sent — the injected ``cluster.hang``
    directive sets it so the monitor sees real silence. ``stop`` ends
    the loop at worker shutdown.
    """
    payload = BEAT.pack(generation, 0.0)
    while not stop.wait(interval):  # lint: allow[CP001] -- worker-side daemon; dies with the process
        if pause.is_set():
            continue
        payload = BEAT.pack(generation, time.monotonic())
        try:
            conn.send_bytes(payload)
        except (BrokenPipeError, OSError):
            return


class _SlotHealth:
    """Monitor-side record for one worker slot."""

    __slots__ = ("slot_id", "generation", "conn", "pid", "last_beat", "state", "deaf")

    def __init__(self, slot_id: int, generation: int, conn, pid: int, now: float):
        self.slot_id = slot_id
        self.generation = generation
        self.conn = conn
        self.pid = pid
        self.last_beat = now
        self.state = LIVE
        #: True when an injected heartbeat_miss discards this
        #: generation's beats (the worker is healthy; the fence is the
        #: experiment).
        self.deaf = False


class HeartbeatMonitor:
    """One driver thread watching every worker slot's beat channel."""

    def __init__(
        self,
        interval: float,
        timeout: float,
        on_dead: Callable[[int, int, int], None],
        injector: FaultInjector | None = None,
    ) -> None:
        self._interval = interval
        self._timeout = timeout
        self._suspect_after = timeout / 2.0
        #: Called as ``on_dead(slot_id, generation, pid)`` exactly once
        #: per fenced generation, from the monitor thread.
        self._on_dead = on_dead
        self._injector = injector or NULL_INJECTOR
        self._lock = threading.Lock()
        self._slots: dict[int, _SlotHealth] = {}  # guarded-by: _lock
        self._fences = 0  # guarded-by: _lock
        self._beats_discarded = 0  # guarded-by: _lock
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- registration (backend-facing) ---------------------------------

    def register(self, slot_id: int, generation: int, conn, pid: int) -> None:
        """(Re)bind a slot to a freshly spawned generation. The spawn
        instant counts as a beat, so a worker gets a full timeout to
        say its first word."""
        health = _SlotHealth(slot_id, generation, conn, pid, time.monotonic())
        # Generations start at 1, so generation - 1 is the spawn attempt
        # ordinal: with the default attempt_cap=1 only a slot's first
        # generation can be deafened, and the respawn beats clean —
        # fencing a healthy worker never livelocks.
        health.deaf = self._injector.should_fire_at(
            "cluster.heartbeat_miss", slot_id, max(generation - 1, 0)
        )
        with self._lock:
            self._slots[slot_id] = health

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._monitor_loop, name="repro-heartbeat-monitor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self._timeout + 1.0)
            self._thread = None

    # -- queries --------------------------------------------------------

    def suspect_slots(self) -> frozenset[int]:
        """Slots currently SUSPECT or DEAD (speculation input)."""
        with self._lock:
            return frozenset(
                h.slot_id for h in self._slots.values() if h.state != LIVE
            )

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "heartbeat_fences": self._fences,
                "beats_discarded": self._beats_discarded,
                "suspect_slots": sum(
                    1 for h in self._slots.values() if h.state == SUSPECT
                ),
            }

    # -- the monitor thread --------------------------------------------

    def _monitor_loop(self) -> None:
        # Poll tick: fast enough that detection latency is dominated by
        # the timeout itself, never by the monitor's sleep.
        tick = max(self._interval / 2.0, 0.005)
        while not self._stop.wait(tick):  # lint: allow[CP001] -- driver-side daemon outliving any one query; bounded tick
            doomed = self._sweep()
            for slot_id, generation, pid in doomed:
                self._kill(pid)
                self._on_dead(slot_id, generation, pid)

    def _sweep(self) -> list[tuple[int, int, int]]:
        """Drain beat pipes, advance states; returns newly-DEAD slots."""
        now = time.monotonic()
        doomed: list[tuple[int, int, int]] = []
        with self._lock:
            for health in self._slots.values():
                self._drain_locked(health)
                if health.state == DEAD:
                    continue
                silent = now - health.last_beat
                if silent >= self._timeout:
                    health.state = DEAD
                    self._fences += 1
                    doomed.append(
                        (health.slot_id, health.generation, health.pid)
                    )
                elif silent >= self._suspect_after:
                    health.state = SUSPECT
                else:
                    health.state = LIVE
        return doomed

    def _drain_locked(self, health: _SlotHealth) -> None:  # requires-lock: _lock
        try:
            while health.conn.poll(0):  # lint: allow[CP001] -- nonblocking drain of buffered beat frames, bounded by the pipe buffer
                raw = health.conn.recv_bytes()
                generation, _sent = BEAT.unpack(raw)
                if health.deaf or generation != health.generation:
                    # Injected beat loss, or a zombie generation's late
                    # beat: either way it must not refresh liveness.
                    self._beats_discarded += 1
                    continue
                health.last_beat = time.monotonic()
        except (EOFError, OSError, struct.error):
            # Beat pipe died: the task pipe's EOF path owns the slot's
            # fate; silence here simply lets the timeout run out.
            pass

    @staticmethod
    def _kill(pid: int) -> None:
        """SIGKILL the fenced process: not trusted to honor anything
        gentler (it is, by verdict, unresponsive), and the kill is what
        converts gray failure into the clean-EOF path the dispatcher
        already handles."""
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass


__all__ = ["BEAT", "DEAD", "LIVE", "SUSPECT", "HeartbeatMonitor", "beat_loop"]
