"""Ship-once shared-memory store for heavy leaf data.

The cluster codec never pickles row-batch bytes, relation partitions,
or broadcast values into a task envelope. Instead the driver publishes
each heavy object **once** into a named ``multiprocessing.shared_memory``
segment and the envelope carries only a token; workers attach the
segment on first use (zero-copy for the binary row batches) and cache
the rebuilt object, so every subsequent task referencing the same leaf
pays one dictionary lookup.

Segment layout (one segment per shipped object)::

    [ meta length : 8 bytes LE ][ meta pickle ][ raw batch data ... ]

For a :class:`~repro.core.partition.PartitionSnapshot` the meta block
holds the schema, pointer layout, cTrie manifest (key → packed head
pointer), counters, and zone maps, while the data region is the
concatenated *used prefixes* of the partition's row batches — exactly
the bytes below the snapshot watermark, which are immutable by the
MVCC contract. The worker rebuilds a read-only view whose
:class:`~repro.core.rowbatch.BatchManager` buffers are memoryviews
straight into the mapped segment: no copy, no re-decode.

Lifecycle: the **driver** owns every segment and unlinks them all at
backend shutdown. Workers only attach (suppressing the attach-time
resource-tracker registration so no tracker ever tries to unlink a
segment it does not own).
Re-publishing the same partition at a newer watermark creates a new
segment; the driver keeps the latest per partition and unlinks the
superseded one (POSIX keeps mapped segments readable after unlink, so
a worker mid-scan on the old version is unaffected).
"""

from __future__ import annotations

import os
import secrets
import struct
import threading
from multiprocessing import shared_memory
from typing import Any

from repro.core.partition import PartitionSnapshot
from repro.core.rowbatch import BatchManager
from repro.core.rowcodec import codec_for
from repro.serialize import PICKLE_PROTOCOL, dumps, loads

_META_LEN = struct.Struct("<Q")

#: Worker-side cap on attached segments before the least recently used
#: one is closed (superseded snapshot versions accumulate otherwise).
_WORKER_CACHE_SEGMENTS = 64

#: Evicted segments whose zero-copy views are still referenced by live
#: task state: the mapping must stay valid, so they are parked here and
#: reclaimed by the OS at process exit.
_ZOMBIES: list = []


def _segment_name() -> str:
    return f"repro_{os.getpid()}_{secrets.token_hex(6)}"


def _write_segment(meta: dict, data_parts: list[bytes]) -> shared_memory.SharedMemory:
    meta_bytes = dumps(meta)
    total = _META_LEN.size + len(meta_bytes) + sum(len(p) for p in data_parts)
    shm = shared_memory.SharedMemory(
        name=_segment_name(), create=True, size=max(total, 1)
    )
    buf = shm.buf
    _META_LEN.pack_into(buf, 0, len(meta_bytes))
    offset = _META_LEN.size
    buf[offset : offset + len(meta_bytes)] = meta_bytes
    offset += len(meta_bytes)
    for part in data_parts:
        buf[offset : offset + len(part)] = part
        offset += len(part)
    return shm


def _read_segment(shm: shared_memory.SharedMemory) -> tuple[dict, int]:
    """Returns ``(meta, data_offset)`` for an attached segment."""
    (meta_len,) = _META_LEN.unpack_from(shm.buf, 0)
    start = _META_LEN.size
    meta = loads(bytes(shm.buf[start : start + meta_len]))
    return meta, start + meta_len


class DriverShipStore:
    """Driver-side publisher: object → segment token, once."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}  # guarded-by: _lock
        self._object_tokens: dict[int, str] = {}  # guarded-by: _lock
        self._snapshot_tokens: dict[tuple, str] = {}  # guarded-by: _lock
        self._snapshot_latest: dict[int, str] = {}  # guarded-by: _lock
        self._pinned: list[Any] = []  # guarded-by: _lock  (keeps ids stable)
        #: Durable partitions — keyed ``(store_dir, partition_index)`` —
        #: whose worker-local WAL replay failed once (checkpoint raced
        #: past the snapshot, GC'd epoch, torn files). The codec stops
        #: emitting wal tokens for them and ships shm segments instead.
        self._wal_ship_disabled: set[tuple[str, int]] = set()  # guarded-by: _lock

    # -- worker-local WAL-replay shipping -------------------------------

    def allows_wal_ship(self, ref: tuple[str, int]) -> bool:
        with self._lock:
            return ref not in self._wal_ship_disabled

    def disable_wal_ship(self, ref: tuple[str, int]) -> None:
        """Permanently fall back to shm shipping for one partition after
        a worker-side replay failure — retries then re-pickle the task
        envelope and take the segment path."""
        with self._lock:
            self._wal_ship_disabled.add(ref)

    # -- publishing -----------------------------------------------------

    def token_for_object(self, obj: Any) -> str:
        """Publish a plain-picklable immutable object once, by identity."""
        with self._lock:
            token = self._object_tokens.get(id(obj))
            if token is not None:
                return token
            shm = _write_segment({"kind": "object", "object": obj}, [])
            self._segments[shm.name] = shm
            self._object_tokens[id(obj)] = shm.name
            self._pinned.append(obj)
            return shm.name

    def token_for_snapshot(self, snap: PartitionSnapshot) -> str:
        """Publish a partition snapshot's batches + index manifest once.

        Keyed by ``(partition identity, watermark)``: appends move the
        watermark and naturally produce a fresh segment, while repeated
        queries at one version reuse the published one.
        """
        partition = snap.partition
        key = (id(partition), snap.watermark)
        with self._lock:
            token = self._snapshot_tokens.get(key)
            if token is not None:
                return token
            batch_count, last_len = snap.watermark
            manager = partition.batches
            # Used prefixes below the watermark: immutable once published
            # (sealed batches never change; the tail batch only grows
            # past last_len, which this snapshot never reads).
            lengths = [
                manager._lengths[i] if i < batch_count - 1 else last_len
                for i in range(batch_count)
            ]
            data_parts = [
                bytes(memoryview(manager.buffers[i])[: lengths[i]])
                for i in range(batch_count)
            ]
            meta = {
                "kind": "snapshot",
                "schema": partition.schema,
                "key_ordinal": partition.key_ordinal,
                "max_row_bytes": partition.codec.max_row_bytes,
                "layout": manager.layout,
                "batch_size": manager.batch_size,
                "lengths": lengths,
                "watermark": snap.watermark,
                "index": dict(snap.trie.to_dict()),
                "row_count": snap.row_count,
                "distinct_keys": snap.distinct_keys,
                "batch_zones": snap.batch_zones,
                "zone": snap.zone,
            }
            shm = _write_segment(meta, data_parts)
            self._segments[shm.name] = shm
            self._snapshot_tokens[key] = shm.name
            self._pinned.append(snap)
            stale = self._snapshot_latest.get(id(partition))
            self._snapshot_latest[id(partition)] = shm.name
            if stale is not None:
                self._unlink_locked(stale)
            return shm.name

    def _unlink_locked(self, name: str) -> None:  # requires-lock: _lock
        shm = self._segments.pop(name, None)
        if shm is None:
            return
        self._snapshot_tokens = {
            k: v for k, v in self._snapshot_tokens.items() if v != name
        }
        try:
            shm.close()
            shm.unlink()
        except OSError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        with self._lock:
            for name in list(self._segments):
                self._unlink_locked(name)
            self._object_tokens.clear()
            self._snapshot_latest.clear()
            self._pinned.clear()


class _SharedPartition:
    """Worker-side stand-in for :class:`IndexedPartition`: exactly the
    surface :class:`PartitionSnapshot` reads (codec + batches)."""

    __slots__ = ("schema", "key_ordinal", "codec", "batches")

    def __init__(self, schema, key_ordinal, codec, batches):
        self.schema = schema
        self.key_ordinal = key_ordinal
        self.codec = codec
        self.batches = batches


def _shared_batch_manager(meta: dict, shm, data_offset: int) -> BatchManager:
    """A read-only :class:`BatchManager` whose buffers are memoryviews
    into the mapped segment — the zero-copy path."""
    manager = BatchManager.__new__(BatchManager)
    manager.layout = meta["layout"]
    manager.batch_size = meta["batch_size"]
    manager.sanitize = False
    manager._seals = []
    buffers = []
    offset = data_offset
    for length in meta["lengths"]:
        buffers.append(shm.buf[offset : offset + length])
        offset += length
    manager._batches = buffers  # type: ignore[assignment]
    manager._lengths = list(meta["lengths"])
    return manager


class WorkerShipCache:
    """Worker-side attach-and-cache: token → rebuilt object."""

    def __init__(self) -> None:
        self._cache: dict[str, Any] = {}
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def load(self, token: str) -> Any:
        hit = self._cache.get(token)
        if hit is not None:
            return hit
        # The driver owns unlink. Python 3.11 registers segments with
        # the resource tracker even on attach, and a forked worker may
        # share the driver's tracker process — so unregister-after
        # would delete the *driver's* entry. Suppress the registration
        # instead (the 3.13 ``track=False`` semantics).
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *_a, **_k: None  # type: ignore[assignment]
        try:
            shm = shared_memory.SharedMemory(name=token)
        finally:
            resource_tracker.register = original_register  # type: ignore[assignment]
        meta, data_offset = _read_segment(shm)
        if meta["kind"] == "object":
            obj = meta["object"]
        else:
            codec = codec_for(meta["schema"], meta["max_row_bytes"])
            partition = _SharedPartition(
                meta["schema"],
                meta["key_ordinal"],
                codec,
                _shared_batch_manager(meta, shm, data_offset),
            )
            # A plain dict satisfies the trie surface snapshots read
            # (get / __contains__ / keys) — the manifest *is* the index.
            obj = PartitionSnapshot(
                partition,  # type: ignore[arg-type]
                meta["index"],  # type: ignore[arg-type]
                meta["watermark"],
                meta["row_count"],
                meta["distinct_keys"],
                meta["batch_zones"],
                meta["zone"],
            )
        if len(self._cache) >= _WORKER_CACHE_SEGMENTS:
            evict_token = next(iter(self._cache))
            self._evict(evict_token)
        self._cache[token] = obj
        self._segments[token] = shm
        return obj

    def _evict(self, token: str) -> None:
        self._cache.pop(token, None)
        shm = self._segments.pop(token, None)
        if shm is None:
            return
        try:
            shm.close()
        except OSError:  # pragma: no cover - already gone
            pass
        except BufferError:
            # Zero-copy views into this mapping are still alive (a
            # rebuilt snapshot referenced by shipped task state), so the
            # mapping cannot be torn down. Park it and silence the
            # object's __del__ — unmapping is left to process exit,
            # which is exactly what POSIX does with unlinked segments.
            shm.close = lambda: None  # type: ignore[method-assign]
            _ZOMBIES.append(shm)

    def close(self) -> None:
        for token in list(self._segments):
            self._evict(token)


__all__ = [
    "DriverShipStore",
    "WorkerShipCache",
    "PICKLE_PROTOCOL",
]
