"""Worker process: the executor half of the cluster backend.

Each worker runs :func:`worker_main` — a synchronous loop over one
duplex pipe: receive an envelope, run the task, send the reply. One
task at a time per worker (Spark's one-core executor), so the loop
needs no locking.

The :class:`WorkerContext` is the process-local stand-in the codec
substitutes for the driver's :class:`~repro.engine.context.EngineContext`
inside shipped RDD graphs. It exposes exactly the surface task
``compute()`` paths read — config, block manager, shuffle fetch,
fault injector — and refuses driver-only operations (``run_job``)
loudly instead of deadlocking.

Cross-process cancellation: the driver mirrors the active query's
cancel into a shared one-byte flag; the worker activates a
:class:`QueryContext` whose token reads that flag, so every existing
``check_cancelled`` poll site works unmodified across the boundary.
Deadlines ship as absolute ``time.monotonic`` instants, which share an
epoch across processes on Linux (CLOCK_MONOTONIC is system-wide).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any

from repro.cluster.codec import dumps_reply, loads_envelope
from repro.cluster.liveness import beat_loop
from repro.cluster.shuffle import WorkerShuffleClient
from repro.cluster.spill import set_worker_identity
from repro.engine.cache import BlockManager
from repro.errors import EngineError
from repro.faults import NULL_INJECTOR
from repro.serving.context import QueryContext, activate, deactivate

#: Message framing: first byte selects the payload decoder.
MSG_TASK = b"T"
MSG_CRASH = b"C"
MSG_STOP = b"S"

#: Cancellation reasons encoded into the shared flag. Unlisted reasons
#: travel as the generic code and decode to ``"cancelled"`` — the
#: driver re-raises with full fidelity from its own token anyway.
_REASON_TO_CODE = {"user": 1, "deadline": 2, "memory": 3, "shutdown": 4}
_CODE_TO_REASON = {1: "user", 2: "deadline", 3: "memory", 4: "shutdown"}
GENERIC_CANCEL_CODE = 5


def encode_cancel_reason(reason: str) -> int:
    return _REASON_TO_CODE.get(reason, GENERIC_CANCEL_CODE)


def decode_cancel_reason(code: int) -> str:
    return _CODE_TO_REASON.get(code, "cancelled")


class SharedFlagToken:
    """Token facade over the backend's shared cancellation flag.

    Duck-types :class:`~repro.serving.context.CancellationToken` for
    the poll path (``reason`` / ``cancelled`` / ``cancel``). A local
    ``cancel`` (worker-side deadline expiry) also writes the flag so
    sibling tasks of the same query stop early.
    """

    __slots__ = ("_flag",)

    def __init__(self, flag) -> None:
        self._flag = flag

    @property
    def reason(self) -> str | None:
        code = self._flag.value
        return None if code == 0 else decode_cancel_reason(code)

    @property
    def cancelled(self) -> bool:
        return self._flag.value != 0

    def cancel(self, reason: str) -> bool:
        if self._flag.value == 0:
            self._flag.value = encode_cancel_reason(reason)
            return True
        return False


class _AccumulatorProxy:
    """Write-only accumulator stand-in; adds ride home in the reply."""

    __slots__ = ("accumulator_id", "deltas")

    def __init__(self, accumulator_id: int) -> None:
        self.accumulator_id = accumulator_id
        self.deltas: list[Any] = []

    def add(self, amount: Any) -> None:
        self.deltas.append(amount)

    def __iadd__(self, amount: Any) -> "_AccumulatorProxy":
        self.deltas.append(amount)
        return self

    @property
    def value(self) -> Any:
        raise EngineError(
            "accumulator values are driver-side only; tasks may only add"
        )


class WorkerContext:
    """Process-local EngineContext stand-in for shipped RDD graphs."""

    def __init__(self, worker_id: int, config, cancel_flag) -> None:
        from repro.cluster.shm import WorkerShipCache
        from repro.cluster.walship import WorkerWalCache
        from repro.stats import PruningMetrics

        self.worker_id = worker_id
        self.config = config
        self.cancel_flag = cancel_flag
        self.fault_injector = NULL_INJECTOR
        self.block_manager = BlockManager(config.cache_capacity_bytes)
        self.shuffle_manager = WorkerShuffleClient(config.rpc_max_retries)
        self.ship_cache = WorkerShipCache()
        self.wal_cache = WorkerWalCache(config)
        self.pruning_metrics = PruningMetrics()
        self.serving = None
        self._task_accumulators: dict[int, _AccumulatorProxy] = {}

    # -- codec hooks ----------------------------------------------------

    def accumulator_proxy(self, accumulator_id: int) -> _AccumulatorProxy:
        proxy = self._task_accumulators.get(accumulator_id)
        if proxy is None:
            proxy = self._task_accumulators[accumulator_id] = _AccumulatorProxy(
                accumulator_id
            )
        return proxy

    def begin_task(self) -> None:
        """Reset per-task state *before* the envelope unpickles: the
        unpickler repopulates the proxy registry as it resolves
        ``("acc", id)`` tokens inside the task closure."""
        self._task_accumulators = {}

    def install_plan(self, plan: dict) -> None:
        self.shuffle_manager.install_plan(plan)

    def collect_deltas(self) -> list[tuple[int, list[Any]]]:
        return [
            (acc_id, proxy.deltas)
            for acc_id, proxy in self._task_accumulators.items()
            if proxy.deltas
        ]

    # -- driver-only surface -------------------------------------------

    def run_job(self, *_args: Any, **_kwargs: Any) -> Any:
        raise EngineError(
            "run_job is driver-only: an action inside a shipped task "
            "closure cannot launch nested jobs on a worker"
        )

    def broadcast(self, *_args: Any, **_kwargs: Any) -> Any:
        raise EngineError("broadcast construction is driver-only")

    def __repr__(self) -> str:
        return f"WorkerContext(worker={self.worker_id}, pid={os.getpid()})"


def _make_query_context(info: dict, cancel_flag) -> QueryContext:
    query = QueryContext(
        info["query_id"],
        info["tenant"],
        info["priority"],
        info["deadline"],
    )
    query.token = SharedFlagToken(cancel_flag)  # type: ignore[assignment]
    return query


def worker_main(
    conn,
    worker_id: int,
    config,
    cancel_flag,
    beat_conn=None,
    generation: int = 0,
) -> None:
    """The worker loop (runs as the forked process's main)."""
    ctx = WorkerContext(worker_id, config, cancel_flag)
    # Every spill file this process writes carries its fencing identity.
    set_worker_identity(worker_id, generation)
    beat_pause = threading.Event()
    beat_stop = threading.Event()
    if beat_conn is not None and config.heartbeat_interval > 0:
        threading.Thread(
            target=beat_loop,
            args=(
                beat_conn,
                generation,
                config.heartbeat_interval,
                beat_pause,
                beat_stop,
            ),
            name=f"repro-beat-{worker_id}",
            daemon=True,
        ).start()
    try:
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                break
            kind, body = data[:1], data[1:]
            if kind == MSG_STOP:
                break
            if kind == MSG_CRASH:
                # Injected worker death: a real exit, not an exception —
                # nothing below the scheduler may absorb it.
                os._exit(137)
            try:
                ctx.begin_task()
                envelope = loads_envelope(body, ctx)
                chaos = envelope.get("chaos")
                if chaos == "hang":
                    # Whole-worker freeze: beats stop, compute stops.
                    # The heartbeat monitor fences and SIGKILLs us; the
                    # sleep bound only caps the blast radius if it does
                    # not (heartbeats disabled).
                    beat_pause.set()
                    time.sleep(  # lint: allow[CP001] -- injected gray failure; process is killed by the monitor
                        max(config.heartbeat_timeout * 4.0, 1.0)
                    )
                    beat_pause.clear()
                    continue
                if chaos == "delay":
                    # Straggler, not a failure: beats keep flowing.
                    time.sleep(envelope.get("chaos_delay_s", 0.05))
                ctx.install_plan(envelope.get("plan") or {})
                info = envelope.get("query")
                token = None
                if info is not None:
                    token = activate(_make_query_context(info, cancel_flag))
                try:
                    result = envelope["task"](envelope["split"])
                finally:
                    if token is not None:
                        deactivate(token)
                if chaos == "drop":
                    # Compute then stay silent — the reply is dropped on
                    # the floor. Beats continue, so only the per-RPC
                    # deadline (not the heartbeat) can fence us.
                    continue
                reply = dumps_reply("ok", result, ctx.collect_deltas(), generation)
            except BaseException as exc:  # lint: allow[ET002] -- exception is the reply; the driver re-raises it
                reply = dumps_reply("err", exc, ctx.collect_deltas(), generation)
            try:
                conn.send_bytes(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        beat_stop.set()
        ctx.ship_cache.close()
