"""Shuffle spill files: the cluster backend's map-output medium.

In-process shuffle keeps buckets as Python lists in the driver's
:class:`~repro.engine.shuffle.ShuffleManager`. Across processes the
map side instead spills each reduce bucket to a per-map file (pickled,
one contiguous region per bucket) and returns a compact
:class:`MapStatus` — path, per-bucket offsets, per-bucket
``(rows, est_bytes)`` — that the coordinator commits into its
registry. Reduce tasks receive the committed statuses in their task
envelope and read exactly the one region their bucket needs.

Files are named by writer pid so the coordinator can invalidate (and
delete) everything a dead worker produced — worker death loses that
executor's map outputs, exactly Spark's fault model, and the lineage
machinery recomputes them.
"""

from __future__ import annotations

import itertools
import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Iterable

from repro.engine.cache import estimate_size
from repro.errors import FetchFailedError
from repro.serialize import PICKLE_PROTOCOL

_spill_seq = itertools.count()

#: Base of the spill-read retry backoff (attempt n sleeps n * base).
_READ_BACKOFF_S = 0.005

#: This process's (slot, generation) identity, stamped into every
#: MapStatus it writes. Workers set it at spawn; the driver keeps the
#: default — a negative slot marks driver-side writes (codec-fallback
#: in-process map tasks), which the fencing machinery exempts.
DRIVER_IDENTITY = (-1, 0)
_worker_identity = DRIVER_IDENTITY


def set_worker_identity(slot: int, generation: int) -> None:
    """Install this worker process's fencing identity (worker_main)."""
    global _worker_identity
    _worker_identity = (slot, generation)


def worker_identity() -> tuple[int, int]:
    return _worker_identity


@dataclass(frozen=True)
class MapStatus:
    """One committed map output: where its buckets live on disk."""

    shuffle_id: int
    map_index: int
    path: str
    #: Per reduce bucket: (file offset, byte length).
    offsets: tuple[tuple[int, int], ...]
    #: Per reduce bucket: (rows, est_bytes) — adaptive planning input.
    sizes: tuple[tuple[int, int], ...]
    #: pid of the writing process; dead-worker invalidation key.
    pid: int
    #: Fencing identity of the writer: worker slot (-1 = driver-side)
    #: and slot generation. A status whose (slot, generation) was
    #: fenced before commit is stale zombie output and is rejected.
    slot: int = -1
    generation: int = 0


def _bucket_size(bucket: list[Any]) -> tuple[int, int]:
    rows = len(bucket)
    if rows == 0:
        return 0, 0
    return rows, rows * max(1, estimate_size(bucket[0]))


@dataclass(frozen=True)
class SpillMapWriter:
    """Picklable map-output writer shipped inside map-task closures.

    Carries no locks and no manager reference, so it crosses the
    process boundary; the partitioner and (by-value pickled) aggregator
    callables reproduce :meth:`ShuffleManager.write_map_output`'s
    bucketization exactly.
    """

    root: str
    shuffle_id: int
    partitioner: Any
    aggregator: Any
    map_side_combine: bool

    def __call__(
        self, map_index: int, records: Iterable[tuple[Any, Any]]
    ) -> MapStatus:
        n = self.partitioner.num_partitions
        partition_of = self.partitioner.partition
        buckets: list[list[Any]] = [[] for _ in range(n)]
        if self.map_side_combine and self.aggregator is not None:
            agg = self.aggregator
            agg_create, agg_merge = agg.create, agg.merge
            combined: list[dict[Any, Any]] = [dict() for _ in range(n)]
            _missing = object()
            for key, value in records:
                bucket = combined[partition_of(key)]
                acc = bucket.get(key, _missing)
                bucket[key] = (
                    agg_create(value) if acc is _missing else agg_merge(acc, value)
                )
            for i, bucket in enumerate(combined):
                buckets[i] = list(bucket.items())
        else:
            appends = [bucket.append for bucket in buckets]
            for key, value in records:
                appends[partition_of(key)]((key, value))
        sizes = tuple(_bucket_size(bucket) for bucket in buckets)
        slot, generation = _worker_identity
        # Unique per (map attempt, process, generation): a speculative
        # duplicate, a retried attempt, or a fenced zombie's leftover
        # never clobbers a file a reduce task may already be reading —
        # and the generation in the name lets the reaper tell a live
        # slot's files from a fenced generation's.
        name = (
            f"s{self.shuffle_id}_m{map_index}_"
            f"p{os.getpid()}_g{generation}_{next(_spill_seq)}.bin"
        )
        path = os.path.join(self.root, name)
        offsets = []
        with open(path, "wb") as fh:
            at = 0
            for bucket in buckets:
                blob = pickle.dumps(bucket, protocol=PICKLE_PROTOCOL)
                fh.write(blob)
                offsets.append((at, len(blob)))
                at += len(blob)
        return MapStatus(
            self.shuffle_id,
            map_index,
            path,
            tuple(offsets),
            sizes,
            os.getpid(),
            slot,
            generation,
        )


def read_bucket(
    status: MapStatus, reduce_index: int, max_retries: int = 2
) -> list[Any]:
    """Read one bucket region with bounded retry/backoff.

    A transient FS hiccup (EINTR, a momentarily unavailable page)
    heals on a short backoff; a file that died with its worker keeps
    failing and surfaces as a fetch failure after ``max_retries``
    extra attempts — the scheduler then repairs it through lineage
    recomputation. A *missing* file never retries: deletion is how
    invalidation works, so absence is definitive, not transient.
    """
    offset, length = status.offsets[reduce_index]
    attempt = 0
    while True:
        try:
            with open(status.path, "rb") as fh:
                fh.seek(offset)
                blob = fh.read(length)
            if len(blob) != length:
                raise OSError("short read")
            return pickle.loads(blob)
        except FileNotFoundError as exc:
            raise FetchFailedError(
                status.shuffle_id,
                status.map_index,
                f"shuffle {status.shuffle_id}: map output {status.map_index} "
                f"unreadable ({exc})",
            ) from None
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            attempt += 1
            if attempt > max_retries:
                raise FetchFailedError(
                    status.shuffle_id,
                    status.map_index,
                    f"shuffle {status.shuffle_id}: map output "
                    f"{status.map_index} unreadable after {attempt} "
                    f"attempt(s) ({exc})",
                ) from None
            time.sleep(_READ_BACKOFF_S * attempt)
