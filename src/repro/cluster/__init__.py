"""Multi-process sharded executors: GIL-free parallel task execution.

Enabled by ``Config(executors=N)`` (or ``REPRO_EXECUTORS=N``); the
default ``executors=0`` keeps the engine fully in-process with plans
and results bit-identical to every prior release. See DESIGN.md §13
for the process model and §16 for the gray-failure hardening —
heartbeats (:mod:`repro.cluster.liveness`), per-RPC deadlines, fenced
respawn, and worker-local WAL replay
(:mod:`repro.cluster.walship`).
"""

from repro.cluster.backend import ExecutorBackend, LocalBackend, ProcessBackend
from repro.cluster.liveness import HeartbeatMonitor, beat_loop
from repro.cluster.shm import DriverShipStore, WorkerShipCache
from repro.cluster.shuffle import ClusterShuffleManager, WorkerShuffleClient
from repro.cluster.spill import (
    DRIVER_IDENTITY,
    MapStatus,
    SpillMapWriter,
    set_worker_identity,
    worker_identity,
)
from repro.cluster.walship import WorkerWalCache

__all__ = [
    "ClusterShuffleManager",
    "DRIVER_IDENTITY",
    "DriverShipStore",
    "ExecutorBackend",
    "HeartbeatMonitor",
    "LocalBackend",
    "MapStatus",
    "ProcessBackend",
    "SpillMapWriter",
    "WorkerShipCache",
    "WorkerShuffleClient",
    "WorkerWalCache",
    "beat_loop",
    "set_worker_identity",
    "worker_identity",
]
