"""Multi-process sharded executors: GIL-free parallel task execution.

Enabled by ``Config(executors=N)`` (or ``REPRO_EXECUTORS=N``); the
default ``executors=0`` keeps the engine fully in-process with plans
and results bit-identical to every prior release. See DESIGN.md §13
for the process model.
"""

from repro.cluster.backend import ExecutorBackend, LocalBackend, ProcessBackend
from repro.cluster.shm import DriverShipStore, WorkerShipCache
from repro.cluster.shuffle import ClusterShuffleManager, WorkerShuffleClient
from repro.cluster.spill import MapStatus, SpillMapWriter

__all__ = [
    "ClusterShuffleManager",
    "DriverShipStore",
    "ExecutorBackend",
    "LocalBackend",
    "MapStatus",
    "ProcessBackend",
    "SpillMapWriter",
    "WorkerShipCache",
    "WorkerShuffleClient",
]
