"""Executor backends: where a scheduled task attempt actually runs.

The DAG scheduler is backend-agnostic: every pooled task attempt goes
through :meth:`ExecutorBackend.run_task`. :class:`LocalBackend` calls
the task closure in-process — byte-for-byte the pre-cluster engine.
:class:`ProcessBackend` dispatches it to one of N forked worker
processes over a duplex pipe, with the closure pickled by the task
codec, heavy leaf data shipped once through shared memory, and shuffle
output spilled to per-worker files.

Topology: one pipe + one driver-side dispatcher thread per worker.
A worker runs one task at a time (Spark's one-core executor), so the
dispatcher serialises envelopes per worker; parallelism comes from the
worker *count*. Partition ownership is static modulo respawn:
``split % num_workers`` picks the slot, so repeated scans of the same
data hit the same worker's shared-memory attachments and page cache.

Worker death (injected ``cluster.worker_crash`` or a real SIGKILL)
surfaces as EOF on the pipe. The dispatcher respawns the slot (bumping
its generation), invalidates every map output the dead pid produced —
promoting PR 1's fetch-failure fault model to real process loss — and
fails the in-flight attempt with :class:`~repro.errors.WorkerLostError`,
which the scheduler's retry policy treats as transient.

Cross-process cancellation mirrors the active query's token into a
shared one-byte flag (sound because the scheduler's job lock admits one
job at a time): every worker-side ``check_cancelled`` poll reads the
flag through a :class:`~repro.cluster.worker.SharedFlagToken`.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from queue import SimpleQueue
from typing import Any, Callable

from repro.cluster.codec import TaskCodec, loads_reply
from repro.cluster.liveness import HeartbeatMonitor
from repro.cluster.worker import (
    MSG_CRASH,
    MSG_STOP,
    MSG_TASK,
    encode_cancel_reason,
    worker_main,
)
from repro.errors import (
    FAIL_STOP,
    ClusterTimeoutError,
    EngineError,
    WalReplayError,
    WorkerLostError,
)
from repro.faults import NULL_INJECTOR, FaultInjector
from repro.serving.context import QueryContext, current_query

#: Queue sentinel that shuts a dispatcher down.
_STOP = object()
#: Grace period for a worker to exit after MSG_STOP before SIGTERM.
_JOIN_TIMEOUT_S = 2.0
#: Cancellation-poll period while waiting on a dispatched task.
_RESULT_TICK_S = 0.05


def _await_result(box: Future, query: QueryContext | None) -> Any:
    """Wait for a dispatched task's result, polling cancellation.

    ``box.result()`` with no timeout would pin the calling thread until
    the worker replies — a cancelled or deadline-expired query could
    not unwind until its in-flight task finished. Waking every tick to
    poll keeps the driver's cancellation latency bounded by
    ``_RESULT_TICK_S`` regardless of task length; the task itself keeps
    running worker-side until its own poll (the worker mirrors the
    cancel flag), but the driver stops burning a slot on it.
    """
    while True:
        try:
            return box.result(timeout=_RESULT_TICK_S)
        except FutureTimeout:
            if query is not None:
                query.check()


class ExecutorBackend:
    """Where task attempts run; the scheduler calls only this surface."""

    def run_task(
        self, task: Callable[[int], Any], split: int, prefer_healthy: bool = False
    ) -> Any:
        raise NotImplementedError

    def suspect_slots(self) -> frozenset[int]:
        """Executor slots a liveness layer currently distrusts."""
        return frozenset()

    def begin_job(self, query: QueryContext | None) -> None:
        """Called under the scheduler's job lock before a job starts."""

    def end_job(self, query: QueryContext | None) -> None:
        """Called under the scheduler's job lock after a job finishes."""

    def stats(self) -> dict[str, int]:
        return {}

    def stop(self) -> None:
        pass


class LocalBackend(ExecutorBackend):
    """In-process execution: exactly the pre-cluster engine."""

    def run_task(
        self, task: Callable[[int], Any], split: int, prefer_healthy: bool = False
    ) -> Any:
        return task(split)


class _WorkerSlot:
    """One worker process plus its driver-side plumbing."""

    __slots__ = (
        "slot_id",
        "generation",
        "process",
        "conn",
        "beat_conn",
        "queue",
        "thread",
        "pid",
    )

    def __init__(self, slot_id: int) -> None:
        self.slot_id = slot_id
        self.generation = 0
        self.process = None
        self.conn = None
        self.beat_conn = None
        self.queue: SimpleQueue = SimpleQueue()
        self.thread: threading.Thread | None = None
        self.pid: int | None = None


class ProcessBackend(ExecutorBackend):
    """N forked worker processes behind per-worker dispatch threads."""

    def __init__(
        self,
        num_workers: int,
        config,
        shuffles,
        ship_store,
        injector: FaultInjector | None = None,
    ) -> None:
        if num_workers < 1:
            raise EngineError("ProcessBackend requires at least one worker")
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise EngineError(
                "the process backend requires the fork start method"
            ) from exc
        self._config = config
        self._worker_config = self._strip_config(config)
        self._shuffles = shuffles
        self._ship = ship_store
        self._injector = injector or NULL_INJECTOR
        self._codec = TaskCodec(ship_store)
        #: Shared one-byte cancellation flag, inherited through fork.
        #: 0 = live; nonzero = a cancel reason code (worker.py).
        self._flag = self._mp.RawValue("i", 0)
        self._listener: tuple[Any, Callable[[str], None]] | None = None
        self._lock = threading.Lock()
        self._counters = {  # guarded-by: _lock
            "tasks_dispatched": 0,
            "codec_fallbacks": 0,
            "workers_lost": 0,
            "crashes_injected": 0,
            "heartbeat_fences": 0,
            "rpc_timeouts": 0,
            "stale_replies_dropped": 0,
            "hangs_injected": 0,
            "delays_injected": 0,
            "drops_injected": 0,
            "wal_replay_fallbacks": 0,
        }
        #: Fence verdicts per (slot_id, generation): why a generation
        #: was killed. Consumed by the dispatcher's death path to pick
        #: ClusterTimeoutError over WorkerLostError.
        self._fence_reasons: dict[tuple[int, int], str] = {}  # guarded-by: _lock
        #: Per-split dispatch attempt counters for schedule draws
        #: (reset at each job so schedules replay per job, not per run).
        self._attempts: dict[int, int] = {}  # guarded-by: _lock
        self._stopped = False
        self._monitor: HeartbeatMonitor | None = None
        if config.heartbeat_interval > 0:
            self._monitor = HeartbeatMonitor(
                config.heartbeat_interval,
                config.heartbeat_timeout,
                self._on_heartbeat_dead,
                self._injector,
            )
        self._slots = [_WorkerSlot(i) for i in range(num_workers)]
        for slot in self._slots:
            self._spawn(slot)
            slot.thread = threading.Thread(
                target=self._dispatch_loop,
                args=(slot,),
                name=f"repro-dispatch-{slot.slot_id}",
                daemon=True,
            )
            slot.thread.start()
        if self._monitor is not None:
            self._monitor.start()

    @staticmethod
    def _strip_config(config):
        """The config workers fork with: no nested executors, no fault
        profile and no fault schedule (fault draws happen at dispatch on
        the driver so seeded site streams advance exactly once per
        logical event — workers only *obey* shipped directives)."""
        import dataclasses

        return dataclasses.replace(
            config, executors=0, faults=None, fault_schedule=None
        )

    # -- process lifecycle ---------------------------------------------

    def _spawn(self, slot: _WorkerSlot) -> int:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        # Dedicated beat channel (worker → driver), separate from the
        # task pipe so beats flow while a long task is computing.
        beat_recv, beat_send = self._mp.Pipe(duplex=False)
        slot.generation += 1
        process = self._mp.Process(
            target=worker_main,
            args=(
                child_conn,
                slot.slot_id,
                self._worker_config,
                self._flag,
                beat_send,
                slot.generation,
            ),
            name=f"repro-worker-{slot.slot_id}-g{slot.generation}",
            daemon=True,
        )
        process.start()
        # Close the driver's copy of the child ends: worker death then
        # surfaces as EOF on the very next recv instead of a hang.
        child_conn.close()
        beat_send.close()
        slot.process = process
        slot.conn = parent_conn
        slot.beat_conn = beat_recv
        slot.pid = process.pid
        if self._monitor is not None:
            self._monitor.register(
                slot.slot_id, slot.generation, beat_recv, process.pid
            )
        return slot.generation

    def _on_heartbeat_dead(self, slot_id: int, generation: int, pid: int) -> None:
        """Monitor verdict: record the fence and bump the counter. The
        monitor already SIGKILLed the pid; the resulting pipe EOF drives
        the dispatcher's single death path, which consumes the recorded
        reason and raises ClusterTimeoutError instead of WorkerLostError."""
        self._note_fence(slot_id, generation, "heartbeat")
        self._bump("heartbeat_fences")

    def _note_fence(self, slot_id: int, generation: int, reason: str) -> None:
        with self._lock:
            self._fence_reasons.setdefault((slot_id, generation), reason)
        # Zombie output written by this generation — already committed
        # or still in flight — must never feed a reduce task.
        self._shuffles.note_fenced(slot_id, generation)

    def _pop_fence(self, slot_id: int, generation: int) -> str | None:
        with self._lock:
            return self._fence_reasons.pop((slot_id, generation), None)

    def _reap_spill_files(self, pid: int) -> int:
        """Delete every spill file a dead pid left behind — including
        uncommitted ones no MapStatus ever pointed at (a kill can land
        between file write and commit)."""
        spill_root = getattr(self._shuffles, "spill_root", None)
        if not spill_root or pid < 0:
            return 0
        reaped = 0
        for path in glob.glob(os.path.join(spill_root, f"*_p{pid}_*.bin")):
            try:
                os.unlink(path)
                reaped += 1
            except OSError:
                pass
        return reaped

    def _dispatch_loop(self, slot: _WorkerSlot) -> None:
        """Per-worker dispatcher: serialise envelopes down the pipe, one
        in flight at a time, respawning the worker on death."""
        while True:  # lint: allow[CP001] -- slot pump outlives any one query; run_task's result wait polls
            item = slot.queue.get()
            if item is _STOP:
                try:
                    slot.conn.send_bytes(MSG_STOP)
                except (OSError, BrokenPipeError, ValueError):
                    pass
                return
            payload, box = item
            try:
                slot.conn.send_bytes(payload)
                raw = self._recv_reply(slot)
            except (EOFError, OSError, BrokenPipeError):
                dead_pid = slot.pid or -1
                dead_generation = slot.generation
                try:
                    slot.conn.close()
                except OSError:
                    pass
                if self._stopped:
                    box.set_exception(
                        EngineError("executor backend stopped mid-task")
                    )
                    return
                # Fence the dead generation *before* respawn: a zombie
                # reply already decoded on another thread, or a spill
                # file committed late, must not outlive the verdict.
                self._shuffles.note_fenced(slot.slot_id, dead_generation)
                fence_reason = self._pop_fence(slot.slot_id, dead_generation)
                generation = self._spawn(slot)
                # Invalidate *before* failing the attempt: the retry
                # must observe the missing map outputs, not stale
                # statuses pointing at deleted spill files.
                lost = self._shuffles.handle_worker_death(dead_pid)
                self._reap_spill_files(dead_pid)
                self._bump("workers_lost")
                detail = (
                    f"pid {dead_pid} died mid-task; "
                    f"{lost} map outputs invalidated"
                )
                if fence_reason is not None:
                    box.set_exception(
                        ClusterTimeoutError(
                            slot.slot_id, dead_generation, fence_reason, detail
                        )
                    )
                else:
                    box.set_exception(
                        WorkerLostError(slot.slot_id, generation, detail)
                    )
                continue
            try:
                status, payload_obj, deltas, reply_generation = loads_reply(raw)
            except FAIL_STOP:
                raise
            except Exception as exc:  # noqa: BLE001 - defensive decode
                box.set_exception(
                    EngineError(f"undecodable worker reply: {exc!r}")
                )
                continue
            if reply_generation != slot.generation:
                # Structural fencing (one pipe per generation) makes
                # this near-impossible, but a stamped zombie answer is
                # dropped, never trusted. The task pipe is now out of
                # sync, so the generation is fenced and killed; the EOF
                # path respawns it cleanly.
                self._bump("stale_replies_dropped")
                self._note_fence(slot.slot_id, slot.generation, "stale-reply")
                self._kill_slot(slot)
                slot.queue.put(item)
                continue
            if status == "err" and isinstance(payload_obj, WalReplayError):
                # Worker-local replay cannot reproduce this snapshot:
                # gate the partition back onto the shm path so the
                # retried task re-pickles with a segment token.
                self._ship.disable_wal_ship(
                    (payload_obj.store_dir, payload_obj.partition_index)
                )
                self._bump("wal_replay_fallbacks")
            self._replay_deltas(deltas)
            if status == "ok":
                box.set_result(payload_obj)
            else:
                box.set_exception(payload_obj)

    def _recv_reply(self, slot: _WorkerSlot) -> bytes:
        """Receive one reply, enforcing the per-RPC deadline.

        With no deadline configured this is a plain blocking receive
        (a heartbeat fence still breaks it: the monitor's SIGKILL turns
        the block into EOF). With a deadline, the wait polls in ticks;
        on expiry the slot is fenced with reason ``rpc-deadline`` and
        killed, and the read returns through the EOF path — one death
        path for every failure mode.
        """
        deadline = self._config.rpc_deadline
        if deadline is None:
            return slot.conn.recv_bytes()
        start = time.monotonic()
        while not slot.conn.poll(_RESULT_TICK_S):  # lint: allow[CP001] -- bounded by rpc_deadline; cancellation is polled by run_task's _await_result
            if time.monotonic() - start >= deadline:
                self._bump("rpc_timeouts")
                self._note_fence(slot.slot_id, slot.generation, "rpc-deadline")
                self._kill_slot(slot)
                # A reply racing in *after* the verdict is zombie data:
                # never read it — the death path closes this pipe.
                raise EOFError(
                    f"rpc deadline ({deadline}s) expired on "
                    f"slot {slot.slot_id}"
                )
        return slot.conn.recv_bytes()

    @staticmethod
    def _kill_slot(slot: _WorkerSlot) -> None:
        process = slot.process
        if process is not None and process.is_alive():
            process.kill()

    def _replay_deltas(self, deltas: list) -> None:
        """Fold worker-side accumulator adds into the driver objects."""
        for accumulator_id, values in deltas:
            accumulator = self._codec.accumulators.get(accumulator_id)
            if accumulator is None:
                continue
            for value in values:
                accumulator.add(value)

    # -- backend surface ------------------------------------------------

    def run_task(
        self, task: Callable[[int], Any], split: int, prefer_healthy: bool = False
    ) -> Any:
        if self._injector.should_fire("cluster.worker_crash"):
            # A crash directive instead of the task: the worker hard-
            # exits, the dispatcher raises WorkerLostError, and the
            # scheduler's transient-retry path re-runs the attempt.
            self._bump("crashes_injected")
            payload = MSG_CRASH
        else:
            envelope = {
                "task": task,
                "split": split,
                "query": self._query_info(current_query()),
                "plan": self._shuffles.export_plan(),
            }
            self._draw_chaos(envelope, split)
            try:
                payload = MSG_TASK + self._codec.dumps_envelope(envelope)
            except FAIL_STOP:
                raise
            except Exception:  # noqa: BLE001 - exotic closures degrade
                self._bump("codec_fallbacks")
                return task(split)
        slot = self._pick_slot(split, prefer_healthy)
        box: Future = Future()
        slot.queue.put((payload, box))
        self._bump("tasks_dispatched")
        return _await_result(box, current_query())

    def _pick_slot(self, split: int, prefer_healthy: bool) -> _WorkerSlot:
        slot = self._slots[split % len(self._slots)]
        if not prefer_healthy or self._monitor is None or len(self._slots) < 2:
            return slot
        suspects = self._monitor.suspect_slots()
        if slot.slot_id not in suspects:
            return slot
        # Speculative attempt racing a SUSPECT slot: route it to the
        # first healthy slot so the backup does not queue behind the
        # very straggler it is meant to beat.
        for other in self._slots:
            if other.slot_id not in suspects:
                return other
        return slot

    def _draw_chaos(self, envelope: dict, split: int) -> None:
        """Draw the gray-failure schedule for this dispatch (driver-side
        so a run's schedule replays bit-identically from its seed) and
        ship the winning directive in the envelope. Sites are mutually
        exclusive per dispatch — a worker cannot hang *and* drop."""
        injector = self._injector
        if injector.schedule is None:
            return
        with self._lock:
            attempt = self._attempts.get(split, 0)
            self._attempts[split] = attempt + 1
        if injector.should_fire_at("cluster.hang", split, attempt):
            envelope["chaos"] = "hang"
            self._bump("hangs_injected")
        elif injector.should_fire_at("cluster.drop", split, attempt):
            envelope["chaos"] = "drop"
            self._bump("drops_injected")
        elif injector.should_fire_at("cluster.delay", split, attempt):
            envelope["chaos"] = "delay"
            envelope["chaos_delay_s"] = injector.schedule.delay_s
            self._bump("delays_injected")

    def suspect_slots(self) -> frozenset[int]:
        """Slots the heartbeat monitor currently distrusts (speculation
        input for the scheduler)."""
        if self._monitor is None:
            return frozenset()
        return self._monitor.suspect_slots()

    def slot_for_split(self, split: int) -> int:
        """The slot that owns a split under static partition ownership."""
        return split % len(self._slots)

    @staticmethod
    def _query_info(query: QueryContext | None) -> dict[str, Any] | None:
        if query is None:
            return None
        # Deadline ships as the absolute monotonic instant: CLOCK_MONOTONIC
        # shares an epoch across processes on Linux.
        return {
            "query_id": query.query_id,
            "tenant": query.tenant,
            "priority": query.priority,
            "deadline": query.deadline,
        }

    def begin_job(self, query: QueryContext | None) -> None:
        # One job at a time (scheduler job lock), so a single shared
        # flag and a single mirrored token are sound.
        self._flag.value = 0
        with self._lock:
            # Schedule draws are keyed (site, split, attempt) *per job*:
            # the same job replayed from the same seed sees the same
            # directives regardless of what ran before it.
            self._attempts.clear()
        if query is None:
            return
        flag = self._flag

        def mirror(reason: str) -> None:
            if flag.value == 0:
                flag.value = encode_cancel_reason(reason)

        self._listener = (query.token, mirror)
        query.token.add_listener(mirror)

    def end_job(self, query: QueryContext | None) -> None:
        if self._listener is not None:
            token, mirror = self._listener
            token.remove_listener(mirror)
            self._listener = None
        self._flag.value = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            counters = dict(self._counters)
        counters["workers"] = len(self._slots)
        counters["generations"] = sum(s.generation for s in self._slots)
        if self._monitor is not None:
            for key, value in self._monitor.stats().items():
                if key != "heartbeat_fences":  # backend counts fences itself
                    counters[key] = value
        return counters

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        # Monitor first: a fence verdict mid-shutdown would race the
        # orderly MSG_STOP path below.
        if self._monitor is not None:
            self._monitor.stop()
        for slot in self._slots:
            slot.queue.put(_STOP)
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(timeout=_JOIN_TIMEOUT_S)
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            # Escalate until the process is actually gone: join →
            # SIGTERM → SIGKILL. A worker wedged in a hang directive (or
            # a real gray failure) ignores everything short of the kill,
            # and a leaked zombie holds its shm attachments forever.
            process.join(timeout=_JOIN_TIMEOUT_S)
            if process.is_alive():
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT_S)
            if process.is_alive():
                process.kill()
                process.join(timeout=_JOIN_TIMEOUT_S)
            for conn in (slot.conn, slot.beat_conn):
                if conn is None:
                    continue
                try:
                    conn.close()
                except OSError:
                    pass
            if slot.pid is not None:
                self._reap_spill_files(slot.pid)
        self._ship.close()

    def _bump(self, counter: str) -> None:
        with self._lock:
            self._counters[counter] += 1
