"""Executor backends: where a scheduled task attempt actually runs.

The DAG scheduler is backend-agnostic: every pooled task attempt goes
through :meth:`ExecutorBackend.run_task`. :class:`LocalBackend` calls
the task closure in-process — byte-for-byte the pre-cluster engine.
:class:`ProcessBackend` dispatches it to one of N forked worker
processes over a duplex pipe, with the closure pickled by the task
codec, heavy leaf data shipped once through shared memory, and shuffle
output spilled to per-worker files.

Topology: one pipe + one driver-side dispatcher thread per worker.
A worker runs one task at a time (Spark's one-core executor), so the
dispatcher serialises envelopes per worker; parallelism comes from the
worker *count*. Partition ownership is static modulo respawn:
``split % num_workers`` picks the slot, so repeated scans of the same
data hit the same worker's shared-memory attachments and page cache.

Worker death (injected ``cluster.worker_crash`` or a real SIGKILL)
surfaces as EOF on the pipe. The dispatcher respawns the slot (bumping
its generation), invalidates every map output the dead pid produced —
promoting PR 1's fetch-failure fault model to real process loss — and
fails the in-flight attempt with :class:`~repro.errors.WorkerLostError`,
which the scheduler's retry policy treats as transient.

Cross-process cancellation mirrors the active query's token into a
shared one-byte flag (sound because the scheduler's job lock admits one
job at a time): every worker-side ``check_cancelled`` poll reads the
flag through a :class:`~repro.cluster.worker.SharedFlagToken`.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from queue import SimpleQueue
from typing import Any, Callable

from repro.cluster.codec import TaskCodec, loads_reply
from repro.cluster.worker import (
    MSG_CRASH,
    MSG_STOP,
    MSG_TASK,
    encode_cancel_reason,
    worker_main,
)
from repro.errors import FAIL_STOP, EngineError, WorkerLostError
from repro.faults import NULL_INJECTOR, FaultInjector
from repro.serving.context import QueryContext, current_query

#: Queue sentinel that shuts a dispatcher down.
_STOP = object()
#: Grace period for a worker to exit after MSG_STOP before SIGTERM.
_JOIN_TIMEOUT_S = 2.0
#: Cancellation-poll period while waiting on a dispatched task.
_RESULT_TICK_S = 0.05


def _await_result(box: Future, query: QueryContext | None) -> Any:
    """Wait for a dispatched task's result, polling cancellation.

    ``box.result()`` with no timeout would pin the calling thread until
    the worker replies — a cancelled or deadline-expired query could
    not unwind until its in-flight task finished. Waking every tick to
    poll keeps the driver's cancellation latency bounded by
    ``_RESULT_TICK_S`` regardless of task length; the task itself keeps
    running worker-side until its own poll (the worker mirrors the
    cancel flag), but the driver stops burning a slot on it.
    """
    while True:
        try:
            return box.result(timeout=_RESULT_TICK_S)
        except FutureTimeout:
            if query is not None:
                query.check()


class ExecutorBackend:
    """Where task attempts run; the scheduler calls only this surface."""

    def run_task(self, task: Callable[[int], Any], split: int) -> Any:
        raise NotImplementedError

    def begin_job(self, query: QueryContext | None) -> None:
        """Called under the scheduler's job lock before a job starts."""

    def end_job(self, query: QueryContext | None) -> None:
        """Called under the scheduler's job lock after a job finishes."""

    def stats(self) -> dict[str, int]:
        return {}

    def stop(self) -> None:
        pass


class LocalBackend(ExecutorBackend):
    """In-process execution: exactly the pre-cluster engine."""

    def run_task(self, task: Callable[[int], Any], split: int) -> Any:
        return task(split)


class _WorkerSlot:
    """One worker process plus its driver-side plumbing."""

    __slots__ = ("slot_id", "generation", "process", "conn", "queue", "thread", "pid")

    def __init__(self, slot_id: int) -> None:
        self.slot_id = slot_id
        self.generation = 0
        self.process = None
        self.conn = None
        self.queue: SimpleQueue = SimpleQueue()
        self.thread: threading.Thread | None = None
        self.pid: int | None = None


class ProcessBackend(ExecutorBackend):
    """N forked worker processes behind per-worker dispatch threads."""

    def __init__(
        self,
        num_workers: int,
        config,
        shuffles,
        ship_store,
        injector: FaultInjector | None = None,
    ) -> None:
        if num_workers < 1:
            raise EngineError("ProcessBackend requires at least one worker")
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise EngineError(
                "the process backend requires the fork start method"
            ) from exc
        self._config = config
        self._worker_config = self._strip_config(config)
        self._shuffles = shuffles
        self._ship = ship_store
        self._injector = injector or NULL_INJECTOR
        self._codec = TaskCodec(ship_store)
        #: Shared one-byte cancellation flag, inherited through fork.
        #: 0 = live; nonzero = a cancel reason code (worker.py).
        self._flag = self._mp.RawValue("i", 0)
        self._listener: tuple[Any, Callable[[str], None]] | None = None
        self._lock = threading.Lock()
        self._counters = {  # guarded-by: _lock
            "tasks_dispatched": 0,
            "codec_fallbacks": 0,
            "workers_lost": 0,
            "crashes_injected": 0,
        }
        self._stopped = False
        self._slots = [_WorkerSlot(i) for i in range(num_workers)]
        for slot in self._slots:
            self._spawn(slot)
            slot.thread = threading.Thread(
                target=self._dispatch_loop,
                args=(slot,),
                name=f"repro-dispatch-{slot.slot_id}",
                daemon=True,
            )
            slot.thread.start()

    @staticmethod
    def _strip_config(config):
        """The config workers fork with: no nested executors, no fault
        profile (fault draws happen at dispatch on the driver so seeded
        site streams advance exactly once per logical event)."""
        import dataclasses

        return dataclasses.replace(config, executors=0, faults=None)

    # -- process lifecycle ---------------------------------------------

    def _spawn(self, slot: _WorkerSlot) -> int:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        slot.generation += 1
        process = self._mp.Process(
            target=worker_main,
            args=(child_conn, slot.slot_id, self._worker_config, self._flag),
            name=f"repro-worker-{slot.slot_id}-g{slot.generation}",
            daemon=True,
        )
        process.start()
        # Close the driver's copy of the child end: worker death then
        # surfaces as EOF on the very next recv instead of a hang.
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.pid = process.pid
        return slot.generation

    def _dispatch_loop(self, slot: _WorkerSlot) -> None:
        """Per-worker dispatcher: serialise envelopes down the pipe, one
        in flight at a time, respawning the worker on death."""
        while True:  # lint: allow[CP001] -- slot pump outlives any one query; run_task's result wait polls
            item = slot.queue.get()
            if item is _STOP:
                try:
                    slot.conn.send_bytes(MSG_STOP)
                except (OSError, BrokenPipeError, ValueError):
                    pass
                return
            payload, box = item
            try:
                slot.conn.send_bytes(payload)
                raw = slot.conn.recv_bytes()
            except (EOFError, OSError, BrokenPipeError):
                dead_pid = slot.pid or -1
                try:
                    slot.conn.close()
                except OSError:
                    pass
                if self._stopped:
                    box.set_exception(
                        EngineError("executor backend stopped mid-task")
                    )
                    return
                generation = self._spawn(slot)
                # Invalidate *before* failing the attempt: the retry
                # must observe the missing map outputs, not stale
                # statuses pointing at deleted spill files.
                lost = self._shuffles.handle_worker_death(dead_pid)
                self._bump("workers_lost")
                box.set_exception(
                    WorkerLostError(
                        slot.slot_id,
                        generation,
                        f"pid {dead_pid} died mid-task; "
                        f"{lost} map outputs invalidated",
                    )
                )
                continue
            try:
                status, payload_obj, deltas = loads_reply(raw)
            except FAIL_STOP:
                raise
            except Exception as exc:  # noqa: BLE001 - defensive decode
                box.set_exception(
                    EngineError(f"undecodable worker reply: {exc!r}")
                )
                continue
            self._replay_deltas(deltas)
            if status == "ok":
                box.set_result(payload_obj)
            else:
                box.set_exception(payload_obj)

    def _replay_deltas(self, deltas: list) -> None:
        """Fold worker-side accumulator adds into the driver objects."""
        for accumulator_id, values in deltas:
            accumulator = self._codec.accumulators.get(accumulator_id)
            if accumulator is None:
                continue
            for value in values:
                accumulator.add(value)

    # -- backend surface ------------------------------------------------

    def run_task(self, task: Callable[[int], Any], split: int) -> Any:
        if self._injector.should_fire("cluster.worker_crash"):
            # A crash directive instead of the task: the worker hard-
            # exits, the dispatcher raises WorkerLostError, and the
            # scheduler's transient-retry path re-runs the attempt.
            self._bump("crashes_injected")
            payload = MSG_CRASH
        else:
            envelope = {
                "task": task,
                "split": split,
                "query": self._query_info(current_query()),
                "plan": self._shuffles.export_plan(),
            }
            try:
                payload = MSG_TASK + self._codec.dumps_envelope(envelope)
            except FAIL_STOP:
                raise
            except Exception:  # noqa: BLE001 - exotic closures degrade
                self._bump("codec_fallbacks")
                return task(split)
        slot = self._slots[split % len(self._slots)]
        box: Future = Future()
        slot.queue.put((payload, box))
        self._bump("tasks_dispatched")
        return _await_result(box, current_query())

    @staticmethod
    def _query_info(query: QueryContext | None) -> dict[str, Any] | None:
        if query is None:
            return None
        # Deadline ships as the absolute monotonic instant: CLOCK_MONOTONIC
        # shares an epoch across processes on Linux.
        return {
            "query_id": query.query_id,
            "tenant": query.tenant,
            "priority": query.priority,
            "deadline": query.deadline,
        }

    def begin_job(self, query: QueryContext | None) -> None:
        # One job at a time (scheduler job lock), so a single shared
        # flag and a single mirrored token are sound.
        self._flag.value = 0
        if query is None:
            return
        flag = self._flag

        def mirror(reason: str) -> None:
            if flag.value == 0:
                flag.value = encode_cancel_reason(reason)

        self._listener = (query.token, mirror)
        query.token.add_listener(mirror)

    def end_job(self, query: QueryContext | None) -> None:
        if self._listener is not None:
            token, mirror = self._listener
            token.remove_listener(mirror)
            self._listener = None
        self._flag.value = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            counters = dict(self._counters)
        counters["workers"] = len(self._slots)
        counters["generations"] = sum(s.generation for s in self._slots)
        return counters

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        for slot in self._slots:
            slot.queue.put(_STOP)
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(timeout=_JOIN_TIMEOUT_S)
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=_JOIN_TIMEOUT_S)
            if process.is_alive():
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT_S)
            try:
                slot.conn.close()
            except OSError:
                pass
        self._ship.close()

    def _bump(self, counter: str) -> None:
        with self._lock:
            self._counters[counter] += 1
