"""Cluster shuffle: spill-file map-output registry + worker fetch client.

:class:`ClusterShuffleManager` is the driver-side coordinator half —
the same registry surface the scheduler already speaks
(``register_shuffle`` / ``reduce_sizes`` / ``missing_map_indices`` /
``fetch``), but outputs are :class:`~repro.cluster.spill.MapStatus`
records pointing at spill files instead of in-memory buckets.
:class:`WorkerShuffleClient` is the worker half: it resolves fetches
against the fetch plan shipped in each task envelope.

Dead workers lose their map outputs (statuses invalidated, files
deleted), so the next fetch raises
:class:`~repro.errors.FetchFailedError` and the scheduler's lineage
machinery recomputes exactly the missing maps — the promotion of the
PR 1 fault model to real process death.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.cluster.spill import MapStatus, SpillMapWriter, read_bucket
from repro.engine.shuffle import ShuffleDependency, ShuffleManager
from repro.errors import EngineError, FetchFailedError
from repro.serving.context import check_cancelled


@dataclass
class _ClusterShuffleState:
    num_maps: int
    statuses: dict[int, MapStatus] = field(default_factory=dict)

    def complete(self) -> bool:
        return len(self.statuses) == self.num_maps


class ClusterShuffleManager(ShuffleManager):
    """Spill-file map-output registry for the process backend."""

    def __init__(
        self, spill_root: str, injector=None, rpc_max_retries: int = 2
    ) -> None:
        super().__init__(injector)
        # Re-bind the base class's registry lock so the (per-class)
        # lock-discipline analyzer can resolve the annotations below.
        self._lock = self._lock
        self.spill_root = spill_root
        self.rpc_max_retries = rpc_max_retries
        self._states: dict[int, _ClusterShuffleState] = {}  # guarded-by: _lock
        #: Fenced (slot, generation) pairs: map outputs written by these
        #: are zombie data — a worker declared dead may have flushed a
        #: spill file (and its reply may still be in flight) after the
        #: verdict. Commits from fenced generations are rejected.
        self._fenced: set[tuple[int, int]] = set()  # guarded-by: _lock
        self.stale_commits_rejected = 0  # guarded-by: _lock

    # -- registry surface (scheduler-facing) ---------------------------

    def register_shuffle(self, shuffle_id: int, num_maps: int) -> None:
        with self._lock:
            if shuffle_id not in self._states:
                self._states[shuffle_id] = _ClusterShuffleState(num_maps=num_maps)

    def is_complete(self, shuffle_id: int) -> bool:
        with self._lock:
            state = self._states.get(shuffle_id)
            return state is not None and state.complete()

    def map_writer(self, dep: ShuffleDependency) -> SpillMapWriter:
        return SpillMapWriter(
            root=self.spill_root,
            shuffle_id=dep.shuffle_id,
            partitioner=dep.partitioner,
            aggregator=dep.aggregator,
            map_side_combine=dep.map_side_combine,
        )

    def note_fenced(self, slot: int, generation: int) -> None:
        """Record a fenced (slot, generation): any map output stamped
        with it — whether already committed or still riding a late
        reply — is zombie data and must never feed a reduce task."""
        doomed: list[MapStatus] = []
        with self._lock:
            self._fenced.add((slot, generation))
            for state in self._states.values():
                victims = [
                    i
                    for i, s in state.statuses.items()
                    if s.slot == slot and s.generation == generation
                ]
                for i in victims:
                    doomed.append(state.statuses.pop(i))
                self.lost_map_outputs += len(victims)
        for status in doomed:
            _unlink_quiet(status.path)

    def commit_map_outputs(
        self, shuffle_id: int, statuses: list[MapStatus | None]
    ) -> None:
        stale: list[MapStatus] = []
        with self._lock:
            state = self._states.get(shuffle_id)
            if state is None:
                raise EngineError(f"shuffle {shuffle_id} was never registered")
            for status in statuses:
                if status is None:
                    continue
                # Driver-side writes (slot < 0, codec-fallback in-process
                # map tasks) can never be fenced; worker writes are
                # checked against the fence table so a zombie's output
                # committed *after* its verdict is rejected.
                if status.slot >= 0 and (status.slot, status.generation) in self._fenced:
                    self.stale_commits_rejected += 1
                    stale.append(status)
                    continue
                state.statuses[status.map_index] = status
        for status in stale:
            _unlink_quiet(status.path)

    def fetch(self, shuffle_id: int, reduce_index: int) -> Iterator[tuple[Any, Any]]:
        """Driver-side fetch (inline single-split reduce stages)."""
        with self._lock:
            state = self._states.get(shuffle_id)
            if state is None:
                raise EngineError(f"shuffle {shuffle_id} was never registered")
            if state.complete() and self._injector.should_fire("shuffle.fetch"):
                victim = self._injector.choose(
                    "shuffle.fetch", sorted(state.statuses)
                )
                self._invalidate_locked(state, victim)
                raise FetchFailedError(
                    shuffle_id,
                    victim,
                    f"shuffle {shuffle_id}: map output {victim} lost (injected)",
                )
            if not state.complete():
                missing = state.num_maps - len(state.statuses)
                raise FetchFailedError(
                    shuffle_id,
                    None,
                    f"shuffle {shuffle_id} incomplete: {missing} map outputs missing",
                )
            statuses = [state.statuses[i] for i in sorted(state.statuses)]
        return _drain(statuses, reduce_index, self.rpc_max_retries)

    def reduce_sizes(self, shuffle_id: int) -> list[tuple[int, int]] | None:
        with self._lock:
            state = self._states.get(shuffle_id)
            if state is None or not state.complete():
                return None
            totals: list[tuple[int, int]] | None = None
            for status in state.statuses.values():
                if totals is None:
                    totals = list(status.sizes)
                else:
                    totals = [
                        (r + br, b + bb)
                        for (r, b), (br, bb) in zip(totals, status.sizes)
                    ]
            return totals

    def missing_map_indices(self, shuffle_id: int) -> list[int]:
        with self._lock:
            state = self._states.get(shuffle_id)
            if state is None:
                return []
            return [i for i in range(state.num_maps) if i not in state.statuses]

    def remove_shuffle(self, shuffle_id: int) -> None:
        with self._lock:
            state = self._states.pop(shuffle_id, None)
            if state is None:
                return
            paths = [status.path for status in state.statuses.values()]
        for path in paths:
            _unlink_quiet(path)

    def stats(self) -> dict[str, int]:
        with self._lock:
            records = sum(
                rows
                for state in self._states.values()
                for status in state.statuses.values()
                for rows, _est in status.sizes
            )
            return {
                "shuffles": len(self._states),
                "records": records,
                "stale_commits_rejected": self.stale_commits_rejected,
            }

    # -- cluster-only surface ------------------------------------------

    def export_plan(self) -> dict[int, dict[str, Any]]:
        """Fetch plan shipped in task envelopes: committed statuses per
        active shuffle (small metadata, never bucket data)."""
        with self._lock:
            return {
                shuffle_id: {
                    "num_maps": state.num_maps,
                    "statuses": dict(state.statuses),
                }
                for shuffle_id, state in self._states.items()
            }

    def handle_worker_death(self, pid: int) -> int:
        """Invalidate everything a dead worker process produced."""
        doomed: list[MapStatus] = []
        with self._lock:
            for state in self._states.values():
                victims = [
                    i for i, s in state.statuses.items() if s.pid == pid
                ]
                for i in victims:
                    doomed.append(state.statuses.pop(i))
                self.lost_map_outputs += len(victims)
        for status in doomed:
            _unlink_quiet(status.path)
        return len(doomed)

    def _invalidate_locked(  # requires-lock: _lock
        self, state: _ClusterShuffleState, map_index: int
    ) -> None:
        status = state.statuses.pop(map_index, None)
        self.lost_map_outputs += 1
        if status is not None:
            _unlink_quiet(status.path)


class WorkerShuffleClient:
    """Worker-side fetch: resolves against the envelope's fetch plan.

    Single-threaded per worker process (one task at a time), so no
    locking; the plan is replaced at each task dispatch.
    """

    def __init__(self, rpc_max_retries: int = 2) -> None:
        self._plan: dict[int, dict[str, Any]] = {}
        self._rpc_max_retries = rpc_max_retries

    def install_plan(self, plan: dict[int, dict[str, Any]]) -> None:
        self._plan = plan

    def fetch(self, shuffle_id: int, reduce_index: int) -> Iterator[tuple[Any, Any]]:
        entry = self._plan.get(shuffle_id)
        if entry is None:
            raise FetchFailedError(
                shuffle_id, None, f"shuffle {shuffle_id}: no fetch plan shipped"
            )
        statuses_by_map: dict[int, MapStatus] = entry["statuses"]
        if len(statuses_by_map) < entry["num_maps"]:
            missing = entry["num_maps"] - len(statuses_by_map)
            raise FetchFailedError(
                shuffle_id,
                None,
                f"shuffle {shuffle_id} incomplete: {missing} map outputs missing",
            )
        statuses = [statuses_by_map[i] for i in sorted(statuses_by_map)]
        return _drain(statuses, reduce_index, self._rpc_max_retries)


def _drain(
    statuses: list[MapStatus], reduce_index: int, max_retries: int = 2
) -> Iterator[tuple[Any, Any]]:
    for status in statuses:
        # Cooperative cancellation poll once per map bucket, matching
        # the in-memory manager's drain loop.
        check_cancelled()
        yield from read_bucket(status, reduce_index, max_retries)


def _unlink_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
