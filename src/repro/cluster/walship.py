"""Worker-local WAL replay: durable partitions ship as references.

When a table is durable, every row the driver acknowledged is already
on shared disk — checkpoint blobs plus WAL segments, written *before*
the in-memory apply. Shipping a multi-megabyte shm snapshot of data
the worker can rebuild from its own shard's log is wasted work, and
after a fenced respawn it is exactly the re-shipping ROADMAP item 3
calls out. So the codec emits a compact ``("wal", (store_dir,
partition_index, row_count, watermark))`` token instead, and this
cache resolves it worker-side:

1. rebuild the shard once per ``(store_dir, partition_index)`` — the
   committed checkpoint's sealed state (or an empty partition) with
   the exact geometry recorded in ``meta.bin``;
2. replay WAL row records in epoch order **stopping at the snapshot's
   ``row_count``** — the log may have grown past the driver's MVCC
   version, and rows past the watermark belong to a future snapshot;
3. take a normal :class:`~repro.core.partition.IndexedPartition`
   snapshot and verify it lands on the driver's ``(row_count,
   watermark)`` exactly. Identical geometry + identical append order
   ⇒ identical watermark, so any mismatch means the durable state
   cannot reproduce this version (a checkpoint raced past it, an
   epoch was garbage-collected, a torn segment) and raises
   :class:`~repro.errors.WalReplayError` — transient: the driver
   disables wal-shipping for that partition and the retried task
   re-pickles with the shm segment path.

Later snapshots of the same shard replay *incrementally*: the cached
partition appends only the delta rows, and the MVCC contract keeps
every previously returned snapshot valid (they never read past their
own watermark).
"""

from __future__ import annotations

from typing import Any

from repro.core.partition import IndexedPartition, PartitionSnapshot
from repro.core.pointers import PointerLayout
from repro.durability.checkpoint import DurableStore
from repro.durability.wal import replay_rows, replay_wal
from repro.errors import FAIL_STOP, WalReplayError


class _Shard:
    """One locally rebuilt durable partition and its replay cursor."""

    __slots__ = ("store", "partition", "base_rows", "rows_applied")

    def __init__(
        self,
        store: DurableStore,
        partition: IndexedPartition,
        base_rows: int,
    ) -> None:
        self.store = store
        self.partition = partition
        #: Rows that came from the checkpoint blob (not replayable).
        self.base_rows = base_rows
        #: Total rows applied so far (checkpoint + replayed WAL rows).
        self.rows_applied = base_rows


class WorkerWalCache:
    """Worker-side resolver for ``("wal", ...)`` codec tokens.

    Single-threaded per worker process (one task at a time), so no
    locking — same discipline as :class:`WorkerShipCache`.
    """

    def __init__(self, config: Any) -> None:
        self._config = config
        self._shards: dict[tuple[str, int], _Shard] = {}
        self._snapshots: dict[tuple, PartitionSnapshot] = {}
        self.replays = 0
        self.rows_replayed = 0

    def load(
        self,
        store_dir: str,
        pindex: int,
        row_count: int,
        watermark: tuple[int, int],
    ) -> PartitionSnapshot:
        key = (store_dir, pindex, row_count, watermark)
        hit = self._snapshots.get(key)
        if hit is not None:
            return hit
        try:
            snap = self._rebuild(store_dir, pindex, row_count)
        except WalReplayError:
            raise
        except FAIL_STOP:
            raise
        except Exception as exc:  # noqa: BLE001 - any durable-state damage
            # Whatever broke the rebuild (missing store, RecoveryError
            # on a GC'd checkpoint, decode failure), the remedy is the
            # same: report it transient so the retry ships a segment.
            raise WalReplayError(store_dir, pindex, repr(exc)) from exc
        if snap.row_count != row_count or snap.watermark != watermark:
            raise WalReplayError(
                store_dir,
                pindex,
                f"replayed to (rows={snap.row_count}, wm={snap.watermark}), "
                f"driver snapshot is (rows={row_count}, wm={watermark})",
            )
        self._snapshots[key] = snap
        return snap

    # -- rebuild machinery ---------------------------------------------

    def _rebuild(
        self, store_dir: str, pindex: int, row_count: int
    ) -> PartitionSnapshot:
        shard = self._shards.get((store_dir, pindex))
        if shard is None or shard.rows_applied > row_count:
            # First touch — or the driver asked for an *older* MVCC
            # version than the cached shard has applied (possible when
            # version handles interleave); rebuild a throwaway base.
            fresh = self._base_shard(store_dir, pindex)
            if shard is None:
                self._shards[(store_dir, pindex)] = fresh
            shard = fresh
        if shard.base_rows > row_count:
            raise WalReplayError(
                store_dir,
                pindex,
                f"checkpoint already holds {shard.base_rows} rows, past the "
                f"snapshot's {row_count}",
            )
        if shard.rows_applied < row_count:
            self._replay_to(shard, pindex, row_count)
        if shard.rows_applied != row_count:
            raise WalReplayError(
                store_dir,
                pindex,
                f"WAL holds only {shard.rows_applied} rows, snapshot needs "
                f"{row_count}",
            )
        self.replays += 1
        return shard.partition.snapshot()

    def _base_shard(self, store_dir: str, pindex: int) -> _Shard:
        """Partition rebuilt from the committed checkpoint (or empty),
        with the geometry ``meta.bin`` records — the same recipe as
        :class:`~repro.durability.recovery.RecoveryManager`."""
        from repro.durability.recovery import schema_from_meta

        store = DurableStore(store_dir, fsync=False)
        meta = store.read_meta()
        schema = schema_from_meta(meta["schema"])
        key_ordinal = meta["key_ordinal"]
        batch_size = meta["batch_size_bytes"]
        max_row = meta["max_row_bytes"]
        layout = PointerLayout.for_geometry(batch_size, max_row)
        config = self._config
        ckpt_epoch = store.current_checkpoint_epoch()
        if ckpt_epoch is None:
            partition = IndexedPartition(
                schema,
                key_ordinal,
                layout,
                batch_size,
                max_row,
                zone_maps=config.zone_maps_enabled,
                sanitizers=config.sanitizers_enabled,
            )
        else:
            states, _offsets = store.load_checkpoint(ckpt_epoch)
            partition = IndexedPartition.from_state(
                schema,
                key_ordinal,
                layout,
                batch_size,
                max_row,
                states[pindex],
                zone_maps=config.zone_maps_enabled,
                sanitizers=config.sanitizers_enabled,
            )
        shard = _Shard(store, partition, partition.snapshot().row_count)
        return shard

    def _replay_to(self, shard: _Shard, pindex: int, row_count: int) -> None:
        """Append WAL rows ``[rows_applied, row_count)`` to the shard.

        ``truncate=False`` throughout: a concurrently-growing or torn
        segment must never be rewritten by a reader — the driver owns
        the log; the intact prefix is all a replayer may trust.
        """
        store = shard.store
        replay_from = store.current_checkpoint_epoch() or 0
        codec = shard.partition.codec
        cursor = shard.base_rows  # absolute row index of the next payload
        for epoch in store.wal_epochs():
            if epoch < replay_from:
                continue
            if shard.rows_applied >= row_count:
                break
            payloads = replay_rows(
                replay_wal(store.wal_path(epoch, pindex), truncate=False)
            )
            # Payload i of this epoch is absolute row (cursor + i): keep
            # the window [rows_applied, row_count) — skip rows applied on
            # an earlier load, stop before rows past the driver's version.
            lo = max(0, shard.rows_applied - cursor)
            hi = max(lo, min(len(payloads), row_count - cursor))
            if hi > lo:
                shard.partition.append_many(
                    [codec.decode(p) for p in payloads[lo:hi]]
                )
                shard.rows_applied += hi - lo
                self.rows_replayed += hi - lo
            cursor += len(payloads)


__all__ = ["WorkerWalCache"]
