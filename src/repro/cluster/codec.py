"""Task-dispatch codec: pickled task closures that actually pickle.

The scheduler's tasks are closures over RDD graphs (`map_task`,
`result_task`), and RDD graphs are full of lambdas — which the stock
pickler refuses by design. This module is a minimal by-value function
pickler (the cloudpickle idea, reduced to what this engine needs):

* module-level functions and classes still pickle **by reference**;
* lambdas and nested functions pickle **by value** — ``marshal``-ed
  code object, the subset of module globals the code actually names,
  defaults, and closure cells (recursively through nested code
  objects);
* driver-resident singletons substitute via ``persistent_id``:
  the :class:`~repro.engine.context.EngineContext` becomes the worker's
  process-local context, the driver's
  :class:`~repro.faults.FaultInjector` becomes the worker's no-op
  injector (fault draws happen on the driver so seeded streams stay
  deterministic), accumulators become write-only proxies whose deltas
  ride home in the reply envelope, and heavy leaf data (partition
  snapshots, relations, broadcasts) becomes a shared-memory token
  resolved by the :class:`~repro.cluster.shm.WorkerShipCache`.

Anything else unpicklable raises — and the process backend falls back
to running that one task in-process, so exotic user closures degrade
instead of failing.
"""

from __future__ import annotations

import io
import marshal
import pickle
import struct
import types
from typing import Any

from repro.errors import FAIL_STOP
from repro.serialize import PICKLE_PROTOCOL


def _rebuild_cell(contents: Any) -> types.CellType:
    return types.CellType(contents)


def _rebuild_empty_cell() -> types.CellType:
    return types.CellType()


def _import_module(name: str) -> types.ModuleType:
    import importlib

    return importlib.import_module(name)


def _rebuild_function(
    code_bytes: bytes,
    global_names: dict[str, Any],
    name: str,
    defaults: tuple | None,
    kwdefaults: dict | None,
    closure: tuple | None,
    module: str,
    qualname: str,
) -> types.FunctionType:
    code = marshal.loads(code_bytes)
    global_names.setdefault("__builtins__", __builtins__)
    global_names.setdefault("__name__", module)
    fn = types.FunctionType(code, global_names, name, defaults, closure)
    fn.__kwdefaults__ = kwdefaults
    fn.__module__ = module
    fn.__qualname__ = qualname
    return fn


def _code_names(code: types.CodeType) -> set[str]:
    """Every global name a code object (or its nested lambdas) loads."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _code_names(const)
    return names


def _resolves_by_reference(fn: types.FunctionType) -> bool:
    """True when ``pickle``'s normal import-by-qualname path would find
    this exact function object again (module-level defs)."""
    import sys

    module = sys.modules.get(fn.__module__ or "")
    if module is None:
        return False
    obj: Any = module
    for part in fn.__qualname__.split("."):
        if part == "<locals>":
            return False
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is fn


class TaskPickler(pickle.Pickler):
    """Driver-side pickler for one task envelope."""

    def __init__(self, file, ship_store, accumulators: dict[int, Any]):
        super().__init__(file, protocol=PICKLE_PROTOCOL)
        self._ship = ship_store
        self._accumulators = accumulators

    # -- driver-singleton substitution ---------------------------------

    def persistent_id(self, obj: Any):  # noqa: C901 - type dispatch
        # Imported lazily: this module must stay importable from worker
        # processes before the engine package finishes initialising.
        from repro.core.partition import PartitionSnapshot
        from repro.engine.accumulators import Accumulator
        from repro.engine.broadcast import Broadcast
        from repro.engine.context import EngineContext
        from repro.faults import FaultInjector
        from repro.sql.relation import BaseRelation

        if isinstance(obj, EngineContext):
            return ("ctx",)
        if isinstance(obj, FaultInjector):
            # Fault decisions are made at dispatch on the driver; the
            # worker's injector is inert so seeded site streams draw
            # exactly once per logical event.
            return ("injector",)
        if isinstance(obj, PartitionSnapshot):
            # Durable partitions ship as a WAL reference when possible:
            # the worker rebuilds the snapshot locally from its shard's
            # checkpoint + WAL (no segment, no snapshot re-ship after a
            # respawn). A prior replay failure gates the partition back
            # onto the shm path.
            ref = getattr(obj.partition, "durable_ref", None)
            if ref is not None and self._ship.allows_wal_ship(ref):
                return (
                    "wal",
                    (ref[0], ref[1], obj.row_count, obj.watermark),
                )
            return ("ship", self._ship.token_for_snapshot(obj))
        if isinstance(obj, (BaseRelation, Broadcast)):
            return ("ship", self._ship.token_for_object(obj))
        if isinstance(obj, Accumulator):
            self._accumulators[obj.accumulator_id] = obj
            return ("acc", obj.accumulator_id)
        return None

    # -- by-value functions --------------------------------------------

    def reducer_override(self, obj: Any):
        if isinstance(obj, types.FunctionType):
            if _resolves_by_reference(obj):
                return NotImplemented
            return self._reduce_function(obj)
        if isinstance(obj, types.CellType):
            try:
                return (_rebuild_cell, (obj.cell_contents,))
            except ValueError:
                return (_rebuild_empty_cell, ())
        if isinstance(obj, types.ModuleType):
            return (_import_module, (obj.__name__,))
        if isinstance(obj, struct.Struct):
            # Compiled row codecs close over Struct instances; they
            # rebuild exactly from their format string.
            return (struct.Struct, (obj.format,))
        return NotImplemented

    def _reduce_function(self, fn: types.FunctionType):
        code = fn.__code__
        wanted = _code_names(code)
        fn_globals = fn.__globals__
        global_names = {
            name: fn_globals[name] for name in wanted if name in fn_globals
        }
        return (
            _rebuild_function,
            (
                marshal.dumps(code),
                global_names,
                fn.__name__,
                fn.__defaults__,
                fn.__kwdefaults__,
                fn.__closure__,
                fn.__module__ or "repro.cluster.codec",
                fn.__qualname__,
            ),
        )


class TaskUnpickler(pickle.Unpickler):
    """Worker-side unpickler resolving driver tokens."""

    def __init__(self, file, worker_context):
        super().__init__(file)
        self._worker = worker_context

    def persistent_load(self, pid):
        kind = pid[0]
        if kind == "ctx":
            return self._worker
        if kind == "injector":
            from repro.faults import NULL_INJECTOR

            return NULL_INJECTOR
        if kind == "ship":
            return self._worker.ship_cache.load(pid[1])
        if kind == "wal":
            store_dir, pindex, row_count, watermark = pid[1]
            return self._worker.wal_cache.load(
                store_dir, pindex, row_count, watermark
            )
        if kind == "acc":
            return self._worker.accumulator_proxy(pid[1])
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


class TaskCodec:
    """Driver-side envelope builder."""

    def __init__(self, ship_store) -> None:
        self._ship = ship_store
        #: Accumulators referenced by shipped closures, by id — the
        #: dispatcher replays worker deltas through them. Written only
        #: while the per-worker dispatch lock serialises envelopes.
        self.accumulators: dict[int, Any] = {}

    def dumps_envelope(self, envelope: dict) -> bytes:
        buffer = io.BytesIO()
        TaskPickler(buffer, self._ship, self.accumulators).dump(envelope)
        return buffer.getvalue()


def loads_envelope(data: bytes, worker_context) -> dict:
    return TaskUnpickler(io.BytesIO(data), worker_context).load()


def dumps_reply(
    status: str, payload: Any, deltas: list, generation: int = 0
) -> bytes:
    """Worker → driver reply; falls back to a repr-only error when the
    payload itself refuses to pickle. ``generation`` stamps the reply
    with the worker's spawn generation so the dispatcher can fence a
    zombie's late answer."""
    try:
        return pickle.dumps(
            (status, payload, deltas, generation), protocol=PICKLE_PROTOCOL
        )
    except FAIL_STOP:
        raise
    except Exception:  # noqa: BLE001 - any pickling failure
        from repro.errors import EngineError

        if status == "err":
            substitute: Any = EngineError(
                f"worker task failed with unpicklable exception: {payload!r}"
            )
        else:
            substitute = EngineError(
                f"worker task result was unpicklable: {type(payload).__name__}"
            )
        return pickle.dumps(
            ("err", substitute, deltas, generation), protocol=PICKLE_PROTOCOL
        )


def loads_reply(data: bytes) -> tuple[str, Any, list, int]:
    return pickle.loads(data)
