"""LDBC Social Network Benchmark substrate (paper §3).

The paper generates its datasets with the SNB Datagen [Erling et al.,
SIGMOD '15] and runs the 7 *simple read* (short read) queries plus an
update stream. This package provides laptop-scale equivalents:

* :mod:`repro.snb.datagen` — a seeded generator producing the SNB
  graph tables (persons, knows edges with power-law degrees, messages,
  forums, memberships, likes) at a configurable scale factor;
* :mod:`repro.snb.loader` — loads a dataset into a session as cached
  vanilla DataFrames or as Indexed DataFrames;
* :mod:`repro.snb.queries` — SQ1..SQ7, each written once against a
  :class:`~repro.snb.loader.SNBContext` so the identical query text
  runs on both vanilla and indexed tables;
* :mod:`repro.snb.updates` — the continuously-growing update stream
  that the demo feeds through Kafka.
"""

from repro.snb.datagen import SNBDataset, generate
from repro.snb.loader import SNBContext, load_indexed, load_vanilla
from repro.snb.queries import ALL_QUERIES, run_query, sq1, sq2, sq3, sq4, sq5, sq6, sq7
from repro.snb.updates import UpdateBatch, update_stream

__all__ = [
    "SNBDataset",
    "generate",
    "SNBContext",
    "load_vanilla",
    "load_indexed",
    "ALL_QUERIES",
    "run_query",
    "sq1",
    "sq2",
    "sq3",
    "sq4",
    "sq5",
    "sq6",
    "sq7",
    "UpdateBatch",
    "update_stream",
]
