"""SNB update stream: the continuously-growing graph of the demo.

The paper's demo feeds SNB updates through Kafka so the graph mutates
while queries run. :func:`update_stream` produces deterministic batches
of *new* persons, knows edges, and messages whose ids continue the
dataset's id spaces — suitable both for direct
``IndexedDataFrame.append_rows`` calls and for publication through
:mod:`repro.streaming`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.snb.datagen import EPOCH_START_MS, SNBDataset, _content, _ip  # noqa: F401
from repro.snb.datagen import _BROWSERS, _DAY_MS, _FIRST_NAMES, _LAST_NAMES
from repro.snb.schema import FORUM_ID_BASE, MESSAGE_ID_BASE


@dataclass
class UpdateBatch:
    """One micro-batch of graph growth."""

    sequence: int
    persons: list[tuple] = field(default_factory=list)
    knows: list[tuple] = field(default_factory=list)
    messages: list[tuple] = field(default_factory=list)

    def total_rows(self) -> int:
        return len(self.persons) + len(self.knows) + len(self.messages)


def update_stream(
    dataset: SNBDataset,
    num_batches: int,
    rows_per_batch: int = 100,
    seed: int = 1337,
    person_fraction: float = 0.1,
    knows_fraction: float = 0.3,
) -> Iterator[UpdateBatch]:
    """Yield ``num_batches`` deterministic update batches.

    Each batch is roughly ``rows_per_batch`` rows split between new
    persons, new knows edges, and new messages (the rest). New entities
    may reference both original and previously streamed ids — the graph
    genuinely grows rather than being replayed.
    """
    if not 0 <= person_fraction + knows_fraction <= 1:
        raise ValueError("fractions must sum to at most 1")
    rng = random.Random(seed)
    person_ids = list(dataset.person_ids())
    message_ids = list(dataset.message_ids())
    next_person = max(person_ids, default=0) + 1
    next_message = max(message_ids, default=MESSAGE_ID_BASE) + 1
    num_forums = max(1, len(dataset.forums))
    now = EPOCH_START_MS + 365 * _DAY_MS

    for sequence in range(num_batches):
        batch = UpdateBatch(sequence=sequence)
        for _ in range(rows_per_batch):
            draw = rng.random()
            now += rng.randint(1, 1000)  # stream time advances
            if draw < person_fraction:
                pid = next_person
                next_person += 1
                person_ids.append(pid)
                batch.persons.append(
                    (
                        pid,
                        rng.choice(_FIRST_NAMES),
                        rng.choice(_LAST_NAMES),
                        rng.choice(("male", "female")),
                        EPOCH_START_MS - rng.randint(6570, 25550) * _DAY_MS,
                        now,
                        _ip(rng),
                        rng.choice(_BROWSERS),
                        rng.randint(1, 50),
                    )
                )
            elif draw < person_fraction + knows_fraction and len(person_ids) >= 2:
                a, b = rng.sample(person_ids, 2)
                batch.knows.append((a, b, now))
                batch.knows.append((b, a, now))
            else:
                message_id = next_message
                next_message += 1
                creator = rng.choice(person_ids)
                content = _content(rng)
                is_post = not message_ids or rng.random() < 0.4
                if is_post:
                    forum = FORUM_ID_BASE + rng.randint(1, num_forums)
                    reply_of = None
                else:
                    forum = None
                    reply_of = rng.choice(message_ids)
                batch.messages.append(
                    (
                        message_id,
                        creator,
                        now,
                        content,
                        len(content),
                        is_post,
                        forum,
                        reply_of,
                        _ip(rng),
                        rng.choice(_BROWSERS),
                    )
                )
                message_ids.append(message_id)
        yield batch
