"""Table schemas of the SNB-style social graph.

Simplified from the LDBC SNB interactive schema to the columns the
short reads and the paper's operator microbenchmarks touch. Messages
(posts and comments) are unified into one table with an ``is_post``
flag, as in several SNB SQL reference implementations.
"""

from __future__ import annotations

from repro.sql.types import (
    BooleanType,
    LongType,
    StringType,
    StructField,
    StructType,
    TimestampType,
)

PERSON_SCHEMA = StructType(
    [
        StructField("id", LongType(), nullable=False),
        StructField("first_name", StringType()),
        StructField("last_name", StringType()),
        StructField("gender", StringType()),
        StructField("birthday", TimestampType()),
        StructField("creation_date", TimestampType()),
        StructField("location_ip", StringType()),
        StructField("browser_used", StringType()),
        StructField("city_id", LongType()),
    ]
)

#: person-knows-person edge table (stored in both directions, as the
#: LDBC datagen does for the interactive workload).
KNOWS_SCHEMA = StructType(
    [
        StructField("person1_id", LongType(), nullable=False),
        StructField("person2_id", LongType(), nullable=False),
        StructField("creation_date", TimestampType()),
    ]
)

#: Unified messages: posts (is_post, forum_id set) and comments
#: (reply_of_id set).
MESSAGE_SCHEMA = StructType(
    [
        StructField("id", LongType(), nullable=False),
        StructField("creator_id", LongType(), nullable=False),
        StructField("creation_date", TimestampType()),
        StructField("content", StringType()),
        StructField("length", LongType()),
        StructField("is_post", BooleanType()),
        StructField("forum_id", LongType()),
        StructField("reply_of_id", LongType()),
        StructField("location_ip", StringType()),
        StructField("browser_used", StringType()),
    ]
)

FORUM_SCHEMA = StructType(
    [
        StructField("id", LongType(), nullable=False),
        StructField("title", StringType()),
        StructField("creation_date", TimestampType()),
        StructField("moderator_id", LongType()),
    ]
)

FORUM_MEMBER_SCHEMA = StructType(
    [
        StructField("forum_id", LongType(), nullable=False),
        StructField("person_id", LongType(), nullable=False),
        StructField("join_date", TimestampType()),
    ]
)

LIKES_SCHEMA = StructType(
    [
        StructField("person_id", LongType(), nullable=False),
        StructField("message_id", LongType(), nullable=False),
        StructField("creation_date", TimestampType()),
    ]
)

#: ID spaces, mirroring the disjoint id ranges of the LDBC datagen.
PERSON_ID_BASE = 0
FORUM_ID_BASE = 10_000_000
MESSAGE_ID_BASE = 100_000_000
