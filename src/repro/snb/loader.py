"""Loading SNB datasets into a session, vanilla or indexed.

Both loaders return an :class:`SNBContext` — the query functions in
:mod:`repro.snb.queries` are written once against it, so the same
query logic runs on cached vanilla DataFrames and on Indexed
DataFrames (where the injected rules kick in transparently).

Index configuration of the demo scenario (documented deviation: the
paper does not state its exact index set; this one is chosen so that,
as in Figure 3, queries SQ5 and SQ6 cannot exploit any index — their
access paths are keyed on non-indexed columns):

* ``person``  indexed on ``id``            (SQ1, SQ3's join build side)
* ``knows``   indexed on ``person1_id``    (SQ3)
* ``message`` indexed on ``creator_id``    (SQ2; also SQ5/SQ6's message
  table, where the key does not help)
* ``message`` indexed on ``id``            (SQ4)
* ``message`` indexed on ``reply_of_id``   (SQ7)
* ``forum``, ``forum_member``, ``likes``   never indexed
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.indexed_df import IndexedDataFrame, create_index
from repro.snb import schema as snb_schema
from repro.snb.datagen import SNBDataset
from repro.sql.dataframe import DataFrame
from repro.sql.session import Session


@dataclass
class SNBContext:
    """Uniform handle on the SNB tables a query needs.

    The three ``message_by_*`` members are *views keyed for a specific
    access path*: in the vanilla context they are all the same cached
    DataFrame; in the indexed context each is an Indexed DataFrame view
    with the corresponding index key.
    """

    session: Session
    indexed: bool
    person: DataFrame
    knows: DataFrame
    message_by_creator: DataFrame
    message_by_id: DataFrame
    message_by_reply: DataFrame
    forum: DataFrame
    forum_member: DataFrame
    likes: DataFrame
    # Indexed handles (None in the vanilla context), for appends.
    person_idx: IndexedDataFrame | None = None
    knows_idx: IndexedDataFrame | None = None
    message_by_creator_idx: IndexedDataFrame | None = None
    message_by_id_idx: IndexedDataFrame | None = None
    message_by_reply_idx: IndexedDataFrame | None = None

    def with_appended(
        self,
        persons: list[tuple] | None = None,
        knows: list[tuple] | None = None,
        messages: list[tuple] | None = None,
    ) -> "SNBContext":
        """Apply an update batch; returns the next-version context.

        Indexed contexts append in place (cache survives); the vanilla
        context must rebuild and re-cache every touched table — the
        exact asymmetry benchmark A3 measures.
        """
        if self.indexed:
            person_idx = self.person_idx
            knows_idx = self.knows_idx
            by_creator = self.message_by_creator_idx
            by_id = self.message_by_id_idx
            by_reply = self.message_by_reply_idx
            assert person_idx and knows_idx and by_creator and by_id and by_reply
            if persons:
                person_idx = person_idx.append_rows(persons)
            if knows:
                knows_idx = knows_idx.append_rows(knows)
            if messages:
                by_creator = by_creator.append_rows(messages)
                by_id = by_id.append_rows(messages)
                by_reply = by_reply.append_rows(messages)
            return SNBContext(
                session=self.session,
                indexed=True,
                person=person_idx.to_df(),
                knows=knows_idx.to_df(),
                message_by_creator=by_creator.to_df(),
                message_by_id=by_id.to_df(),
                message_by_reply=by_reply.to_df(),
                forum=self.forum,
                forum_member=self.forum_member,
                likes=self.likes,
                person_idx=person_idx,
                knows_idx=knows_idx,
                message_by_creator_idx=by_creator,
                message_by_id_idx=by_id,
                message_by_reply_idx=by_reply,
            )

        # Vanilla: append = union with new rows, then re-cache (the
        # cached columnar relation is invalidated by any update).
        session = self.session
        person_df = self.person
        knows_df = self.knows
        message_df = self.message_by_id
        if persons:
            person_df = person_df.union(
                session.create_dataframe(persons, snb_schema.PERSON_SCHEMA)
            ).cache()
        if knows:
            knows_df = knows_df.union(
                session.create_dataframe(knows, snb_schema.KNOWS_SCHEMA)
            ).cache()
        if messages:
            message_df = message_df.union(
                session.create_dataframe(messages, snb_schema.MESSAGE_SCHEMA)
            ).cache()
        return SNBContext(
            session=session,
            indexed=False,
            person=person_df,
            knows=knows_df,
            message_by_creator=message_df,
            message_by_id=message_df,
            message_by_reply=message_df,
            forum=self.forum,
            forum_member=self.forum_member,
            likes=self.likes,
        )


def _base_frames(session: Session, dataset: SNBDataset) -> dict[str, DataFrame]:
    return {
        "person": session.create_dataframe(
            dataset.persons, snb_schema.PERSON_SCHEMA, validate=False
        ),
        "knows": session.create_dataframe(
            dataset.knows, snb_schema.KNOWS_SCHEMA, validate=False
        ),
        "message": session.create_dataframe(
            dataset.messages, snb_schema.MESSAGE_SCHEMA, validate=False
        ),
        "forum": session.create_dataframe(
            dataset.forums, snb_schema.FORUM_SCHEMA, validate=False
        ),
        "forum_member": session.create_dataframe(
            dataset.forum_members, snb_schema.FORUM_MEMBER_SCHEMA, validate=False
        ),
        "likes": session.create_dataframe(
            dataset.likes, snb_schema.LIKES_SCHEMA, validate=False
        ),
    }


def load_vanilla(session: Session, dataset: SNBDataset) -> SNBContext:
    """Cached (columnar) vanilla DataFrames — the paper's baseline."""
    frames = _base_frames(session, dataset)
    person = frames["person"].cache()
    knows = frames["knows"].cache()
    message = frames["message"].cache()
    forum = frames["forum"].cache()
    forum_member = frames["forum_member"].cache()
    likes = frames["likes"].cache()
    return SNBContext(
        session=session,
        indexed=False,
        person=person,
        knows=knows,
        message_by_creator=message,
        message_by_id=message,
        message_by_reply=message,
        forum=forum,
        forum_member=forum_member,
        likes=likes,
    )


def load_indexed(session: Session, dataset: SNBDataset) -> SNBContext:
    """Indexed DataFrames per the demo's index configuration."""
    frames = _base_frames(session, dataset)
    person_idx = create_index(frames["person"], "id")
    knows_idx = create_index(frames["knows"], "person1_id")
    message_by_creator_idx = create_index(frames["message"], "creator_id")
    message_by_id_idx = create_index(frames["message"], "id")
    message_by_reply_idx = create_index(frames["message"], "reply_of_id")
    forum = frames["forum"].cache()
    forum_member = frames["forum_member"].cache()
    likes = frames["likes"].cache()
    return SNBContext(
        session=session,
        indexed=True,
        person=person_idx.to_df(),
        knows=knows_idx.to_df(),
        message_by_creator=message_by_creator_idx.to_df(),
        message_by_id=message_by_id_idx.to_df(),
        message_by_reply=message_by_reply_idx.to_df(),
        forum=forum,
        forum_member=forum_member,
        likes=likes,
        person_idx=person_idx,
        knows_idx=knows_idx,
        message_by_creator_idx=message_by_creator_idx,
        message_by_id_idx=message_by_id_idx,
        message_by_reply_idx=message_by_reply_idx,
    )
