"""Seeded SNB-style social network generator.

Stands in for the LDBC SNB Datagen (paper: *"datasets generated using
the Datagen tool provided by the SNB benchmark"*, run at SF300 on a
cluster — far beyond one process). The generator reproduces the
properties the evaluation depends on:

* **power-law friendship degrees** — a few hubs with many ``knows``
  edges, a long tail with few, so per-key row chains have skewed
  lengths (exercising the backward-pointer lists);
* **correlated timestamps** — creation dates increase over simulated
  days; messages postdate their creators;
* **disjoint id spaces** per entity, as in the real datagen;
* **determinism** — same seed, same dataset, byte for byte.

``scale_factor=1.0`` ≈ 1 000 persons, ~20 knows edges and ~10 messages
per person; sizes scale linearly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.snb.schema import (
    FORUM_ID_BASE,
    MESSAGE_ID_BASE,
)

_FIRST_NAMES = (
    "Jan", "Maria", "Chen", "Amir", "Olga", "Raj", "Sofia", "Liam",
    "Noor", "Kai", "Ana", "Ivan", "Mei", "Tariq", "Eva", "Jonas",
)
_LAST_NAMES = (
    "Smith", "Garcia", "Müller", "Tanaka", "Kowalski", "Okafor",
    "Johansson", "Rossi", "Novak", "Silva", "Petrov", "Dubois",
)
_BROWSERS = ("Firefox", "Chrome", "Safari", "Edge", "Opera")
_WORDS = (
    "graph", "query", "spark", "index", "stream", "social", "photo",
    "travel", "music", "coffee", "deadline", "demo", "update", "cache",
    "latency", "benchmark", "friend", "forum", "post", "reply",
)

#: Simulated epoch start (2018-01-01 UTC) in epoch-milliseconds.
EPOCH_START_MS = 1_514_764_800_000
_DAY_MS = 24 * 3600 * 1000


@dataclass
class SNBDataset:
    """All generated tables as lists of row tuples (schema order)."""

    scale_factor: float
    seed: int
    persons: list[tuple] = field(default_factory=list)
    knows: list[tuple] = field(default_factory=list)
    messages: list[tuple] = field(default_factory=list)
    forums: list[tuple] = field(default_factory=list)
    forum_members: list[tuple] = field(default_factory=list)
    likes: list[tuple] = field(default_factory=list)

    @property
    def num_persons(self) -> int:
        return len(self.persons)

    def person_ids(self) -> list[int]:
        return [p[0] for p in self.persons]

    def message_ids(self) -> list[int]:
        return [m[0] for m in self.messages]

    def table_sizes(self) -> dict[str, int]:
        return {
            "person": len(self.persons),
            "knows": len(self.knows),
            "message": len(self.messages),
            "forum": len(self.forums),
            "forum_member": len(self.forum_members),
            "likes": len(self.likes),
        }

    def __repr__(self) -> str:
        sizes = ", ".join(f"{k}={v}" for k, v in self.table_sizes().items())
        return f"SNBDataset(sf={self.scale_factor}, {sizes})"


def _content(rng: random.Random, min_words: int = 3, max_words: int = 12) -> str:
    n = rng.randint(min_words, max_words)
    return " ".join(rng.choice(_WORDS) for _ in range(n))


def _ip(rng: random.Random) -> str:
    return ".".join(str(rng.randint(1, 254)) for _ in range(4))


def _powerlaw_degree(rng: random.Random, mean: float, maximum: int) -> int:
    """Pareto-ish degree with the given rough mean, capped."""
    degree = int(rng.paretovariate(1.6))  # heavy tail
    scaled = max(1, int(degree * mean / 2.7))  # E[pareto(1.6)] ≈ 2.67
    return min(scaled, maximum)


def generate(
    scale_factor: float = 1.0,
    seed: int = 42,
    knows_per_person: float = 20.0,
    messages_per_person: float = 10.0,
    likes_per_message: float = 2.0,
) -> SNBDataset:
    """Generate a dataset; all knob defaults match SF semantics above."""
    if scale_factor <= 0:
        raise ValueError("scale_factor must be positive")
    rng = random.Random(seed)
    dataset = SNBDataset(scale_factor=scale_factor, seed=seed)

    num_persons = max(10, int(1000 * scale_factor))
    num_cities = max(5, num_persons // 100)
    num_forums = max(2, num_persons // 10)
    sim_days = 365

    # -- persons ---------------------------------------------------------
    for pid in range(1, num_persons + 1):
        creation = EPOCH_START_MS + rng.randint(0, sim_days * _DAY_MS)
        birthday = EPOCH_START_MS - rng.randint(18 * 365, 70 * 365) * _DAY_MS
        dataset.persons.append(
            (
                pid,
                rng.choice(_FIRST_NAMES),
                rng.choice(_LAST_NAMES),
                rng.choice(("male", "female")),
                birthday,
                creation,
                _ip(rng),
                rng.choice(_BROWSERS),
                rng.randint(1, num_cities),
            )
        )
    creation_of = {p[0]: p[5] for p in dataset.persons}

    # -- knows edges (power-law, symmetric) --------------------------------
    seen_edges: set[tuple[int, int]] = set()
    for pid in range(1, num_persons + 1):
        degree = _powerlaw_degree(rng, knows_per_person / 2, num_persons - 1)
        for _ in range(degree):
            friend = rng.randint(1, num_persons)
            if friend == pid:
                continue
            edge = (min(pid, friend), max(pid, friend))
            if edge in seen_edges:
                continue
            seen_edges.add(edge)
            since = max(creation_of[pid], creation_of[friend]) + rng.randint(
                0, 30 * _DAY_MS
            )
            dataset.knows.append((pid, friend, since))
            dataset.knows.append((friend, pid, since))

    # -- forums ------------------------------------------------------------
    for i in range(num_forums):
        forum_id = FORUM_ID_BASE + i + 1
        moderator = rng.randint(1, num_persons)
        dataset.forums.append(
            (
                forum_id,
                f"Forum about {rng.choice(_WORDS)} {i}",
                creation_of[moderator] + rng.randint(0, 10 * _DAY_MS),
                moderator,
            )
        )
        members = rng.sample(
            range(1, num_persons + 1), min(num_persons, rng.randint(5, 40))
        )
        for person in members:
            dataset.forum_members.append(
                (forum_id, person, creation_of[person] + rng.randint(0, 60 * _DAY_MS))
            )

    # -- messages (posts then comments replying to earlier messages) --------
    next_message = MESSAGE_ID_BASE + 1
    all_message_ids: list[int] = []
    for pid in range(1, num_persons + 1):
        count = rng.randint(0, int(2 * messages_per_person))
        for _ in range(count):
            message_id = next_message
            next_message += 1
            created = creation_of[pid] + rng.randint(0, 90 * _DAY_MS)
            content = _content(rng)
            is_post = not all_message_ids or rng.random() < 0.4
            if is_post:
                forum = FORUM_ID_BASE + rng.randint(1, num_forums)
                reply_of = None
            else:
                forum = None
                reply_of = rng.choice(all_message_ids)
            dataset.messages.append(
                (
                    message_id,
                    pid,
                    created,
                    content,
                    len(content),
                    is_post,
                    forum,
                    reply_of,
                    _ip(rng),
                    rng.choice(_BROWSERS),
                )
            )
            all_message_ids.append(message_id)

    # -- likes ----------------------------------------------------------------
    for message in dataset.messages:
        count = rng.randint(0, int(2 * likes_per_message))
        for _ in range(count):
            fan = rng.randint(1, num_persons)
            dataset.likes.append(
                (fan, message[0], message[2] + rng.randint(0, 7 * _DAY_MS))
            )

    return dataset
