"""The 7 SNB simple-read queries (paper Figure 3's workload).

Each query is one function over an :class:`~repro.snb.loader.SNBContext`
and returns collected rows, so vanilla and indexed runs execute the
*identical* query logic; only the tables differ. Query shapes follow
the LDBC short reads; SQ5/SQ6 are the two whose access paths are keyed
on columns the demo never indexes (joins through ``likes`` and
``forum``), reproducing the paper's "Q5 and Q6 cannot make use of the
index".

* **SQ1** — person profile by id (point lookup).
* **SQ2** — a person's 10 most recent messages.
* **SQ3** — a person's friends, most recent friendships first.
* **SQ4** — content of a message by id (point lookup).
* **SQ5** — people who liked a given message (dominated by scanning
  the un-indexed ``likes`` table in both variants).
* **SQ6** — forum, moderator, and member count of a message
  (dominated by aggregating the un-indexed ``forum_member`` table).
* **SQ7** — replies to a message with their authors.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.snb.loader import SNBContext
from repro.sql.functions import col, count
from repro.sql.types import Row


def sq1(ctx: SNBContext, person_id: int) -> list[Row]:
    """Profile of a person."""
    return (
        ctx.person.filter(col("id") == person_id)
        .select(
            "first_name",
            "last_name",
            "birthday",
            "location_ip",
            "browser_used",
            "city_id",
            "gender",
            "creation_date",
        )
        .collect()
    )


def sq2(ctx: SNBContext, person_id: int, limit: int = 10) -> list[Row]:
    """A person's most recent messages."""
    messages = ctx.message_by_creator
    return (
        messages.filter(col("creator_id") == person_id)
        .select("id", "content", "creation_date")
        .order_by(col("creation_date").desc(), col("id").desc())
        .limit(limit)
        .collect()
    )


def sq3(ctx: SNBContext, person_id: int) -> list[Row]:
    """Friends of a person with friendship dates, most recent first."""
    knows = ctx.knows
    person = ctx.person
    friend_edges = knows.filter(col("person1_id") == person_id)
    return (
        person.join(
            friend_edges, on=person.col("id") == friend_edges.col("person2_id")
        )
        .select(
            person.col("id").alias("friend_id"),
            col("first_name"),
            col("last_name"),
            friend_edges.col("creation_date").alias("friendship_date"),
        )
        .order_by(col("friendship_date").desc(), col("friend_id").asc())
        .collect()
    )


def sq4(ctx: SNBContext, message_id: int) -> list[Row]:
    """Creation date and content of a message."""
    return (
        ctx.message_by_id.filter(col("id") == message_id)
        .select("creation_date", "content")
        .collect()
    )


def sq5(ctx: SNBContext, message_id: int) -> list[Row]:
    """People who liked a given message.

    Dominated by scanning the never-indexed ``likes`` table in *both*
    variants — whatever indexes exist cannot shorten the critical path
    (the paper's "Q5 cannot make use of the index").
    """
    likes = ctx.likes
    person = ctx.person
    fans = likes.filter(col("message_id") == message_id)
    return (
        person.join(fans, on=person.col("id") == fans.col("person_id"))
        .select(
            person.col("id").alias("fan_id"),
            col("first_name"),
            col("last_name"),
            fans.col("creation_date").alias("like_date"),
        )
        .order_by(col("like_date").desc(), col("fan_id").asc())
        .collect()
    )


def sq6(ctx: SNBContext, message_id: int) -> list[Row]:
    """Forum of a message, its moderator, and its member count.

    The member count aggregates the never-indexed ``forum_member``
    table — the dominant cost in both variants, so the index buys
    nothing end-to-end (the paper's "Q6 cannot make use of the index").
    """
    forum = ctx.forum
    person = ctx.person
    members = ctx.forum_member
    post = ctx.message_by_id.filter(
        (col("id") == message_id) & col("forum_id").is_not_null()
    )
    member_counts = members.group_by("forum_id").agg(count().alias("num_members"))
    with_forum = forum.join(post, on=forum.col("id") == post.col("forum_id")).select(
        forum.col("id").alias("fid"),
        col("title"),
        col("moderator_id"),
    )
    with_counts = with_forum.join(
        member_counts, on=with_forum.col("fid") == member_counts.col("forum_id")
    )
    return (
        with_counts.join(
            person, on=with_counts.col("moderator_id") == person.col("id")
        )
        .select("fid", "title", "num_members", "first_name", "last_name")
        .collect()
    )


def sq7(ctx: SNBContext, message_id: int) -> list[Row]:
    """Replies to a message with their authors, newest first."""
    replies = ctx.message_by_reply.filter(col("reply_of_id") == message_id)
    person = ctx.person
    return (
        person.join(
            replies, on=person.col("id") == replies.col("creator_id")
        )
        .select(
            replies.col("id").alias("reply_id"),
            replies.col("content"),
            replies.col("creation_date").alias("reply_date"),
            person.col("id").alias("author_id"),
            col("first_name"),
            col("last_name"),
        )
        .order_by(col("reply_date").desc(), col("reply_id").asc())
        .collect()
    )


#: name → (function, parameter kind) for harness iteration.
ALL_QUERIES: dict[str, tuple[Callable[..., list[Row]], str]] = {
    "SQ1": (sq1, "person"),
    "SQ2": (sq2, "person"),
    "SQ3": (sq3, "person"),
    "SQ4": (sq4, "message"),
    "SQ5": (sq5, "message"),
    "SQ6": (sq6, "message"),
    "SQ7": (sq7, "message"),
}


def run_query(ctx: SNBContext, name: str, parameter: Any) -> list[Row]:
    """Dispatch one short read by name."""
    fn, _kind = ALL_QUERIES[name]
    return fn(ctx, parameter)
