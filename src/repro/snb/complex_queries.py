"""Complex (multi-hop) SNB-style reads — an extension experiment.

The demo paper evaluates only the 7 *short* reads; the LDBC interactive
workload it cites also contains multi-hop "complex reads". Three
representative shapes are implemented here over the same
:class:`~repro.snb.loader.SNBContext`, so the indexed-vs-vanilla
comparison extends to deeper navigation:

* **CQ1 friends-of-friends** — two hops over ``knows``, then profile
  join; exercises chained indexed joins;
* **CQ2 friends' recent messages** — 1 hop + message navigation with
  Top-K ordering (LDBC IC2's shape);
* **CQ3 top likers of a person's content** — 1 hop + 2 joins through
  the un-indexed ``likes`` table (partially index-resistant, like
  SQ5/SQ6).
"""

from __future__ import annotations

from repro.snb.loader import SNBContext
from repro.sql.functions import col, count
from repro.sql.types import Row


def cq1_friends_of_friends(ctx: SNBContext, person_id: int, limit: int = 20) -> list[Row]:
    """Distinct friends-of-friends (excluding self and direct friends),
    with names, ordered by id."""
    knows = ctx.knows
    person = ctx.person

    friends = knows.filter(col("person1_id") == person_id).select(
        knows.col("person2_id").alias("friend_id")
    )
    second_hop = ctx.knows
    fof = (
        second_hop.join(
            friends, on=second_hop.col("person1_id") == friends.col("friend_id")
        )
        .select(second_hop.col("person2_id").alias("fof_id"))
        .distinct()
    )
    direct = set(r["friend_id"] for r in friends.collect())
    direct.add(person_id)
    candidates = fof.filter(~col("fof_id").isin(list(direct)))
    return (
        person.join(candidates, on=person.col("id") == candidates.col("fof_id"))
        .select(person.col("id"), col("first_name"), col("last_name"))
        .order_by(col("id").asc())
        .limit(limit)
        .collect()
    )


def cq2_friends_recent_messages(
    ctx: SNBContext, person_id: int, limit: int = 20
) -> list[Row]:
    """Most recent messages written by direct friends (LDBC IC2 shape)."""
    knows = ctx.knows
    messages = ctx.message_by_creator
    person = ctx.person

    friends = knows.filter(col("person1_id") == person_id).select(
        knows.col("person2_id").alias("friend_id")
    )
    authored = messages.join(
        friends, on=messages.col("creator_id") == friends.col("friend_id")
    )
    with_names = person.join(
        authored, on=person.col("id") == authored.col("creator_id")
    )
    return (
        with_names.select(
            authored.col("id").alias("message_id"),
            col("content"),
            authored.col("creation_date").alias("sent_at"),
            person.col("id").alias("author_id"),
            col("first_name"),
            col("last_name"),
        )
        .order_by(col("sent_at").desc(), col("message_id").asc())
        .limit(limit)
        .collect()
    )


def cq3_top_likers(ctx: SNBContext, person_id: int, limit: int = 10) -> list[Row]:
    """People who like this person's content the most (via un-indexed
    ``likes``), with like counts."""
    messages = ctx.message_by_creator
    likes = ctx.likes
    person = ctx.person

    mine = messages.filter(col("creator_id") == person_id).select(
        messages.col("id").alias("mid")
    )
    liked = likes.join(mine, on=likes.col("message_id") == mine.col("mid"))
    counts = (
        liked.group_by("person_id")
        .agg(count().alias("num_likes"))
        .with_column_renamed("person_id", "fan_id")
    )
    return (
        person.join(counts, on=person.col("id") == counts.col("fan_id"))
        .select("fan_id", "first_name", "last_name", "num_likes")
        .order_by(col("num_likes").desc(), col("fan_id").asc())
        .limit(limit)
        .collect()
    )


COMPLEX_QUERIES = {
    "CQ1": (cq1_friends_of_friends, "person"),
    "CQ2": (cq2_friends_recent_messages, "person"),
    "CQ3": (cq3_top_likers, "person"),
}
