"""Property graph: vertex and edge RDDs with graph operators.

Mirrors GraphX's data model: a vertex RDD of ``(vid, attr)`` pairs and
an edge RDD of ``(src, dst, attr)`` triples. Graphs are immutable;
operators return new graphs. Construction from DataFrames means an
*Indexed* DataFrame version can serve as a consistent graph snapshot
while the underlying social network keeps growing — the combination
the paper's demo dashboard visualizes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.errors import EngineError


class Graph:
    """An immutable property graph."""

    def __init__(self, ctx: EngineContext, vertices: RDD, edges: RDD):
        self.ctx = ctx
        self.vertices = vertices
        self.edges = edges

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edge_list(
        cls,
        ctx: EngineContext,
        edges: Iterable[tuple],
        default_vertex_attr: Any = None,
        num_partitions: int | None = None,
    ) -> "Graph":
        """Build from ``(src, dst)`` or ``(src, dst, attr)`` tuples;
        vertices are inferred from edge endpoints."""
        normalized = []
        for edge in edges:
            if len(edge) == 2:
                normalized.append((edge[0], edge[1], None))
            elif len(edge) == 3:
                normalized.append(tuple(edge))
            else:
                raise EngineError(f"edge must be (src, dst[, attr]): {edge!r}")
        n = num_partitions or ctx.config.default_parallelism
        edge_rdd = ctx.parallelize(normalized, n)
        vertex_ids = sorted(
            {e[0] for e in normalized} | {e[1] for e in normalized}
        )
        vertex_rdd = ctx.parallelize(
            [(vid, default_vertex_attr) for vid in vertex_ids], n
        )
        return cls(ctx, vertex_rdd, edge_rdd)

    @classmethod
    def from_dataframes(
        cls,
        vertices_df: "Any",
        edges_df: "Any",
        vertex_id: str = "id",
        src: str = "src",
        dst: str = "dst",
    ) -> "Graph":
        """Build from DataFrames (vanilla or indexed views).

        Vertex attributes become tuples of the remaining columns.
        """
        ctx = vertices_df.session.ctx
        vid_ordinal = vertices_df.schema.field_index(vertex_id)
        src_ordinal = edges_df.schema.field_index(src)
        dst_ordinal = edges_df.schema.field_index(dst)

        vertex_rdd = vertices_df._execute().map(
            lambda row: (
                row[vid_ordinal],
                tuple(v for i, v in enumerate(row) if i != vid_ordinal),
            )
        )
        edge_rdd = edges_df._execute().map(
            lambda row: (
                row[src_ordinal],
                row[dst_ordinal],
                tuple(
                    v
                    for i, v in enumerate(row)
                    if i not in (src_ordinal, dst_ordinal)
                ),
            )
        )
        return cls(ctx, vertex_rdd, edge_rdd)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    def num_vertices(self) -> int:
        return self.vertices.count()

    def num_edges(self) -> int:
        return self.edges.count()

    def cache(self) -> "Graph":
        self.vertices.cache()
        self.edges.cache()
        return self

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------

    def out_degrees(self) -> RDD:
        """``(vid, out_degree)`` for every vertex (0 included)."""
        counted = self.edges.map(lambda e: (e[0], 1)).reduce_by_key(
            lambda a, b: a + b
        )
        return self._with_default(counted, 0)

    def in_degrees(self) -> RDD:
        counted = self.edges.map(lambda e: (e[1], 1)).reduce_by_key(
            lambda a, b: a + b
        )
        return self._with_default(counted, 0)

    def degrees(self) -> RDD:
        """Total degree (in + out)."""
        counted = self.edges.flat_map(lambda e: [(e[0], 1), (e[1], 1)]).reduce_by_key(
            lambda a, b: a + b
        )
        return self._with_default(counted, 0)

    def _with_default(self, counted: RDD, default: Any) -> RDD:
        paired = self.vertices.map(lambda v: (v[0], None)).cogroup(counted)

        def fill(kv: tuple) -> tuple:
            vid, (_present, counts) = kv
            return (vid, counts[0] if counts else default)

        return paired.map(fill)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def map_vertices(self, fn: Callable[[Any, Any], Any]) -> "Graph":
        return Graph(
            self.ctx,
            self.vertices.map(lambda v: (v[0], fn(v[0], v[1]))),
            self.edges,
        )

    def reverse(self) -> "Graph":
        return Graph(
            self.ctx,
            self.vertices,
            self.edges.map(lambda e: (e[1], e[0], e[2])),
        )

    def subgraph(
        self,
        vertex_pred: Callable[[Any, Any], bool] | None = None,
        edge_pred: Callable[[Any, Any, Any], bool] | None = None,
    ) -> "Graph":
        """Keep vertices/edges passing the predicates; edges to removed
        vertices are dropped too (GraphX semantics)."""
        vertices = self.vertices
        if vertex_pred is not None:
            vertices = vertices.filter(lambda v: vertex_pred(v[0], v[1]))
        kept_ids = set(vertices.map(lambda v: v[0]).collect())
        edges = self.edges.filter(
            lambda e: e[0] in kept_ids and e[1] in kept_ids
        )
        if edge_pred is not None:
            edges = edges.filter(lambda e: edge_pred(e[0], e[1], e[2]))
        return Graph(self.ctx, vertices, edges)

    def __repr__(self) -> str:
        return f"Graph({self.num_vertices()} vertices, {self.num_edges()} edges)"
