"""Graph analytics over the engine (the paper's motivating workload).

The paper positions the Indexed DataFrame for *"queries on updatable
graphs"* and *"real-time social network monitoring"* [5]. This package
provides the GraphX-style substrate those workloads assume:

* :class:`~repro.graph.graph.Graph` — property graph over vertex/edge
  RDDs (buildable straight from DataFrames, including indexed ones);
* :func:`~repro.graph.pregel.pregel` — bulk-synchronous vertex programs;
* :mod:`repro.graph.algorithms` — PageRank, connected components,
  triangle counting, and BFS shortest paths, all expressed on the
  engine's RDD operators.
"""

from repro.graph.algorithms import (
    connected_components,
    pagerank,
    shortest_paths,
    triangle_count,
)
from repro.graph.graph import Graph
from repro.graph.pregel import pregel

__all__ = [
    "Graph",
    "pregel",
    "pagerank",
    "connected_components",
    "triangle_count",
    "shortest_paths",
]
