"""Pregel: bulk-synchronous vertex programs over the engine.

The GraphX/Pregel execution model: per superstep,

1. every vertex with an incoming message runs ``vprog`` to update its
   attribute;
2. ``send_msg`` runs on every edge whose source was just updated,
   emitting messages to destinations;
3. messages to the same vertex combine with ``merge_msg``;
4. iteration stops when no messages flow or ``max_iterations`` is hit.

Each superstep is a join + shuffle on the engine — exactly how GraphX
compiles to Spark stages.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.graph.graph import Graph


def pregel(
    graph: Graph,
    initial_msg: Any,
    vprog: Callable[[Any, Any, Any], Any],
    send_msg: Callable[[Any, Any, Any, Any, Any], list[tuple[Any, Any]]],
    merge_msg: Callable[[Any, Any], Any],
    max_iterations: int = 20,
) -> Graph:
    """Run a vertex program to quiescence.

    ``vprog(vid, attr, msg) -> new_attr`` updates a vertex;
    ``send_msg(src, src_attr, dst, dst_attr, edge_attr) ->
    [(target_vid, msg), ...]`` emits messages along an edge (may target
    either endpoint); ``merge_msg`` combines concurrent messages.
    """
    ctx = graph.ctx
    # (vid, (attr, changed_last_round))
    state = graph.vertices.map(lambda v: (v[0], (vprog(v[0], v[1], initial_msg), True)))
    edges = graph.edges.cache()

    for _ in range(max_iterations):
        state = state.cache()
        # Attach endpoint attributes to each edge (two joins).
        by_src = edges.map(lambda e: (e[0], (e[1], e[2])))
        with_src = by_src.join_pairs(state)
        # → (src, ((dst, eattr), (src_attr, src_changed)))
        by_dst = with_src.map(
            lambda kv: (
                kv[1][0][0],
                (kv[0], kv[1][1][0], kv[1][1][1], kv[1][0][1]),
            )
        )
        # → (dst, (src, src_attr, src_changed, eattr))
        with_both = by_dst.join_pairs(state)

        def emit(kv: tuple) -> list[tuple[Any, Any]]:
            dst, ((src, src_attr, src_changed, eattr), (dst_attr, dst_changed)) = kv
            if not (src_changed or dst_changed):
                return []
            return send_msg(src, src_attr, dst, dst_attr, eattr)

        messages = with_both.flat_map(emit).reduce_by_key(merge_msg)
        if messages.count() == 0:
            break

        grouped = state.cogroup(messages)

        def step(kv: tuple) -> tuple:
            vid, (attrs, msgs) = kv
            attr = attrs[0][0] if attrs else None
            if msgs:
                return (vid, (vprog(vid, attr, msgs[0]), True))
            return (vid, (attr, False))

        state = grouped.map(step)

    final_vertices = state.map(lambda kv: (kv[0], kv[1][0]))
    return Graph(ctx, final_vertices, graph.edges)
