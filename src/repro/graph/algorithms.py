"""Graph algorithms: PageRank, components, triangles, shortest paths.

Each algorithm is expressed on the engine's RDD operators (joins and
shuffles per iteration), so they exercise the same machinery SNB graph
queries do. Results are cross-checked against ``networkx`` in the test
suite.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.graph.graph import Graph
from repro.graph.pregel import pregel


def pagerank(
    graph: Graph,
    iterations: int = 20,
    damping: float = 0.85,
) -> dict[Hashable, float]:
    """Iterative PageRank with uniform teleport and dangling-mass
    redistribution; returns ``{vid: rank}`` summing to ~1."""
    n = graph.num_vertices()
    if n == 0:
        return {}
    vertex_ids = graph.vertices.map(lambda v: v[0])
    # (src, [dst, ...]) with an entry for EVERY vertex (possibly empty).
    raw_links = graph.edges.map(lambda e: (e[0], e[1])).group_by_key()
    links = (
        vertex_ids.map(lambda vid: (vid, None))
        .cogroup(raw_links)
        .map(lambda kv: (kv[0], kv[1][1][0] if kv[1][1] else []))
        .cache()
    )
    ranks = vertex_ids.map(lambda vid: (vid, 1.0 / n))

    for _ in range(iterations):
        joined = links.join_pairs(ranks)

        def contributions(kv: tuple) -> list[tuple[Any, float]]:
            _src, (dsts, rank) = kv
            if not dsts:
                return []
            share = rank / len(dsts)
            return [(dst, share) for dst in dsts]

        contribs = joined.flat_map(contributions).reduce_by_key(
            lambda a, b: a + b
        )
        # Dangling vertices' rank is redistributed uniformly.
        dangling = sum(
            rank
            for _vid, (dsts, rank) in joined.collect()
            if not dsts
        )
        base = (1.0 - damping) / n + damping * dangling / n
        ranks = (
            vertex_ids.map(lambda vid: (vid, None))
            .cogroup(contribs)
            .map(
                lambda kv: (
                    kv[0],
                    base + damping * (kv[1][1][0] if kv[1][1] else 0.0),
                )
            )
        )
    return dict(ranks.collect())


def connected_components(graph: Graph) -> dict[Hashable, Hashable]:
    """Weakly connected components via min-label propagation; returns
    ``{vid: component_id}`` where the id is the smallest vid in the
    component."""
    labeled = graph.map_vertices(lambda vid, _attr: vid)

    def vprog(vid: Any, attr: Any, msg: Any) -> Any:
        if msg is None:
            return attr
        return min(attr, msg)

    def send(src: Any, src_attr: Any, dst: Any, dst_attr: Any, _eattr: Any):
        out = []
        if src_attr < dst_attr:
            out.append((dst, src_attr))
        elif dst_attr < src_attr:
            out.append((src, dst_attr))
        return out

    result = pregel(
        labeled,
        initial_msg=None,
        vprog=vprog,
        send_msg=send,
        merge_msg=min,
        max_iterations=max(8, graph.num_vertices()),
    )
    return dict(result.vertices.collect())


def triangle_count(graph: Graph) -> int:
    """Number of triangles, treating edges as undirected and simple."""
    undirected = (
        graph.edges.flat_map(
            lambda e: [] if e[0] == e[1] else [
                (min(e[0], e[1]), max(e[0], e[1]))
            ]
        )
        .distinct()
        .collect()
    )
    adjacency: dict[Any, set] = {}
    for a, b in undirected:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    shared = graph.ctx.broadcast(adjacency)
    edge_rdd = graph.ctx.parallelize(
        undirected, graph.ctx.config.default_parallelism
    )

    def closing(edge: tuple) -> int:
        table = shared.value
        a, b = edge
        return len(table.get(a, set()) & table.get(b, set()))

    total = edge_rdd.map(closing).sum()
    return total // 3  # each triangle counted once per edge


def shortest_paths(
    graph: Graph, source: Hashable, max_iterations: int = 30
) -> dict[Hashable, int]:
    """Unweighted BFS hop counts from ``source`` (directed edges);
    unreachable vertices are absent from the result."""
    INF = float("inf")
    initialized = graph.map_vertices(
        lambda vid, _attr: 0 if vid == source else INF
    )

    def vprog(_vid: Any, attr: Any, msg: Any) -> Any:
        if msg is None:
            return attr
        return min(attr, msg)

    def send(src: Any, src_attr: Any, dst: Any, dst_attr: Any, _eattr: Any):
        if src_attr + 1 < dst_attr:
            return [(dst, src_attr + 1)]
        return []

    result = pregel(
        initialized,
        initial_msg=None,
        vprog=vprog,
        send_msg=send,
        merge_msg=min,
        max_iterations=max_iterations,
    )
    return {
        vid: int(dist)
        for vid, dist in result.vertices.collect()
        if dist != INF
    }
