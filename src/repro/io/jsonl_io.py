"""JSON-lines reader/writer: exact round-trips for DataFrames.

One JSON object per line, keyed by column name. NULL, empty strings,
and unicode all survive unchanged; binary columns are base64-encoded.
"""

from __future__ import annotations

import base64
import json
from typing import TYPE_CHECKING, Any

from repro.errors import SchemaError
from repro.sql.types import BinaryType, StructType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.dataframe import DataFrame
    from repro.sql.session import Session


def write_jsonl(df: "DataFrame", path: str) -> int:
    """Write a DataFrame as JSON lines; returns the row count."""
    names = df.columns
    binary_columns = {
        i for i, f in enumerate(df.schema) if isinstance(f.dtype, BinaryType)
    }
    count = 0
    with open(path, "w") as fh:
        for row in df.collect_tuples():
            record = {}
            for i, (name, value) in enumerate(zip(names, row)):
                if i in binary_columns and value is not None:
                    value = base64.b64encode(value).decode("ascii")
                record[name] = value
            fh.write(json.dumps(record, ensure_ascii=False) + "\n")
            count += 1
    return count


def read_jsonl(
    session: "Session",
    path: str,
    schema: StructType | list[tuple[str, Any]],
    num_partitions: int | None = None,
) -> "DataFrame":
    """Read JSON lines into a DataFrame with the given schema.

    Missing keys become NULL; extra keys are ignored.
    """
    if not isinstance(schema, StructType):
        schema = StructType.from_pairs(schema)
    binary_fields = {
        f.name for f in schema if isinstance(f.dtype, BinaryType)
    }
    rows: list[tuple] = []
    with open(path) as fh:
        for line_number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{line_number}: invalid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise SchemaError(
                    f"{path}:{line_number}: expected an object, got {type(record).__name__}"
                )
            values = []
            for field in schema:
                value = record.get(field.name)
                if field.name in binary_fields and value is not None:
                    value = base64.b64decode(value)
                values.append(value)
            rows.append(tuple(values))
    return session.create_dataframe(
        rows, schema, num_partitions=num_partitions, validate=False
    )
