"""DataFrame I/O: CSV and JSON-lines readers/writers.

The paper's demo keeps its base SNB data *"stored on Amazon S3"* and
loads it into Spark; this package is the local-filesystem equivalent:

* :mod:`repro.io.csv_io` — schema-driven CSV (header row, RFC-4180
  quoting; empty unquoted fields read back as NULL);
* :mod:`repro.io.jsonl_io` — JSON lines (exact round-trip including
  the NULL / empty-string distinction);
* :mod:`repro.io.snb_io` — save/load a whole
  :class:`~repro.snb.datagen.SNBDataset` as a directory of CSVs.
"""

from repro.io.csv_io import read_csv, write_csv
from repro.io.jsonl_io import read_jsonl, write_jsonl
from repro.io.snb_io import load_dataset, save_dataset

__all__ = [
    "read_csv",
    "write_csv",
    "read_jsonl",
    "write_jsonl",
    "save_dataset",
    "load_dataset",
]
