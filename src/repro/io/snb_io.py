"""Persist / reload generated SNB datasets as directories of CSVs.

Mirrors the layout of the real SNB Datagen output (one file per
table), so generating once and reloading across benchmark runs is
cheap and deterministic.
"""

from __future__ import annotations

import csv
import json
import os

from repro.errors import SchemaError
from repro.snb import schema as snb_schema
from repro.snb.datagen import SNBDataset
from repro.sql.types import StructType

_TABLES: dict[str, StructType] = {
    "person": snb_schema.PERSON_SCHEMA,
    "knows": snb_schema.KNOWS_SCHEMA,
    "message": snb_schema.MESSAGE_SCHEMA,
    "forum": snb_schema.FORUM_SCHEMA,
    "forum_member": snb_schema.FORUM_MEMBER_SCHEMA,
    "likes": snb_schema.LIKES_SCHEMA,
}

_ATTRS = {
    "person": "persons",
    "knows": "knows",
    "message": "messages",
    "forum": "forums",
    "forum_member": "forum_members",
    "likes": "likes",
}


def save_dataset(dataset: SNBDataset, directory: str) -> None:
    """Write every table plus a manifest into ``directory``."""
    os.makedirs(directory, exist_ok=True)
    for table, schema in _TABLES.items():
        path = os.path.join(directory, f"{table}.csv")
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(schema.names)
            for row in getattr(dataset, _ATTRS[table]):
                writer.writerow(["" if v is None else v for v in row])
    manifest = {
        "scale_factor": dataset.scale_factor,
        "seed": dataset.seed,
        "sizes": dataset.table_sizes(),
    }
    with open(os.path.join(directory, "manifest.json"), "w") as fh:
        json.dump(manifest, fh, indent=2)


def load_dataset(directory: str) -> SNBDataset:
    """Reload a dataset saved by :func:`save_dataset`."""
    manifest_path = os.path.join(directory, "manifest.json")
    if not os.path.exists(manifest_path):
        raise SchemaError(f"{directory}: no manifest.json — not a saved dataset")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    dataset = SNBDataset(
        scale_factor=manifest["scale_factor"], seed=manifest["seed"]
    )
    for table, schema in _TABLES.items():
        path = os.path.join(directory, f"{table}.csv")
        rows: list[tuple] = []
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            if header != schema.names:
                raise SchemaError(
                    f"{path}: header {header} does not match schema {schema.names}"
                )
            for record in reader:
                values = []
                for raw, field in zip(record, schema):
                    if raw == "":
                        values.append(None)
                    elif field.dtype.name == "boolean":
                        values.append(raw == "True")
                    elif field.dtype.struct_code in ("q", "i"):
                        values.append(int(raw))
                    elif field.dtype.name == "double":
                        values.append(float(raw))
                    else:
                        values.append(raw)
                rows.append(tuple(values))
        setattr(dataset, _ATTRS[table], rows)
    expected = manifest["sizes"]
    actual = dataset.table_sizes()
    if expected != actual:
        raise SchemaError(
            f"{directory}: manifest sizes {expected} do not match files {actual}"
        )
    return dataset
