"""CSV reader/writer for DataFrames.

Format: one header row with column names, RFC-4180 quoting via the
stdlib ``csv`` module. NULL is written as an empty field; because CSV
cannot distinguish an empty *quoted* string from an empty field after
parsing, empty strings read back as NULL (documented limitation — use
JSONL for exact round-trips).
"""

from __future__ import annotations

import csv
from typing import TYPE_CHECKING, Any

from repro.errors import SchemaError
from repro.sql.types import (
    BooleanType,
    DataType,
    DoubleType,
    StructType,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.dataframe import DataFrame
    from repro.sql.session import Session


def write_csv(df: "DataFrame", path: str) -> int:
    """Write a DataFrame to one CSV file; returns the row count."""
    names = df.columns
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(names)
        for row in df.collect_tuples():
            writer.writerow(["" if v is None else v for v in row])
            count += 1
    return count


def _parse(value: str, dtype: DataType) -> Any:
    if value == "":
        return None
    if isinstance(dtype, BooleanType):
        lowered = value.lower()
        if lowered in ("true", "1"):
            return True
        if lowered in ("false", "0"):
            return False
        raise SchemaError(f"cannot parse boolean from {value!r}")
    if isinstance(dtype, DoubleType):
        return float(value)
    if dtype.struct_code in ("q", "i"):
        return int(value)
    return value  # strings


def read_csv(
    session: "Session",
    path: str,
    schema: StructType | list[tuple[str, Any]],
    num_partitions: int | None = None,
) -> "DataFrame":
    """Read a CSV written by :func:`write_csv` (or compatible).

    The header must contain every schema column (extra file columns
    are ignored); values parse according to the schema types.
    """
    if not isinstance(schema, StructType):
        schema = StructType.from_pairs(schema)
    rows: list[tuple] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty file, expected a header row") from None
        try:
            positions = [header.index(f.name) for f in schema]
        except ValueError as exc:
            raise SchemaError(
                f"{path}: header {header} is missing schema column ({exc})"
            ) from None
        for line_number, record in enumerate(reader, start=2):
            try:
                rows.append(
                    tuple(
                        _parse(record[pos], field.dtype)
                        for pos, field in zip(positions, schema)
                    )
                )
            except (IndexError, ValueError) as exc:
                raise SchemaError(f"{path}:{line_number}: {exc}") from exc
    return session.create_dataframe(
        rows, schema, num_partitions=num_partitions, validate=False
    )
