"""IndexedDataFrame: the public API of the paper (Listing 1).

Scala (paper)                         →  Python (this library)
------------------------------------------------------------------
``regularDF.createIndex(colNo)``      →  ``create_index(df, col)`` or
                                         ``df.create_index(col)`` once
                                         :func:`~repro.core.rules.enable_indexing`
                                         has patched DataFrame (the
                                         implicit-conversion analogue)
``indexedDF.cache()``                 →  ``indexed.cache()`` (a no-op:
                                         indexed storage is resident by
                                         construction; kept for parity)
``indexedDF.getRows(key)``            →  ``indexed.get_rows(key)``
``indexedDF.appendRows(df)``          →  ``indexed.append_rows(df)``
``indexedDF.join(df, cond)``          →  ``indexed.join(df, on=cond)``

Every handle is bound to one MVCC version; ``append_rows`` returns a
*new* handle at the next version while this handle keeps reading its
snapshot — queries racing with appends see stable data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.core.mvcc import Version, VersionedStore
from repro.core.partition import IndexedPartition
from repro.core.pointers import PointerLayout
from repro.core.relation import IndexedRelation
from repro.engine.partitioner import HashPartitioner, bucket_keys
from repro.errors import IndexError_, SchemaError
from repro.sql.column import Column
from repro.sql.dataframe import DataFrame
from repro.sql.expressions import EqualTo, Literal
from repro.sql.logical import Filter
from repro.sql.types import Row, StructType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.session import Session


def create_index(
    df: DataFrame,
    column: str | int,
    num_partitions: int | None = None,
    durable_name: str | None = None,
    kind: str = "ctrie",
) -> "IndexedDataFrame":
    """Build an Indexed DataFrame from a regular DataFrame.

    The rows are hash-partitioned on the indexed column (shuffled
    through the engine, as in the paper's *Index Creation*) and loaded
    into per-partition cTrie + row-batch storage.

    ``kind`` selects the index family: ``"ctrie"`` (the paper's
    point-lookup hash index, always present as the primary) or
    ``"bitmap"``, which additionally attaches a CUBIT-style updatable
    bitmap index on ``column`` — equivalent to
    ``create_index(df, column).create_index(column, kind="bitmap")``.

    ``durable_name`` (with ``Config.durability_enabled``) binds the
    index to a named on-disk store: if the store already exists, the
    previous run's state is **recovered** — checkpoint plus WAL replay
    — and returned *instead of* loading ``df`` (the durable state is
    the source of truth; delete the store directory to rebuild from
    scratch). Otherwise the store is created and the WAL attached
    before the initial load, so even the first rows survive a crash.
    """
    if kind not in ("ctrie", "bitmap"):
        raise IndexError_(f"unknown index kind {kind!r} (ctrie or bitmap)")
    session = df.session
    schema = df.schema
    durability = session.durability if durable_name is not None else None
    if durable_name is not None and durability is None:
        raise IndexError_(
            "durable_name requires Config.durability_enabled "
            "(or REPRO_DURABILITY=1)"
        )
    if durability is not None:
        recovered = durability.recover(durable_name)
        if recovered is not None:
            if kind == "bitmap":
                # Checkpoint restore already revives attached bitmap
                # state; attaching is idempotent and backfills only if
                # the recovered store predates the bitmap index.
                return recovered.create_index(column, kind="bitmap")
            return recovered
    if isinstance(column, int):
        if not 0 <= column < len(schema):
            raise IndexError_(f"column ordinal {column} out of range")
        key_ordinal = column
    else:
        key_ordinal = schema.field_index(column)

    n = num_partitions or session.config.shuffle_partitions
    layout = PointerLayout.for_geometry(
        session.config.batch_size_bytes, session.config.max_row_bytes
    )
    partitions = [
        IndexedPartition(
            schema,
            key_ordinal,
            layout,
            session.config.batch_size_bytes,
            session.config.max_row_bytes,
            zone_maps=session.config.zone_maps_enabled,
            sanitizers=session.config.sanitizers_enabled,
        )
        for _ in range(n)
    ]
    store = VersionedStore(partitions)
    indexed = IndexedDataFrame(session, schema, key_ordinal, store, store.capture())
    if durability is not None:
        # Bind before the load: the initial rows go through the WAL too.
        durability.make_durable(indexed, durable_name)
    if kind == "bitmap":
        # Attach before the load so the bitmaps fill on the append path
        # instead of a backfill scan.
        indexed = indexed.create_index(column, kind="bitmap")
    return indexed.append_rows(df)


class IndexedDataFrame:
    """A cached, updatable, indexed DataFrame (one MVCC version)."""

    def __init__(
        self,
        session: "Session",
        schema: StructType,
        key_ordinal: int,
        store: VersionedStore,
        version: Version,
    ):
        self.session = session
        self.schema = schema
        self.key_ordinal = key_ordinal
        self.store = store
        self.version = version
        self._df: DataFrame | None = None

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------

    @property
    def key_column(self) -> str:
        return self.schema[self.key_ordinal].name

    @property
    def num_partitions(self) -> int:
        return self.store.num_partitions

    @property
    def version_id(self) -> int:
        return self.version.version_id

    def count(self) -> int:
        """Rows visible at this version (O(partitions))."""
        return self.version.row_count()

    @property
    def columns(self) -> list[str]:
        return self.schema.names

    def memory_stats(self) -> dict[str, int]:
        """Aggregate storage accounting across partitions."""
        return self.store.memory_stats()

    # ------------------------------------------------------------------
    # Paper API
    # ------------------------------------------------------------------

    def cache(self) -> "IndexedDataFrame":
        """Paper-API parity: indexed storage already lives in (executor)
        memory, so caching is inherent; returns self."""
        return self

    def create_index(
        self, column: str | int, kind: str = "bitmap"
    ) -> "IndexedDataFrame":
        """Attach a secondary index on ``column``; returns the handle at
        the next version (whose snapshots carry the index views).

        Only ``kind="bitmap"`` adds anything today — the cTrie primary
        always exists on the key column. The bitmap arrangement is
        acquired through the process-wide sharing registry: the first
        caller for this (store, column) pays the build/backfill, every
        later caller — any session, any concurrent query — shares the
        maintained arrangement by reference (Shared Arrangements,
        arxiv 1812.02639).
        """
        from repro.index.registry import bitmap_registry

        if kind == "ctrie":
            ordinal = (
                column
                if isinstance(column, int)
                else self.schema.field_index(column)
            )
            if ordinal != self.key_ordinal:
                raise IndexError_(
                    "the cTrie primary index is fixed to the key column "
                    f"{self.key_column!r}; use kind='bitmap' for secondary "
                    "columns"
                )
            return self
        if kind != "bitmap":
            raise IndexError_(f"unknown index kind {kind!r} (ctrie or bitmap)")
        if isinstance(column, int):
            if not 0 <= column < len(self.schema):
                raise IndexError_(f"column ordinal {column} out of range")
            ordinal = column
        else:
            ordinal = self.schema.field_index(column)
        store = self.store
        bitmap_registry().acquire(
            store,
            ordinal,
            lambda: [
                partition.attach_bitmap_index(ordinal)
                for partition in store.partitions
            ],
        )
        return IndexedDataFrame(
            self.session, self.schema, self.key_ordinal, store, store.capture()
        )

    def get_rows(self, key: Any) -> DataFrame:
        """All rows whose indexed column equals ``key``, as a DataFrame.

        Planned through the optimizer: with indexing enabled this
        becomes an :class:`~repro.core.physical.IndexLookupExec`;
        without it, the plan falls back to scan + filter and still
        returns the same rows.
        """
        relation = IndexedRelation(self, self.version)
        condition = EqualTo(relation.key_attribute, Literal(key))
        return DataFrame(self.session, Filter(condition, relation))

    def get_rows_local(self, key: Any) -> list[tuple]:
        """Direct sub-millisecond lookup bypassing the planner.

        The raw cTrie + backward-chain walk; what a latency-critical
        dashboard calls in a tight loop.
        """
        if key is None:
            return []
        partition = HashPartitioner(self.num_partitions).partition(key)
        snapshot = self.version.snapshots[partition]
        if self.session.config.codegen_enabled:
            return snapshot.lookup_rows([key])
        return list(snapshot.lookup(key))

    def lookup_many(self, keys: Sequence[Any]) -> list[tuple]:
        """Bulk point lookups bypassing the planner (fast path).

        The planned equivalent — ``filter(col(key).isin(*keys))`` — pays
        analyzer/optimizer tree walks proportional to the IN-list length
        on every call, which dwarfs the cTrie probes themselves (see the
        index_lookup floor note in benchmarks/figures.txt). This routes
        the keys once with the shared :func:`bucket_keys` helper and
        probes each partition snapshot directly. Duplicate and NULL keys
        are dropped, matching IN-list semantics.
        """
        buckets = bucket_keys(keys, HashPartitioner(self.num_partitions))
        snapshots = self.version.snapshots
        out: list[tuple] = []
        if self.session.config.codegen_enabled:
            for snapshot, bucket in zip(snapshots, buckets):
                if bucket:
                    out.extend(snapshot.lookup_rows(bucket))
        else:
            for snapshot, bucket in zip(snapshots, buckets):
                for key in bucket:
                    out.extend(snapshot.lookup(key))
        return out

    def lookup_latest(self, key: Any) -> tuple | None:
        """The most recently appended row for ``key`` (or None)."""
        if key is None:
            return None
        partition = HashPartitioner(self.num_partitions).partition(key)
        return self.version.snapshots[partition].lookup_head(key)

    def append_rows(
        self, rows: DataFrame | Sequence[Sequence[Any]]
    ) -> "IndexedDataFrame":
        """Append rows (fine-grained or batch) and return the handle for
        the next version. This handle continues to see the old data.
        """
        if isinstance(rows, DataFrame):
            if rows.schema.names != self.schema.names:
                raise SchemaError(
                    f"appended schema {rows.schema.names} does not match "
                    f"indexed schema {self.schema.names}"
                )
            self._load_from_dataframe(rows)
        else:
            self._load_from_rows(rows)
        return IndexedDataFrame(
            self.session, self.schema, self.key_ordinal, self.store,
            self.store.capture(),
        )

    def join(
        self,
        other: DataFrame,
        on: "Column | str | Sequence[str] | None" = None,
        how: str = "inner",
    ) -> DataFrame:
        """Index-powered join: the indexed relation is the (pre-built)
        build side, the regular DataFrame is the probe side."""
        return self.to_df().join(other, on=on, how=how)

    def compact(self, keep_history: bool = False) -> "IndexedDataFrame":
        """Rewrite storage, reclaiming space from superseded versions.

        Extension beyond the demo paper (its storage is append-only
        forever): builds a *fresh* store containing, per key, either
        only the latest row (``keep_history=False``) or every row
        visible at this version (``keep_history=True``, which still
        drops rows appended after this version and compacts batch
        fragmentation). Existing handles keep reading the old store —
        compaction is itself just a new-version event.
        """
        from repro.core.partition import IndexedPartition
        from repro.core.pointers import PointerLayout

        config = self.session.config
        layout = PointerLayout.for_geometry(
            config.batch_size_bytes, config.max_row_bytes
        )
        partitions = [
            IndexedPartition(
                self.schema,
                self.key_ordinal,
                layout,
                config.batch_size_bytes,
                config.max_row_bytes,
                zone_maps=config.zone_maps_enabled,
                sanitizers=config.sanitizers_enabled,
            )
            for _ in range(self.num_partitions)
        ]
        for fresh, snapshot in zip(partitions, self.version.snapshots):
            if keep_history:
                fresh.append_many(list(snapshot.scan()))
            else:
                # Oldest-first per key so chains stay newest-first;
                # here each key keeps exactly its head row.
                fresh.append_many(
                    [row for key in snapshot.keys()
                     for row in [snapshot.lookup_head(key)] if row is not None]
                )
        store = VersionedStore(partitions)
        return IndexedDataFrame(
            self.session, self.schema, self.key_ordinal, store, store.capture()
        )

    # ------------------------------------------------------------------
    # Interop with the DataFrame/SQL world
    # ------------------------------------------------------------------

    def to_df(self) -> DataFrame:
        """A DataFrame view of this version (composable with any SQL or
        DataFrame operation; indexed rules apply when enabled).

        The view is stable per handle, so ``indexed.col("id")`` and
        ``indexed.to_df()`` refer to the same attributes — required for
        building join conditions.
        """
        if self._df is None:
            self._df = DataFrame(self.session, IndexedRelation(self, self.version))
        return self._df

    def col(self, name: str) -> Column:
        """A column of this Indexed DataFrame (for join conditions)."""
        return self.to_df().col(name)

    def create_or_replace_temp_view(self, name: str) -> None:
        self.session.catalog.register(name, IndexedRelation(self, self.version))

    def collect(self) -> list[Row]:
        return self.to_df().collect()

    def take(self, n: int) -> list[Row]:
        return self.to_df().take(n)

    def show(self, n: int = 20) -> None:
        self.to_df().show(n)

    def scan_tuples(self) -> Iterator[tuple]:
        """Iterate raw tuples at this version without the planner."""
        for snapshot in self.version.snapshots:
            yield from snapshot.scan()

    def keys(self) -> Iterator[Any]:
        """Distinct indexed keys at this version."""
        for snapshot in self.version.snapshots:
            yield from snapshot.keys()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def _load_from_dataframe(self, df: DataFrame) -> None:
        """Shuffle the DataFrame's rows to their index partitions and
        append (paper §2: hash partitioning + shuffle on create/append)."""
        key_ordinal = self.key_ordinal
        partitions = self.store.partitions
        partitioner = HashPartitioner(len(partitions))
        keyed = df._execute().key_by(lambda row: row[key_ordinal])
        shuffled = keyed.partition_by(partitioner)

        def load(index: int, records: Iterator[tuple[Any, tuple]]) -> list[int]:
            rows = [row for _key, row in records]
            return [partitions[index].append_many(rows)]

        shuffled.map_partitions_with_index(load).collect()

    def _load_from_rows(self, rows: Sequence[Sequence[Any]]) -> None:
        """Driver-side fine-grained append (the low-latency path for
        small update batches, e.g. one Kafka micro-batch)."""
        partitions = self.store.partitions
        partitioner = HashPartitioner(len(partitions))
        buckets: list[list[tuple]] = [[] for _ in partitions]
        for row in rows:
            t = tuple(row)
            self.schema.validate_row(t)
            buckets[partitioner.partition(t[self.key_ordinal])].append(t)
        for partition, bucket in zip(partitions, buckets):
            if bucket:
                partition.append_many(bucket)

    def __repr__(self) -> str:
        return (
            f"IndexedDataFrame[key={self.key_column}, "
            f"version={self.version_id}, rows={self.count()}, "
            f"partitions={self.num_partitions}]"
        )
