"""Binary row encoding (the "unsafe array" format of the row batches).

Layout of one encoded row, in the family of Spark's UnsafeRow::

    [ null bitmap : ceil(n/8) bytes ]
    [ fixed region: one slot per field ]
    [ variable region: string/bytes payloads ]

Fixed-width fields (ints, doubles, booleans, timestamps) occupy their
natural width in the fixed region. Variable-width fields (strings,
bytes) occupy a 4-byte slot — ``(offset:u16, length:u16)`` relative to
the row start — pointing into the variable region.

A :class:`RowCodec` is built once per schema and reused for every
row; encoding and decoding are symmetric and round-trip exactly.
"""

from __future__ import annotations

import struct
import threading
from typing import Any, Callable, Iterable, Sequence

from repro.errors import CapacityError, SchemaError
from repro.sql.types import BinaryType, DataType, StringType, StructType

_VAR_SLOT = struct.Struct("<HH")  # (offset, length) for var-width fields


class RowCodec:
    """Schema-driven encoder/decoder for row tuples."""

    def __init__(self, schema: StructType, max_row_bytes: int = 1024):
        if max_row_bytes > 0xFFFF:
            # The var-width slots address (offset, length) as u16, so
            # nothing past 64 KiB is reachable; rejecting the config up
            # front beats a struct.error mid-encode.
            raise CapacityError(
                f"max_row_bytes={max_row_bytes} exceeds the 65535-byte "
                "addressing limit of the u16 var-width slots"
            )
        self.schema = schema
        self.max_row_bytes = max_row_bytes
        self._n = len(schema)
        self._bitmap_bytes = (self._n + 7) // 8

        self._is_var: list[bool] = []
        self._structs: list[struct.Struct | None] = []
        self._slots: list[int] = []
        cursor = self._bitmap_bytes
        for field in schema:
            dtype: DataType = field.dtype
            if isinstance(dtype, (StringType, BinaryType)):
                self._is_var.append(True)
                self._structs.append(None)
                self._slots.append(cursor)
                cursor += _VAR_SLOT.size
            else:
                if dtype.struct_code is None or dtype.fixed_width is None:
                    raise SchemaError(f"type {dtype!r} is not encodable")
                self._is_var.append(False)
                self._structs.append(struct.Struct("<" + dtype.struct_code))
                self._slots.append(cursor)
                cursor += dtype.fixed_width
        self._fixed_end = cursor
        self._string_fields = [
            i for i, f in enumerate(schema) if isinstance(f.dtype, StringType)
        ]

        # Fast path: with no var-width fields, the whole fixed region
        # decodes with ONE struct call when the null bitmap is clear —
        # the moral equivalent of Spark's word-aligned UnsafeRow reads.
        if not any(self._is_var):
            fmt = "<" + "".join(
                f.dtype.struct_code for f in schema  # type: ignore[misc]
            )
            self._fast_struct: struct.Struct | None = struct.Struct(fmt)
        else:
            self._fast_struct = None
        self._zero_bitmap = bytes(self._bitmap_bytes)

    @property
    def fixed_size(self) -> int:
        """Encoded size of a row with empty variable region."""
        return self._fixed_end

    # ------------------------------------------------------------------

    def encode(self, row: Sequence[Any]) -> bytes:
        """Encode a tuple; raises :class:`CapacityError` beyond the
        configured maximum row size."""
        if len(row) != self._n:
            raise SchemaError(
                f"row has {len(row)} values, codec expects {self._n}"
            )
        if self._fast_struct is not None and None not in row:
            buf = bytearray(self._fixed_end)
            try:
                self._fast_struct.pack_into(buf, self._bitmap_bytes, *row)
            except struct.error as exc:
                raise SchemaError(f"row {row!r} does not fit schema: {exc}") from exc
            return bytes(buf)
        # Variable payloads first, to know the total size.
        var_payloads: list[bytes | None] = [None] * self._n
        var_total = 0
        for i, value in enumerate(row):
            if self._is_var[i] and value is not None:
                payload = value.encode("utf-8") if isinstance(value, str) else bytes(value)
                var_payloads[i] = payload
                var_total += len(payload)

        total = self._fixed_end + var_total
        if total > self.max_row_bytes:
            raise CapacityError(
                f"encoded row is {total} bytes, exceeding the configured "
                f"maximum of {self.max_row_bytes}"
            )
        if total > 0xFFFF:
            raise CapacityError("row exceeds 64 KiB addressing of var slots")

        buf = bytearray(total)
        var_cursor = self._fixed_end
        for i, value in enumerate(row):
            if value is None:
                buf[i >> 3] |= 1 << (i & 7)
                continue
            slot = self._slots[i]
            if self._is_var[i]:
                payload = var_payloads[i]
                assert payload is not None
                _VAR_SLOT.pack_into(buf, slot, var_cursor, len(payload))
                buf[var_cursor : var_cursor + len(payload)] = payload
                var_cursor += len(payload)
            else:
                packer = self._structs[i]
                assert packer is not None
                try:
                    packer.pack_into(buf, slot, value)
                except struct.error as exc:
                    raise SchemaError(
                        f"value {value!r} does not fit field "
                        f"{self.schema[i].name!r}: {exc}"
                    ) from exc
        return bytes(buf)

    def decode(self, buffer: bytes | bytearray | memoryview, base: int = 0) -> tuple:
        """Decode one row starting at ``base`` in ``buffer``."""
        if self._fast_struct is not None and (
            buffer[base : base + self._bitmap_bytes] == self._zero_bitmap
        ):
            return self._fast_struct.unpack_from(buffer, base + self._bitmap_bytes)
        out: list[Any] = [None] * self._n
        for i in range(self._n):
            if buffer[base + (i >> 3)] & (1 << (i & 7)):
                continue
            slot = base + self._slots[i]
            if self._is_var[i]:
                offset, length = _VAR_SLOT.unpack_from(buffer, slot)
                raw = bytes(buffer[base + offset : base + offset + length])
                out[i] = raw.decode("utf-8") if i in self._string_set else raw
            else:
                unpacker = self._structs[i]
                assert unpacker is not None
                out[i] = unpacker.unpack_from(buffer, slot)[0]
        return tuple(out)

    def decode_field(
        self, buffer: bytes | bytearray | memoryview, base: int, index: int
    ) -> Any:
        """Decode a single field without materializing the whole row."""
        if buffer[base + (index >> 3)] & (1 << (index & 7)):
            return None
        slot = base + self._slots[index]
        if self._is_var[index]:
            offset, length = _VAR_SLOT.unpack_from(buffer, slot)
            raw = bytes(buffer[base + offset : base + offset + length])
            return raw.decode("utf-8") if index in self._string_set else raw
        unpacker = self._structs[index]
        assert unpacker is not None
        return unpacker.unpack_from(buffer, slot)[0]

    @property
    def _string_set(self) -> frozenset[int]:
        cached = getattr(self, "_string_set_cache", None)
        if cached is None:
            cached = frozenset(self._string_fields)
            self._string_set_cache = cached
        return cached

    # ------------------------------------------------------------------

    def batch_decoder(
        self, columns: Sequence[int] | None = None
    ) -> Callable[[Iterable[bytes]], list[tuple]]:
        """A compiled ``payloads -> [row tuple, ...]`` bulk decoder.

        Decoders are generated once per (codec, column subset) and
        memoized on the codec; results are identical to calling
        :meth:`decode` (or :meth:`decode_field` per column) row by row.
        """
        key = None if columns is None else tuple(columns)
        cache = getattr(self, "_decoder_cache", None)
        if cache is None:
            cache = {}
            self._decoder_cache = cache
        decoder = cache.get(key)
        if decoder is None:
            from repro.codegen.decoders import build_batch_decoder

            decoder = build_batch_decoder(self, columns)
            cache[key] = decoder
        return decoder

    def region_decoder(
        self, columns: Sequence[int] | None = None
    ) -> Callable[..., tuple[list[tuple], int]]:
        """A compiled batch-buffer walker, memoized like
        :meth:`batch_decoder`.

        ``decoder(buf, base, end, max_rows) -> (rows, next_base)``
        decodes consecutive stored records (header + payload) straight
        out of a row-batch buffer; see
        :func:`repro.codegen.decoders.build_region_decoder`.
        """
        key = ("region", None if columns is None else tuple(columns))
        cache = getattr(self, "_decoder_cache", None)
        if cache is None:
            cache = {}
            self._decoder_cache = cache
        decoder = cache.get(key)
        if decoder is None:
            from repro.codegen.decoders import build_region_decoder

            decoder = build_region_decoder(self, columns)
            cache[key] = decoder
        return decoder

    def chain_decoder(self, layout) -> Callable[..., None]:
        """A compiled backward-chain walker, memoized per pointer layout.

        ``walk(buffers, pointer, append)`` decodes every row of a
        backward chain (newest first) straight from the batch buffers;
        see :func:`repro.codegen.decoders.build_chain_decoder`.
        """
        key = ("chain", layout.batch_bits, layout.offset_bits, layout.size_bits)
        cache = getattr(self, "_decoder_cache", None)
        if cache is None:
            cache = {}
            self._decoder_cache = cache
        decoder = cache.get(key)
        if decoder is None:
            from repro.codegen.decoders import build_chain_decoder

            decoder = build_chain_decoder(self, layout)
            cache[key] = decoder
        return decoder


# ----------------------------------------------------------------------
# Shared codec registry
# ----------------------------------------------------------------------

#: Structural-key registry of codecs. ``StructType`` defines equality
#: but not hashing, so the key flattens the schema to hashable parts.
_CODEC_REGISTRY: dict[tuple, RowCodec] = {}
_registry_lock = threading.Lock()


def _schema_key(schema: StructType, max_row_bytes: int) -> tuple:
    return (
        tuple((f.name, f.dtype.name, f.nullable) for f in schema),
        max_row_bytes,
    )


def codec_for(schema: StructType, max_row_bytes: int = 1024) -> RowCodec:
    """A shared :class:`RowCodec` for ``schema``.

    Structurally identical schemas map to the same instance, so scans,
    ingestion, and ``appendRows`` reuse one codec (and its memoized
    batch decoders) instead of rebuilding the slot layout every time.
    """
    key = _schema_key(schema, max_row_bytes)
    with _registry_lock:
        codec = _CODEC_REGISTRY.get(key)
        if codec is None:
            codec = RowCodec(schema, max_row_bytes)
            _CODEC_REGISTRY[key] = codec
        return codec
