"""Packed 64-bit row pointers.

Paper §2: *"The pointers stored both in the cTrie and in the backward
pointer data structure are packed, dense 64-bit numbers, each
containing the row batch number, the offset within a row batch, and
the size of the previous row indexed on the given key."*

With the paper's defaults (4 MB batches, rows up to 1 KB) the layout is

    [ batch : 31 bits | offset : 22 bits | size : 11 bits ]

giving 2³¹ batches per partition — the figure the paper quotes. The
layout adapts to the configured batch/row sizes and always totals 64
bits; the all-ones word is reserved as the NULL pointer (end of a
backward chain).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError

#: End-of-chain sentinel (never a valid packed pointer).
NULL_POINTER = (1 << 64) - 1


@dataclass(frozen=True)
class PointerLayout:
    """Bit widths of the three packed fields (must total ≤ 64)."""

    batch_bits: int
    offset_bits: int
    size_bits: int

    def __post_init__(self) -> None:
        total = self.batch_bits + self.offset_bits + self.size_bits
        if total > 64:
            raise CapacityError(
                f"pointer layout needs {total} bits, only 64 available "
                f"(batch={self.batch_bits}, offset={self.offset_bits}, "
                f"size={self.size_bits})"
            )
        if min(self.batch_bits, self.offset_bits, self.size_bits) < 1:
            raise CapacityError("every pointer field needs at least one bit")

    @classmethod
    def for_geometry(cls, batch_size_bytes: int, max_row_bytes: int) -> "PointerLayout":
        """Derive a layout from the configured batch/row geometry.

        Offsets must address any byte in a batch; sizes must represent
        any value up to ``max_row_bytes`` inclusive; the batch field
        receives all remaining bits.
        """
        offset_bits = max(1, (batch_size_bytes - 1).bit_length())
        size_bits = max(1, max_row_bytes.bit_length())
        batch_bits = 64 - offset_bits - size_bits
        if batch_bits < 8:
            raise CapacityError(
                f"batch geometry too large to pack: offset needs {offset_bits} "
                f"bits, size needs {size_bits} bits"
            )
        return cls(batch_bits, offset_bits, size_bits)

    # -- field limits -----------------------------------------------------

    @property
    def max_batch(self) -> int:
        return (1 << self.batch_bits) - 2  # top value is reserved for NULL

    @property
    def max_offset(self) -> int:
        return (1 << self.offset_bits) - 1

    @property
    def max_size(self) -> int:
        return (1 << self.size_bits) - 1

    # -- pack / unpack -----------------------------------------------------

    def pack(self, batch: int, offset: int, size: int) -> int:
        """Pack three fields into one 64-bit word."""
        if not 0 <= batch <= self.max_batch:
            raise CapacityError(
                f"batch {batch} exceeds {self.batch_bits}-bit field "
                f"(max {self.max_batch})"
            )
        if not 0 <= offset <= self.max_offset:
            raise CapacityError(
                f"offset {offset} exceeds {self.offset_bits}-bit field "
                f"(max {self.max_offset})"
            )
        if not 0 <= size <= self.max_size:
            raise CapacityError(
                f"size {size} exceeds {self.size_bits}-bit field "
                f"(max {self.max_size})"
            )
        return (
            (batch << (self.offset_bits + self.size_bits))
            | (offset << self.size_bits)
            | size
        )

    def unpack(self, pointer: int) -> tuple[int, int, int]:
        """Unpack to ``(batch, offset, size)``."""
        if pointer == NULL_POINTER:
            raise CapacityError("cannot unpack the NULL pointer")
        size = pointer & self.max_size
        offset = (pointer >> self.size_bits) & self.max_offset
        batch = pointer >> (self.offset_bits + self.size_bits)
        return batch, offset, size

    def batch_of(self, pointer: int) -> int:
        return pointer >> (self.offset_bits + self.size_bits)

    def offset_of(self, pointer: int) -> int:
        return (pointer >> self.size_bits) & self.max_offset

    def size_of(self, pointer: int) -> int:
        return pointer & self.max_size


#: The paper's layout: 4 MB batches, 1 KB rows → 31/22/11 bits.
PAPER_LAYOUT = PointerLayout.for_geometry(4 * 1024 * 1024, 1024)
