"""The Indexed DataFrame — the paper's contribution.

An Indexed DataFrame is a hash-partitioned, cached, *updatable*
DataFrame whose partitions each hold (paper §2):

1. **row batches** — append-only binary buffers (default 4 MB) storing
   rows encoded by :mod:`repro.core.rowcodec`;
2. a **cTrie** index mapping each key to a packed 64-bit pointer
   (:mod:`repro.core.pointers`) to the *latest* row for that key;
3. **backward pointers** — an 8-byte header per row linking to the
   previous row with the same key, forming a per-key list.

Appends never invalidate the cache; queries run against O(1) MVCC
snapshots; Catalyst-style rules (:mod:`repro.core.rules`) plan index
lookups and indexed joins transparently for SQL and DataFrame queries.

Quickstart::

    from repro.sql import Session
    from repro.core import enable_indexing, create_index

    session = Session()
    enable_indexing(session)
    indexed = create_index(df, "id").cache()
    indexed.get_rows(1234).show()
    bigger = indexed.append_rows(new_rows_df)
"""

from repro.core.indexed_df import IndexedDataFrame, create_index
from repro.core.rules import enable_indexing

__all__ = ["IndexedDataFrame", "create_index", "enable_indexing"]
