"""IndexedRelation: the logical leaf for Indexed DataFrame scans.

This is the *"Indexed Catalyst Tree Node extends Catalyst Tree Node"*
of paper Figure 1: a logical plan leaf that regular rules treat like
any relation (so vanilla execution always remains possible), while the
injected index-aware rules recognize it and plan indexed operators.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.mvcc import Version
from repro.sql.expressions import Attribute
from repro.sql.logical import LogicalPlan, ScannableLeaf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.indexed_df import IndexedDataFrame


class IndexedRelation(ScannableLeaf):
    """Leaf over one MVCC version of an Indexed DataFrame.

    Fresh attribute ids are minted per instantiation (like
    :class:`~repro.sql.logical.Relation`) so self-joins disambiguate.
    The indexed key's attribute is exposed for the planner rules.
    """

    def __init__(
        self,
        indexed_df: "IndexedDataFrame",
        version: Version,
        attributes: Sequence[Attribute] | None = None,
    ):
        self.indexed_df = indexed_df
        self.version = version
        if attributes is None:
            attributes = [
                Attribute(f.name, f.dtype, None, None, f.nullable)
                for f in indexed_df.schema
            ]
        self._attributes = list(attributes)

    def output(self) -> list[Attribute]:
        return list(self._attributes)

    @property
    def key_attribute(self) -> Attribute:
        return self._attributes[self.indexed_df.key_ordinal]

    def estimated_rows(self) -> int:
        return self.version.row_count()

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "IndexedRelation":
        return self

    def fresh_copy(self) -> "IndexedRelation":
        """Same version, fresh attribute ids (new scan instance)."""
        return IndexedRelation(self.indexed_df, self.version)

    def scan_exec(self, ctx: "object"):
        """Regular-execution fallback: decode the row batches (the
        transformToRowRDD path of paper Figure 1)."""
        from repro.core.physical import IndexedScanExec

        return IndexedScanExec(ctx, self.version, self.output())

    def describe(self) -> str:
        return (
            f"IndexedRelation[key={self.key_attribute!r}, "
            f"version={self.version.version_id}, rows={self.estimated_rows()}]"
        )
