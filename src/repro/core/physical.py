"""Indexed physical operators (paper Figure 1, "Indexed Execution").

* :class:`IndexedScanExec` — full or column-pruned decode of the row
  batches (the ``transformToRowRDD`` fallback);
* :class:`IndexLookupExec` — cTrie point lookup(s) for equality
  filters and ``getRows``;
* :class:`IndexedJoinExec` — the indexed equi-join: the index is the
  pre-built build side; the probe side is shuffled to the index's hash
  partitions, or streamed directly when small (the broadcast fallback
  of paper §2, "Indexed Join");
* :class:`GuardedIndexExec` — graceful degradation: runs an indexed
  operator and, if it fails at execution time (index corruption, an
  injected probe fault, retries exhausted), re-executes the query
  through the equivalent *vanilla* physical plan instead of aborting —
  paper Figure 1's dual execution paths made a runtime guarantee.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro import codegen
from repro.core.indexed_rdd import IndexedRowBatchRDD, IndexLookupRDD
from repro.core.mvcc import Version
from repro.engine.context import EngineContext
from repro.engine.partitioner import HashPartitioner, bucket_keys
from repro.engine.rdd import RDD
from repro.errors import ReproError
from repro.sql.expressions import Attribute, Expression
from repro.sql.physical import PhysicalPlan, bind_expression
from repro.stats import extract_pruning_predicates


class IndexedScanExec(PhysicalPlan):
    """Scan of an Indexed DataFrame version, optionally pruned.

    Pruned or not, a row store must walk every stored row — which is
    why Figure 2 shows projection *slower* than the columnar cache.
    """

    PARTITIONING = "source"

    def __init__(
        self,
        ctx: EngineContext,
        version: Version,
        output: Sequence[Attribute],
        columns: Sequence[int] | None = None,
    ):
        super().__init__(ctx, output)
        self.version = version
        self.columns = list(columns) if columns is not None else None
        self._keep: list[int] | None = None
        self._batch_keep: dict[int, frozenset[int]] | None = None
        self._pruned = 0
        self._routed = False
        self._batches_pruned = 0
        self._sample_fraction: float | None = None
        self._index_rejected: str | None = None

    def mark_index_rejected(self, reason: str) -> None:
        """The planner costed a bitmap-index plan here and this scan
        won; recorded so EXPLAIN shows the decision (the metrics-side
        counterpart is ``PruningMetrics.record_index_rejected``)."""
        self._index_rejected = reason

    def apply_pruning(self, condition: Expression) -> None:
        """Skip partitions and row batches the filter cannot match.

        Two statistics cooperate (both sound — the filter above still
        re-checks every surviving row):

        * **hash routing** — an equality/IN conjunct on the indexed
          column names the only hash partitions its keys can live in,
          via the same :func:`bucket_keys` routing appends use;
        * **zone maps** — the per-partition and per-batch min/max
          summaries maintained under the append lock, frozen per MVCC
          snapshot, skip zones whose ranges exclude the predicates.
        """
        if not self.ctx.config.zone_maps_enabled:
            return
        predicates = extract_pruning_predicates(condition, self.output)
        if not predicates:
            return
        if self.columns is not None:
            cols = self.columns
            predicates = [p.with_ordinal(cols[p.ordinal]) for p in predicates]
        snapshots = self.version.snapshots
        n = len(snapshots)
        if n == 0:
            return

        key_ordinal = snapshots[0].partition.key_ordinal
        routed: set[int] | None = None
        for pred in predicates:
            if pred.ordinal == key_ordinal and pred.op in ("eq", "in"):
                buckets = bucket_keys(pred.values, HashPartitioner(n))
                hit = {i for i, bucket in enumerate(buckets) if bucket}
                routed = hit if routed is None else routed & hit
        self._routed = routed is not None
        candidates = sorted(routed) if routed is not None else range(n)

        keep: list[int] = []
        batch_keep: dict[int, frozenset[int]] = {}
        batches_total = batches_pruned = 0
        for i in candidates:
            snap = snapshots[i]
            zones = snap.batch_zones
            zone_count = len(zones) if zones is not None else 0
            batches_total += zone_count
            if not snap.may_match(predicates):
                batches_pruned += zone_count
                continue
            matching = snap.matching_batches(predicates)
            if matching is not None and len(matching) < zone_count:
                batches_pruned += zone_count - len(matching)
                if not matching:
                    continue
                batch_keep[i] = matching
            keep.append(i)

        self._pruned = n - len(keep)
        self._batches_pruned = batches_pruned
        if self._pruned:
            self._keep = keep
        if batch_keep:
            self._batch_keep = batch_keep
        self.ctx.pruning_metrics.record_scan(
            partitions_total=n,
            partitions_pruned=self._pruned,
            batches_total=batches_total,
            batches_pruned=batches_pruned,
            routed=self._routed,
        )

    def estimated_rows(self) -> int | None:
        """Row estimate for deadline-aware planning, scaled by any
        partition pruning already applied."""
        snapshots = self.version.snapshots
        if self._keep is None:
            return self.version.row_count()
        return sum(len(snapshots[i]) for i in self._keep)

    def apply_sampling(self, fraction: float) -> bool:
        """Degrade to a strided subset of the surviving partitions
        (see ``ScanExec.apply_sampling``; same contract, composing
        with both hash routing and zone pruning)."""
        candidates = (
            self._keep
            if self._keep is not None
            else list(range(len(self.version.snapshots)))
        )
        if len(candidates) <= 1:
            return False
        target = max(1, round(len(candidates) * fraction))
        if target >= len(candidates):
            return False
        step = len(candidates) / target
        self._keep = [candidates[int(i * step)] for i in range(target)]
        self._sample_fraction = fraction
        return True

    def execute(self) -> RDD:
        return IndexedRowBatchRDD(
            self.ctx,
            self.version.snapshots,
            self.columns,
            keep=self._keep,
            batch_keep=self._batch_keep,
        )

    def describe(self) -> str:
        cols = "all" if self.columns is None else self.columns
        base = f"IndexedScan[version={self.version.version_id}, columns={cols}"
        markers = []
        if self._pruned and self._keep is not None:
            total = self._pruned + len(self._keep)
            kind = "key_routed" if self._routed else "zone_pruned"
            markers.append(f"{kind}={self._pruned}/{total}")
        if self._batches_pruned:
            markers.append(f"batches_pruned={self._batches_pruned}")
        if self._sample_fraction is not None:
            markers.append(f"degraded=True, sample={self._sample_fraction:.3f}")
        if self._index_rejected is not None:
            markers.append(f"index_rejected={self._index_rejected}")
        if markers:
            return base + ", " + ", ".join(markers) + "]"
        return base + "]"


class IndexLookupExec(PhysicalPlan):
    """Point lookups for literal keys on the indexed column."""

    PARTITIONING = "source"

    def __init__(
        self,
        ctx: EngineContext,
        version: Version,
        keys: Sequence[Any],
        output: Sequence[Attribute],
    ):
        super().__init__(ctx, output)
        self.version = version
        self.keys = list(keys)
        self._index_rejected: str | None = None

    def mark_index_rejected(self, reason: str) -> None:
        """The planner costed a bitmap plan against this lookup and the
        cTrie won; recorded so EXPLAIN shows the decision."""
        self._index_rejected = reason

    def execute(self) -> RDD:
        return IndexLookupRDD(self.ctx, self.version.snapshots, self.keys)

    def describe(self) -> str:
        if self._index_rejected is not None:
            return (
                f"IndexLookup[keys={self.keys!r}, "
                f"index_rejected={self._index_rejected}]"
            )
        return f"IndexLookup[keys={self.keys!r}]"


class IndexedJoinExec(PhysicalPlan):
    """Equi-join with the Indexed DataFrame as the build side.

    ``build_on_left`` records whether the indexed relation was the left
    operand of the logical join, so output column order matches the
    logical plan. Probe rows whose key is NULL never match (inner-join
    SQL semantics).
    """

    PARTITIONING = "exchange"

    def __init__(
        self,
        ctx: EngineContext,
        version: Version,
        build_output: Sequence[Attribute],
        probe: PhysicalPlan,
        probe_key: Expression,
        build_on_left: bool,
        extra_condition: Expression | None = None,
        broadcast_threshold: int = 0,
        probe_rows_estimate: int | None = None,
        build_columns: Sequence[int] | None = None,
    ):
        if build_on_left:
            output = list(build_output) + list(probe.output)
            combined = list(build_output) + list(probe.output)
        else:
            output = list(probe.output) + list(build_output)
            combined = list(probe.output) + list(build_output)
        super().__init__(ctx, output)
        self.children = (probe,)
        self.version = version
        self.build_on_left = build_on_left
        self.probe_key = bind_expression(probe_key, probe.output)
        self.extra = (
            bind_expression(extra_condition, combined)
            if extra_condition is not None
            else None
        )
        self.broadcast_threshold = broadcast_threshold
        self.probe_rows_estimate = probe_rows_estimate
        # When the logical build side was column-pruned, emit only the
        # selected ordinals of each decoded build row.
        self.build_columns = list(build_columns) if build_columns is not None else None

    # ------------------------------------------------------------------

    def _emit(
        self,
        snapshots: Sequence,
        partition_of,
        records: Iterator[tuple[Any, tuple]],
        extra,
    ) -> Iterator[tuple]:
        build_on_left = self.build_on_left
        build_columns = self.build_columns
        injector = self.ctx.fault_injector
        probe_chaos = injector if injector.enabled else None
        for key, probe_row in records:
            if probe_chaos is not None:
                probe_chaos.maybe_fail("index.probe")
            if key is None:
                continue
            snapshot = snapshots[partition_of(key)]
            for build_row in snapshot.lookup(key):
                if build_columns is not None:
                    build_row = tuple(build_row[c] for c in build_columns)
                combined = (
                    build_row + probe_row if build_on_left else probe_row + build_row
                )
                if extra is None or extra(combined) is True:
                    yield combined

    def execute(self) -> RDD:
        snapshots = self.version.snapshots
        n = len(snapshots)
        partitioner = HashPartitioner(n)
        enabled = self.ctx.config.codegen_enabled
        key_of = codegen.value_fn(self.probe_key, enabled)
        extra = codegen.predicate_fn(self.extra, enabled)
        keyed = self.children[0].execute().map(lambda row: (key_of(row), row))

        small_probe = (
            self.probe_rows_estimate is not None
            and self.probe_rows_estimate <= self.broadcast_threshold
        )
        if small_probe:
            # Broadcast fallback: no shuffle; every probe task reaches
            # straight into the (in-process) index partitions.
            return keyed.map_partitions(
                lambda records: self._emit(
                    snapshots, partitioner.partition, records, extra
                )
            )

        # Shuffle the probe side to the index's hash partitions; probes
        # are then purely partition-local.
        shuffled = keyed.filter(lambda kv: kv[0] is not None).partition_by(partitioner)

        def probe_partition(
            index: int, records: Iterator[tuple[Any, tuple]]
        ) -> Iterator[tuple]:
            return self._emit(snapshots, lambda _key: index, records, extra)

        return shuffled.map_partitions_with_index(probe_partition)

    def describe(self) -> str:
        side = "left" if self.build_on_left else "right"
        return (
            f"IndexedJoin[build={side}, version={self.version.version_id}, "
            f"probe_est={self.probe_rows_estimate}]"
        )


class GuardedIndexExec(PhysicalPlan):
    """Graceful degradation around an indexed operator.

    Executes the indexed plan eagerly (so runtime failures — not just
    planning failures — are observable here); if it fails with any
    library error, records the fallback in the scheduler metrics and
    re-executes through the vanilla plan built by ``fallback_factory``.
    The fallback is built lazily: the healthy path never plans it.

    The output attributes are the primary's, so downstream operators
    bind identically against either path.
    """

    PARTITIONING = "driver"

    def __init__(
        self,
        primary: PhysicalPlan,
        fallback_factory: Callable[[], PhysicalPlan],
        label: str,
    ):
        super().__init__(primary.ctx, primary.output)
        self.children = (primary,)
        self.fallback_factory = fallback_factory
        self.label = label
        self.last_error: BaseException | None = None

    def execute(self) -> RDD:
        primary = self.children[0]
        # Circuit breaker on the indexed path (serving mode only): once
        # index failures trip it, skip the doomed primary attempt and go
        # straight to the vanilla fallback until a probe closes it.
        serving = getattr(self.ctx, "serving", None)
        breaker = None if serving is None else serving.breaker("index.fallback")
        if breaker is not None and not breaker.allow():
            self.ctx.scheduler.metrics.record_index_fallback(self.label)
            return self.fallback_factory().execute()
        try:
            rows = primary.execute().collect()
        except ReproError as exc:
            self.last_error = exc
            if breaker is not None:
                breaker.record_failure()
            self.ctx.scheduler.metrics.record_index_fallback(self.label)
            return self.fallback_factory().execute()
        if breaker is not None:
            breaker.record_success()
        parts = min(max(1, len(rows)), self.ctx.config.default_parallelism)
        return self.ctx.parallelize(rows, parts)

    def describe(self) -> str:
        return f"GuardedIndex[{self.label}]"
