"""Row batches: append-only binary buffers holding encoded rows.

Each stored row occupies::

    [ prev pointer : 8 bytes ]  backward pointer (packed, NULL at chain end)
    [ length       : 2 bytes ]  payload size
    [ payload      : n bytes ]  RowCodec-encoded row

The 8-byte header *is* the paper's backward-pointer structure: a
per-key linked list threaded through the batches.

Batches are **preallocated** byte arrays written through a cursor —
they never resize, so concurrent readers can safely hold memoryviews
of regions below their snapshot watermark while appends continue
beyond it. Only the append path mutates, and it is serialized by the
owning partition (Spark runs one task per partition).
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator

from repro.core.pointers import NULL_POINTER, PointerLayout
from repro.errors import CapacityError, SanitizerError

_HEADER = struct.Struct("<QH")  # (prev_pointer, payload_length)
HEADER_SIZE = _HEADER.size  # 10 bytes


class BatchManager:
    """A growable sequence of fixed-capacity byte buffers.

    ``append`` returns the packed pointer of the stored row; ``read``
    resolves a packed pointer back to (prev_pointer, payload memoryview).
    """

    def __init__(
        self, layout: PointerLayout, batch_size_bytes: int, sanitize: bool = False
    ):
        self.layout = layout
        self.batch_size = batch_size_bytes
        self._batches: list[bytearray] = [bytearray(batch_size_bytes)]
        self._lengths: list[int] = [0]
        #: With sanitizers on, every batch the cursor rolls past is
        #: *sealed*: its CRC is recorded here, and `verify_seals`
        #: re-checks the whole list — any later write to a sealed
        #: region (which snapshots read lock-free) is detected as an
        #: SZ002 invariant violation instead of corrupting readers.
        self.sanitize = sanitize
        self._seals: list[int] = []

    def _seal_crc(self, batch_no: int) -> int:
        end = self._lengths[batch_no]
        return zlib.crc32(memoryview(self._batches[batch_no])[:end])

    def verify_seals(self) -> None:
        """Re-CRC every sealed batch; raise ``SanitizerError`` on drift."""
        for batch_no in range(len(self._seals)):
            if self._seal_crc(batch_no) != self._seals[batch_no]:
                raise SanitizerError(
                    "SZ002",
                    f"sealed batch {batch_no} was modified after sealing "
                    "(CRC mismatch)",
                )

    # ------------------------------------------------------------------

    @property
    def num_batches(self) -> int:
        return len(self._batches)

    @property
    def buffers(self) -> list[bytearray]:
        """The batch buffers, for compiled decoders that resolve packed
        pointers themselves. Read-only by contract: only :meth:`append`
        may write, and only past every snapshot watermark."""
        return self._batches

    def used_bytes(self) -> int:
        return sum(self._lengths)

    def allocated_bytes(self) -> int:
        return len(self._batches) * self.batch_size

    # ------------------------------------------------------------------

    def append(self, payload: bytes, prev_pointer: int = NULL_POINTER) -> int:
        """Store one encoded row; returns its packed pointer.

        NOT thread-safe — the owning partition serializes appends,
        matching Spark's one-task-per-partition execution model.
        """
        record_size = HEADER_SIZE + len(payload)
        if record_size > self.batch_size:
            raise CapacityError(
                f"record of {record_size} bytes exceeds batch size {self.batch_size}"
            )
        if len(payload) > self.layout.max_size:
            raise CapacityError(
                f"payload of {len(payload)} bytes exceeds the pointer size field"
            )
        used = self._lengths[-1]
        if used + record_size > self.batch_size:
            if self.sanitize:
                self._seals.append(self._seal_crc(len(self._batches) - 1))
            self._batches.append(bytearray(self.batch_size))
            self._lengths.append(0)
            used = 0
            if len(self._batches) - 1 > self.layout.max_batch:
                raise CapacityError("partition exceeded the addressable batch count")
        batch_no = len(self._batches) - 1
        batch = self._batches[batch_no]
        offset = used
        _HEADER.pack_into(batch, offset, prev_pointer, len(payload))
        batch[offset + HEADER_SIZE : offset + record_size] = payload
        # Publish the new length only after the bytes are in place, so a
        # racing watermark never covers a half-written record.
        self._lengths[batch_no] = offset + record_size
        return self.layout.pack(batch_no, offset, len(payload))

    def read(self, pointer: int) -> tuple[int, memoryview]:
        """Resolve a packed pointer to ``(prev_pointer, payload_view)``."""
        batch_no, offset, size = self.layout.unpack(pointer)
        batch = self._batches[batch_no]
        prev_pointer, length = _HEADER.unpack_from(batch, offset)
        if length != size:
            raise CapacityError(
                f"pointer size {size} disagrees with stored length {length} "
                f"(batch {batch_no}, offset {offset})"
            )
        start = offset + HEADER_SIZE
        return prev_pointer, memoryview(batch)[start : start + length]

    def chain(self, head: int) -> Iterator[memoryview]:
        """Walk a backward-pointer chain from ``head`` (newest first)."""
        pointer = head
        while pointer != NULL_POINTER:
            pointer, payload = self.read(pointer)
            yield payload

    # ------------------------------------------------------------------
    # Durability: checkpoint export / restore
    # ------------------------------------------------------------------

    def export_batches(self) -> list[bytes]:
        """Copy out the used prefix of every batch, for checkpointing.

        The copies are taken while the owning partition holds its
        append lock, so each reflects a record boundary; sealed batches
        additionally get their CRCs re-verified first when sanitizers
        are on (a corrupt batch must never be checkpointed as truth).
        """
        if self.sanitize:
            self.verify_seals()
        return [
            bytes(memoryview(batch)[: self._lengths[i]])
            for i, batch in enumerate(self._batches)
        ]

    @classmethod
    def restore(
        cls,
        layout: PointerLayout,
        batch_size_bytes: int,
        exported: list[bytes],
        sanitize: bool = False,
    ) -> "BatchManager":
        """Rebuild a manager from :meth:`export_batches` output.

        Buffers are re-padded to the configured batch size (packed
        pointers address ``(batch, offset)`` so the used prefix must
        land at the same offsets) and sealed batches are re-sealed from
        the restored bytes.
        """
        manager = cls(layout, batch_size_bytes, sanitize=sanitize)
        if not exported:
            return manager
        for data in exported:
            if len(data) > batch_size_bytes:
                raise CapacityError(
                    f"restored batch of {len(data)} bytes exceeds the "
                    f"configured batch size {batch_size_bytes}"
                )
        manager._batches = [
            bytearray(data) + bytearray(batch_size_bytes - len(data))
            for data in exported
        ]
        manager._lengths = [len(data) for data in exported]
        if sanitize:
            manager._seals = [
                manager._seal_crc(i) for i in range(len(exported) - 1)
            ]
        return manager

    def watermark(self) -> tuple[int, int]:
        """Current append frontier: ``(batch_count, last_batch_length)``.

        Records at or beyond the watermark were appended later; a
        snapshot scan stops there.
        """
        count = len(self._batches)
        return count, self._lengths[count - 1]

    def regions(
        self,
        watermark: tuple[int, int] | None = None,
        batches: "frozenset[int] | set[int] | None" = None,
    ) -> Iterator[tuple[bytearray, int]]:
        """``(buffer, end)`` per batch, bounded by ``watermark``.

        The bulk counterpart of :meth:`scan`: a compiled region decoder
        (:func:`repro.codegen.decoders.build_region_decoder`) walks each
        buffer's records in place instead of this side yielding one
        memoryview per record. Reading below the watermark is safe for
        the same reason memoryviews are — batches never resize and only
        the append path writes, always past the watermark.

        ``batches`` restricts the walk to those batch numbers — the
        zone-map skip path. Callers guarantee skipped batches cannot
        contain matching rows.
        """
        if watermark is None:
            watermark = self.watermark()
        batch_count, last_length = watermark
        for batch_no in range(batch_count):
            if batches is not None and batch_no not in batches:
                continue
            if batch_no == batch_count - 1:
                end = last_length
            else:
                end = self._lengths[batch_no]
            if end:
                yield self._batches[batch_no], end

    def scan(
        self,
        watermark: tuple[int, int] | None = None,
        batches: "frozenset[int] | set[int] | None" = None,
    ) -> Iterator[memoryview]:
        """Yield every payload in append order, bounded by ``watermark``.

        ``batches`` restricts the scan to those batch numbers, as in
        :meth:`regions`.
        """
        if watermark is None:
            watermark = self.watermark()
        batch_count, last_length = watermark
        for batch_no in range(batch_count):
            if batches is not None and batch_no not in batches:
                continue
            batch = self._batches[batch_no]
            if batch_no == batch_count - 1:
                end = last_length
            else:
                end = self._lengths[batch_no]
            view = memoryview(batch)
            offset = 0
            while offset < end:
                _prev, length = _HEADER.unpack_from(batch, offset)
                start = offset + HEADER_SIZE
                yield view[start : start + length]
                offset = start + length

    def records(
        self, watermark: tuple[int, int] | None = None
    ) -> Iterator[tuple[int, memoryview]]:
        """Yield ``(packed_pointer, payload_view)`` in append order.

        Like :meth:`scan`, but also reconstructs each record's packed
        pointer from its position — what a secondary index attached
        after rows already exist needs to backfill itself.
        """
        if watermark is None:
            watermark = self.watermark()
        batch_count, last_length = watermark
        pack = self.layout.pack
        for batch_no in range(batch_count):
            batch = self._batches[batch_no]
            if batch_no == batch_count - 1:
                end = last_length
            else:
                end = self._lengths[batch_no]
            view = memoryview(batch)
            offset = 0
            while offset < end:
                _prev, length = _HEADER.unpack_from(batch, offset)
                start = offset + HEADER_SIZE
                yield pack(batch_no, offset, length), view[start : start + length]
                offset = start + length

    def __repr__(self) -> str:
        return (
            f"BatchManager({self.num_batches} batches, "
            f"{self.used_bytes()} bytes used)"
        )
