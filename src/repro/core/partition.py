"""IndexedPartition: one partition of the Indexed Row-Batch RDD.

Combines the three per-partition structures of paper §2 — the cTrie
index, the row batches, and the backward pointers — and implements the
two operations the paper describes:

* **append**: encode the row, look up the key's current head pointer,
  store the row with that pointer as its backward link, and point the
  cTrie at the new row;
* **lookup**: read the cTrie, then walk the backward chain to collect
  every row sharing the key.

:class:`PartitionSnapshot` captures an O(1) consistent view (cTrie
read-only snapshot + batch watermark) — the MVCC mechanism that lets
queries run at a stable version while appends continue.
"""

from __future__ import annotations

import threading
from itertools import chain
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.core.pointers import NULL_POINTER, PointerLayout
from repro.core.rowbatch import HEADER_SIZE, BatchManager
from repro.core.rowcodec import RowCodec, codec_for
from repro.ctrie import CTrie
from repro.sql.types import StructType
from repro.stats import PruningPredicate, ZoneMap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durability.wal import WALWriter


class PartitionSnapshot:  # analysis: shipped
    """A consistent, immutable view of a partition at one version."""

    __slots__ = (
        "partition",
        "trie",
        "watermark",
        "row_count",
        "distinct_keys",
        "batch_zones",
        "zone",
        "bitmaps",
    )

    def __init__(
        self,
        partition: "IndexedPartition",
        trie: CTrie,
        watermark: tuple[int, int],
        row_count: int,
        distinct_keys: int = 0,
        batch_zones: "list[ZoneMap] | None" = None,
        zone: "ZoneMap | None" = None,
        bitmaps: "dict[int, Any] | None" = None,
    ):
        self.partition = partition
        self.trie = trie
        self.watermark = watermark
        self.row_count = row_count
        self.distinct_keys = distinct_keys
        # Zone maps at this version: sealed batches share the live maps
        # (immutable once a newer batch exists); the active batch's map
        # is a copy taken under the append lock, so it describes exactly
        # the rows below ``watermark`` even while appends continue.
        self.batch_zones = batch_zones
        self.zone = zone
        # Bitmap-index views at this version (storage ordinal →
        # BitmapColumnView), None when no bitmap index is attached.
        self.bitmaps = bitmaps

    # -- reads -----------------------------------------------------------

    def lookup(self, key: Any) -> Iterator[tuple]:
        """All rows for ``key`` at this version, newest first."""
        head = self.trie.get(key, NULL_POINTER)
        if head == NULL_POINTER:
            return
        codec = self.partition.codec
        for payload in self.partition.batches.chain(head):
            yield codec.decode(payload)

    def lookup_head(self, key: Any) -> tuple | None:
        """The most recently appended row for ``key``, or None."""
        head = self.trie.get(key, NULL_POINTER)
        if head == NULL_POINTER:
            return None
        _prev, payload = self.partition.batches.read(head)
        return self.partition.codec.decode(payload)

    def contains(self, key: Any) -> bool:
        return key in self.trie

    def scan(self, batches: "frozenset[int] | None" = None) -> Iterator[tuple]:
        """Every row at this version, in append order.

        ``batches`` restricts the walk to those batch numbers (the
        zone-map skip path — see :meth:`matching_batches`).
        """
        codec = self.partition.codec
        for payload in self.partition.batches.scan(self.watermark, batches):
            yield codec.decode(payload)

    def matching_batches(
        self, predicates: Sequence[PruningPredicate]
    ) -> "frozenset[int] | None":
        """Batch numbers whose zone maps admit ``predicates``.

        Returns ``None`` when zone maps are unavailable (disabled, or an
        empty predicate list) — meaning "scan everything". Predicates
        use *storage* ordinals.
        """
        if not predicates or self.batch_zones is None:
            return None
        return frozenset(
            batch_no
            for batch_no, zone in enumerate(self.batch_zones)
            if zone.may_match(predicates)
        )

    def may_match(self, predicates: Sequence[PruningPredicate]) -> bool:
        """Could this partition hold any row matching ``predicates``?"""
        if not predicates or self.zone is None:
            return True
        return self.zone.may_match(predicates)

    def scan_batches(
        self,
        columns: Sequence[int] | None = None,
        chunk_rows: int = 4096,
        batches: "frozenset[int] | None" = None,
    ) -> Iterator[tuple]:
        """Bulk-decoded scan via the compiled per-schema decoder.

        Row-for-row identical to :meth:`scan` (or to selective
        ``decode_field`` extraction when ``columns`` is given), but a
        generated region decoder walks each batch buffer in place —
        record headers included — instead of the per-record memoryview
        slicing plus per-field codec loop. ``chunk_rows`` bounds the
        rows decoded per decoder call so early-stopping consumers
        (``take``, ``Limit``) don't force whole buffers.
        """
        decode = self.partition.codec.region_decoder(columns)
        regions = self.partition.batches.regions(self.watermark, batches)

        def blocks() -> Iterator[list[tuple]]:
            for buf, end in regions:
                base = 0
                while base < end:
                    rows, base = decode(buf, base, end, chunk_rows)
                    yield rows

        # chain.from_iterable walks each decoded block at C speed — no
        # generator-frame resume per row, which matters at scan scale.
        return chain.from_iterable(blocks())

    def lookup_rows(self, keys: Sequence[Any]) -> list[tuple]:
        """Bulk lookup: every row for every key, compiled-decoded.

        Equivalent to chaining :meth:`lookup` over ``keys`` (per-key
        newest-first order preserved), but a compiled chain walker
        resolves the packed pointers and decodes each row straight from
        the batch buffers — no per-row memoryview, no payload staging.
        """
        batches = self.partition.batches
        walk = self.partition.codec.chain_decoder(batches.layout)
        buffers = batches.buffers
        get = self.trie.get
        out: list[tuple] = []
        append = out.append
        for key in keys:
            head = get(key, NULL_POINTER)
            if head != NULL_POINTER:
                walk(buffers, head, append)
        return out

    def keys(self) -> Iterator[Any]:
        return iter(self.trie.keys())

    def __len__(self) -> int:
        return self.row_count


class IndexedPartition:
    """Mutable (append-only) storage for one hash partition.

    Appends are serialized with a short lock (matching Spark's
    one-task-per-partition model); reads are lock-free against
    snapshots.
    """

    def __init__(
        self,
        schema: StructType,
        key_ordinal: int,
        layout: PointerLayout,
        batch_size_bytes: int,
        max_row_bytes: int,
        zone_maps: bool = True,
        sanitizers: bool = False,
    ):
        self.schema = schema
        self.key_ordinal = key_ordinal
        self.codec = codec_for(schema, max_row_bytes)
        self._sanitize = sanitizers
        self.batches = BatchManager(  # guarded-by: _append_lock
            layout, batch_size_bytes, sanitize=sanitizers
        )
        self.trie = CTrie()  # guarded-by: _append_lock
        self._append_lock = threading.Lock()
        self._row_count = 0  # guarded-by: _append_lock
        self._distinct_keys = 0  # guarded-by: _append_lock
        # One zone map per row batch plus a partition-level rollup,
        # maintained under the append lock. Batch zones seal along with
        # their batch: once a newer batch exists, nothing touches them
        # (with sanitizers on, "nothing" is enforced — see _record_row).
        self._num_columns = len(schema)
        self._batch_zones: list[ZoneMap] | None = (  # guarded-by: _append_lock
            [ZoneMap(self._num_columns)] if zone_maps else None
        )
        self._zone: ZoneMap | None = (  # guarded-by: _append_lock
            ZoneMap(self._num_columns) if zone_maps else None
        )
        # Optional write-ahead log: when attached, every append batch
        # is logged (and fsynced) *before* the in-memory apply, both
        # under the same lock — so a checkpoint rotating the WAL under
        # that lock sees exactly the applied rows in the old segment.
        self._wal: "WALWriter | None" = None  # guarded-by: _append_lock
        # Secondary bitmap indexes by storage ordinal. Each index has
        # its own inner lock (always acquired *inside* the append lock,
        # never the other way around); the dict itself — attach, lookup,
        # iteration on the append path — is append-lock territory.
        self._bitmap_indexes: dict = {}  # guarded-by: _append_lock

    # -- writes ------------------------------------------------------------

    def _record_row(self, row: Sequence[Any]) -> None:  # requires-lock: _append_lock
        """Update zone maps for one appended row."""
        zones = self._batch_zones
        while len(zones) < self.batches.num_batches:
            # The previous batch just rolled: its zone is final. With
            # sanitizers on it becomes write-poisoned, matching the CRC
            # seal the BatchManager put on the batch itself.
            if self._sanitize:
                zones[-1].seal()
            zones.append(ZoneMap(self._num_columns))
        zones[-1].update_row(row)
        self._zone.update_row(row)

    def append(self, row: Sequence[Any]) -> int:
        """Append one row; returns its packed pointer."""
        payload = self.codec.encode(row)
        key = row[self.key_ordinal]
        with self._append_lock:
            if self._wal is not None:
                self._wal.append_rows([payload])
            prev = self.trie.get(key, NULL_POINTER)
            pointer = self.batches.append(payload, prev)
            self.trie.insert(key, pointer)
            self._row_count += 1
            if prev == NULL_POINTER:
                self._distinct_keys += 1
            if self._batch_zones is not None:
                self._record_row(row)
            for bitmap_index in self._bitmap_indexes.values():
                bitmap_index.record(row, pointer)
        return pointer

    def append_many(self, rows: Sequence[Sequence[Any]]) -> int:
        """Append a batch of rows; returns how many were stored.

        All-or-nothing at the encode step: every row is encoded (and
        thereby schema/capacity-validated) before the first one is
        stored, matching the atomic-apply contract the MVCC watermark
        dedup relies on — and letting the WAL log the whole batch with
        one write + fsync before any in-memory mutation.
        """
        count = 0
        codec = self.codec
        key_ordinal = self.key_ordinal
        with self._append_lock:
            payloads = [codec.encode(row) for row in rows]
            if self._wal is not None and payloads:
                self._wal.append_rows(payloads)
            trie = self.trie
            batches = self.batches
            track_zones = self._batch_zones is not None
            bitmap_indexes = list(self._bitmap_indexes.values())
            fresh_keys = 0
            for row, payload in zip(rows, payloads):
                key = row[key_ordinal]
                prev = trie.get(key, NULL_POINTER)
                pointer = batches.append(payload, prev)
                trie.insert(key, pointer)
                count += 1
                if prev == NULL_POINTER:
                    fresh_keys += 1
                if track_zones:
                    self._record_row(row)
                for bitmap_index in bitmap_indexes:
                    bitmap_index.record(row, pointer)
            self._row_count += count
            self._distinct_keys += fresh_keys
        return count

    # -- versioning -----------------------------------------------------------

    def snapshot(self) -> PartitionSnapshot:
        """Capture a consistent point-in-time view (O(1))."""
        with self._append_lock:
            trie = self.trie.readonly_snapshot()
            watermark = self.batches.watermark()
            count = self._row_count
            distinct = self._distinct_keys
            batch_zones = zone = None
            if self._batch_zones is not None:
                # Sealed zones (all but the last) never change again and
                # can be shared; the active one is copied so appends past
                # the watermark stay invisible to this snapshot.
                batch_zones = self._batch_zones[:-1] + [self._batch_zones[-1].copy()]
                zone = self._zone.copy()
                if self._sanitize:
                    # Snapshot-owned copies are immutable by contract
                    # too: poison them so any consumer that tries to
                    # fold new rows into a snapshot's zone map trips
                    # SZ001 instead of skewing pruning decisions.
                    batch_zones[-1].seal()
                    zone.seal()
            if self._sanitize:
                self.batches.verify_seals()
            bitmaps = None
            if self._bitmap_indexes:
                bitmaps = {
                    ordinal: index.snapshot_view()
                    for ordinal, index in self._bitmap_indexes.items()
                }
        return PartitionSnapshot(
            self, trie, watermark, count, distinct, batch_zones, zone, bitmaps
        )

    # -- secondary indexes -----------------------------------------------------

    def attach_bitmap_index(self, ordinal: int):
        """Attach (or return the existing) bitmap index on ``ordinal``.

        Backfills from storage under the append lock — the walk
        reconstructs each row's packed pointer from the batch headers —
        so the index is exactly caught up when the lock drops and every
        later append flows through :meth:`append` / :meth:`append_many`.
        Idempotent: one maintained index per column, shared by every
        consumer (the Shared Arrangements contract).
        """
        from repro.index.bitmap import PartitionBitmapIndex

        with self._append_lock:
            existing = self._bitmap_indexes.get(ordinal)
            if existing is not None:
                return existing
            index = PartitionBitmapIndex(ordinal)
            codec = self.codec
            for pointer, payload in self.batches.records():
                index.record(codec.decode(payload), pointer)
            self._bitmap_indexes[ordinal] = index
        return index

    def bitmap_index(self, ordinal: int):
        """The attached bitmap index on ``ordinal``, or None."""
        with self._append_lock:
            return self._bitmap_indexes.get(ordinal)

    # -- durability -----------------------------------------------------------

    def attach_wal(self, wal: "WALWriter | None") -> None:
        """Attach (or detach) the write-ahead log for this partition."""
        with self._append_lock:
            self._wal = wal

    def _export_locked(self) -> dict:  # requires-lock: _append_lock
        """Checkpointable state: sealed batch bytes, the cTrie manifest
        (key → packed pointer), counters, and zone-map copies."""
        state: dict[str, Any] = {
            "batches": self.batches.export_batches(),
            "index": self.trie.to_dict(),
            "row_count": self._row_count,
            "distinct_keys": self._distinct_keys,
            "batch_zones": None,
            "zone": None,
        }
        if self._batch_zones is not None:
            state["batch_zones"] = [zone.copy() for zone in self._batch_zones]
            state["zone"] = self._zone.copy()
        if self._bitmap_indexes:
            state["bitmaps"] = {
                ordinal: index.export_state()
                for ordinal, index in self._bitmap_indexes.items()
            }
        return state

    def export_state(self) -> dict:
        """A consistent checkpoint image of this partition."""
        with self._append_lock:
            return self._export_locked()

    def rotate_wal(self, new_wal: "WALWriter | None") -> dict:
        """Atomically export checkpoint state and switch WAL segments.

        Under the append lock, so the exported state contains exactly
        the rows logged to the *old* segment: every row in an older
        epoch is inside this export, which is what lets the old epochs
        be deleted once the checkpoint commits.
        """
        with self._append_lock:
            state = self._export_locked()
            old = self._wal
            self._wal = new_wal
        if old is not None:
            old.close()
        return state

    @classmethod
    def from_state(
        cls,
        schema: StructType,
        key_ordinal: int,
        layout: PointerLayout,
        batch_size_bytes: int,
        max_row_bytes: int,
        state: dict,
        zone_maps: bool = True,
        sanitizers: bool = False,
    ) -> "IndexedPartition":
        """Rebuild a partition from :meth:`export_state` output."""
        partition = cls(
            schema,
            key_ordinal,
            layout,
            batch_size_bytes,
            max_row_bytes,
            zone_maps=zone_maps,
            sanitizers=sanitizers,
        )
        with partition._append_lock:
            partition.batches = BatchManager.restore(
                layout, batch_size_bytes, state["batches"], sanitize=sanitizers
            )
            partition.trie = CTrie.from_items(state["index"].items())
            partition._row_count = state["row_count"]
            partition._distinct_keys = state["distinct_keys"]
            if zone_maps:
                zones = state.get("batch_zones")
                zone = state.get("zone")
                if zones is None or len(zones) != partition.batches.num_batches:
                    zones, zone = partition._rebuild_zones_locked()
                if sanitizers:
                    # Restored rolled-past zones are final again; the
                    # active tail zone stays live for further appends.
                    for sealed_zone in zones[:-1]:
                        sealed_zone.seal()
                partition._batch_zones = zones
                partition._zone = zone
            else:
                partition._batch_zones = None
                partition._zone = None
            bitmap_states = state.get("bitmaps")
            if bitmap_states:
                from repro.index.bitmap import PartitionBitmapIndex

                partition._bitmap_indexes = {
                    ordinal: PartitionBitmapIndex.from_state(bitmap_state)
                    for ordinal, bitmap_state in bitmap_states.items()
                }
        return partition

    def _rebuild_zones_locked(  # requires-lock: _append_lock
        self,
    ) -> tuple[list[ZoneMap], ZoneMap]:
        """Recompute per-batch + rollup zone maps by scanning storage
        (used when a checkpoint predates zone maps being enabled)."""
        codec = self.codec
        zones: list[ZoneMap] = []
        rollup = ZoneMap(self._num_columns)
        watermark = self.batches.watermark()
        for batch_no in range(self.batches.num_batches):
            zone = ZoneMap(self._num_columns)
            for payload in self.batches.scan(watermark, {batch_no}):
                row = codec.decode(payload)
                zone.update_row(row)
                rollup.update_row(row)
            zones.append(zone)
        return zones, rollup

    # -- live reads (latest version) --------------------------------------------

    def lookup(self, key: Any) -> Iterator[tuple]:
        return self.snapshot().lookup(key)

    def scan(self) -> Iterator[tuple]:
        return self.snapshot().scan()

    @property
    def row_count(self) -> int:
        return self._row_count

    def key_count(self) -> int:
        """Distinct keys currently indexed (O(1), tracked on append)."""
        return self._distinct_keys

    # -- accounting ---------------------------------------------------------------

    def memory_stats(self) -> dict[str, int]:
        """Byte accounting for the memory-overhead benchmark."""
        from repro.engine.cache import estimate_size

        data_bytes = self.batches.used_bytes()
        return {
            "rows": self._row_count,
            "data_bytes": data_bytes,
            "allocated_bytes": self.batches.allocated_bytes(),
            "header_bytes": self._row_count * HEADER_SIZE,
            "index_entries": self.key_count(),
            "index_bytes": estimate_size(self.trie.to_dict()),
        }

    def __repr__(self) -> str:
        return (
            f"IndexedPartition(rows={self._row_count}, "
            f"keys≈{self.key_count()}, {self.batches!r})"
        )
