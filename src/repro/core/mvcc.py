"""Multi-version concurrency bookkeeping for Indexed DataFrames.

Every :class:`~repro.core.indexed_df.IndexedDataFrame` handle is bound
to one immutable :class:`Version`: a list of per-partition snapshots
(cTrie read-only snapshot + batch watermark). ``append_rows`` writes to
the shared live partitions and mints the next version; older handles
keep reading their own snapshots untouched — the paper's
*"updates with multi-version concurrency"*.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Sequence

from repro.core.partition import IndexedPartition, PartitionSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durability.checkpoint import DurableStore

_version_ids = itertools.count(1)


class Version:
    """An immutable point-in-time view across all partitions."""

    __slots__ = ("version_id", "snapshots")

    def __init__(self, snapshots: Sequence[PartitionSnapshot]):
        self.version_id = next(_version_ids)
        self.snapshots = list(snapshots)

    @property
    def num_partitions(self) -> int:
        return len(self.snapshots)

    def row_count(self) -> int:
        return sum(len(s) for s in self.snapshots)

    def __repr__(self) -> str:
        return f"Version(id={self.version_id}, rows={self.row_count()})"


class VersionedStore:
    """The shared, live partition array plus version minting.

    Appends from any version handle land here; :meth:`capture` takes a
    consistent snapshot across partitions. Capturing while appends are
    in flight is safe — each partition snapshot is internally
    consistent, and cross-partition atomicity is not required by the
    append-only model (a row is visible in version *v* iff it was fully
    appended before *v*'s capture of its partition).
    """

    def __init__(self, partitions: Sequence[IndexedPartition]):
        if not partitions:
            raise ValueError("a versioned store needs at least one partition")
        self.partitions = list(partitions)
        self._capture_lock = threading.Lock()
        # Set by the durability coordinator when this store is bound to
        # an on-disk DurableStore (WAL + checkpoints); None for plain
        # in-memory stores. The ingestion loop reads it to persist
        # applied-offset watermarks next to the row log, and recovery
        # sets it on the store it rebuilds.
        self.durable_store: "DurableStore | None" = None

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def capture(self) -> Version:
        """Mint a new version from the current partition states."""
        with self._capture_lock:
            return Version([p.snapshot() for p in self.partitions])

    def total_rows(self) -> int:
        return sum(p.row_count for p in self.partitions)

    def memory_stats(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for partition in self.partitions:
            for key, value in partition.memory_stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals
