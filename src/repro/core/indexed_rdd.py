"""The Indexed Row-Batch RDD (paper §2, Figure 1).

A custom RDD whose partitions are :class:`PartitionSnapshot` views of
Indexed DataFrame storage. ``compute`` decodes binary rows back into
tuples — the *"transformToRowRDD"* fall-back path of Figure 1 that
lets any regular operator run on top of indexed storage.

Because the underlying data is already resident (and hash-partitioned
on the index key), the RDD reports a matching
:class:`~repro.engine.partitioner.HashPartitioner`, letting the engine
elide shuffles for co-partitioned operations.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.core.partition import PartitionSnapshot
from repro.engine.context import EngineContext
from repro.engine.partitioner import HashPartitioner, bucket_keys
from repro.engine.rdd import RDD


class IndexedRowBatchRDD(RDD):
    """Decoded-row view over indexed partitions.

    ``columns`` selects field ordinals to decode; decoding is
    field-at-a-time from the binary row (a row store touches every row
    regardless of how few columns are needed — the projection cost the
    paper measures in Figure 2).

    ``keep`` / ``batch_keep`` carry zone-map pruning decisions: splits
    outside ``keep`` compute to empty, and a kept split restricted by
    ``batch_keep[split]`` walks only those row batches. Partition count
    and numbering are unchanged, so the co-partitioning contract (the
    reported :class:`HashPartitioner`) still holds for surviving rows.
    """

    def __init__(
        self,
        ctx: EngineContext,
        snapshots: Sequence[PartitionSnapshot],
        columns: Sequence[int] | None = None,
        keep: Sequence[int] | None = None,
        batch_keep: "dict[int, frozenset[int]] | None" = None,
    ):
        super().__init__(ctx, [])
        self.snapshots = list(snapshots)
        self.columns = list(columns) if columns is not None else None
        self.keep = frozenset(keep) if keep is not None else None
        self.batch_keep = batch_keep
        self.partitioner = HashPartitioner(len(self.snapshots))

    @property
    def num_partitions(self) -> int:
        return len(self.snapshots)

    def compute(self, split: int) -> Iterator[tuple]:
        if self.keep is not None and split not in self.keep:
            return iter(())
        batches = self.batch_keep.get(split) if self.batch_keep else None
        snapshot = self.snapshots[split]
        if self.context.config.codegen_enabled:
            # Bulk path: whole payload chunks through the compiled
            # per-schema decoder (selective columns included).
            return snapshot.scan_batches(self.columns, batches=batches)
        if self.columns is None:
            return snapshot.scan(batches)
        codec = snapshot.partition.codec
        columns = self.columns

        def decode_selected() -> Iterator[tuple]:
            scan = snapshot.partition.batches.scan(snapshot.watermark, batches)
            for payload in scan:
                yield tuple(codec.decode_field(payload, 0, c) for c in columns)

        return decode_selected()


class IndexLookupRDD(RDD):
    """Point lookups for a set of keys, routed to their partitions.

    Each key belongs to exactly one hash partition; a task per involved
    partition walks the cTrie + backward chain. This is the physical
    form of ``getRows`` and of equality filters on the indexed column.
    """

    def __init__(
        self,
        ctx: EngineContext,
        snapshots: Sequence[PartitionSnapshot],
        keys: Sequence[Any],
    ):
        super().__init__(ctx, [])
        self.snapshots = list(snapshots)
        partitioner = HashPartitioner(len(self.snapshots))
        # Shared routing helper: the same bucketing that pruning and
        # fine-grained appends use, so routing never disagrees.
        self._by_partition = bucket_keys(keys, partitioner)
        self.partitioner = partitioner

    @property
    def num_partitions(self) -> int:
        return len(self.snapshots)

    def compute(self, split: int) -> Iterator[tuple]:
        # Chaos site: a failing cTrie probe (simulating index
        # corruption / a dead executor holding the index partition).
        self.context.fault_injector.maybe_fail("index.probe")
        snapshot = self.snapshots[split]
        keys = self._by_partition[split]
        if self.context.config.codegen_enabled:
            yield from snapshot.lookup_rows(keys)
            return
        for key in keys:
            yield from snapshot.lookup(key)
