"""Catalyst integration: index-aware optimizer rule and planner strategy.

Paper §2, *Integration with Catalyst*: the library adds optimization
rules so that regular SQL / DataFrame queries become index-aware —
equality filters on the indexed column turn into cTrie lookups,
equi-joins against an indexed relation turn into indexed joins with
the index as the pre-built build side, and everything else falls back
to vanilla execution on top of the row-batch scan.

:func:`enable_indexing` performs the whole injection on a session —
the Python analogue of importing the library's Scala implicits.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.indexed_df import create_index
from repro.core.physical import (
    GuardedIndexExec,
    IndexedJoinExec,
    IndexedScanExec,
    IndexLookupExec,
)
from repro.core.relation import IndexedRelation
from repro.sql.expressions import (
    Attribute,
    EqualTo,
    Expression,
    In,
    Literal,
    combine_conjuncts,
    split_conjuncts,
    strip_alias,
)
from repro.sql.logical import Filter, Join, LogicalPlan, Project
from repro.sql.physical import FilterExec, PhysicalPlan
from repro.sql.planner import Planner, estimate_rows, extract_equi_join_keys


class IndexLookup(LogicalPlan):
    """Logical point lookup: ``key IN literals`` on the indexed column.

    Produced by :func:`index_lookup_rewrite`; lowered to
    :class:`~repro.core.physical.IndexLookupExec` by the strategy.
    """

    def __init__(self, relation: IndexedRelation, keys: Sequence[object]):
        self.relation = relation
        self.keys = list(keys)

    def output(self) -> list[Attribute]:
        return self.relation.output()

    def estimated_rows(self) -> int:
        """Keys × average chain length (rows per distinct key)."""
        total = self.relation.version.row_count()
        distinct = sum(
            snapshot.distinct_keys for snapshot in self.relation.version.snapshots
        )
        average_chain = max(1, total // max(1, distinct))
        return len(self.keys) * average_chain

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "IndexLookup":
        return self

    def describe(self) -> str:
        return f"IndexLookup[{self.relation.key_attribute!r} IN {self.keys!r}]"


# ----------------------------------------------------------------------
# Logical rule
# ----------------------------------------------------------------------


def _literal_keys(conjunct: Expression, key: Attribute) -> list[object] | None:
    """Keys if ``conjunct`` is an equality/IN on the indexed column."""
    if isinstance(conjunct, EqualTo):
        left, right = conjunct.left, conjunct.right
        if isinstance(left, Attribute) and left.expr_id == key.expr_id and isinstance(
            right, Literal
        ):
            return [right.value]
        if isinstance(right, Attribute) and right.expr_id == key.expr_id and isinstance(
            left, Literal
        ):
            return [left.value]
    if isinstance(conjunct, In):
        if (
            isinstance(conjunct.value, Attribute)
            and conjunct.value.expr_id == key.expr_id
            and all(isinstance(o, Literal) for o in conjunct.options)
        ):
            return [o.value for o in conjunct.options]  # type: ignore[union-attr]
    return None


def index_lookup_rewrite(plan: LogicalPlan) -> LogicalPlan:
    """Rewrite ``Filter(key = lit, IndexedRelation)`` into a logical
    :class:`IndexLookup` (plus a residual filter if needed)."""

    def rewrite(node: LogicalPlan) -> LogicalPlan:
        if not (isinstance(node, Filter) and isinstance(node.child, IndexedRelation)):
            return node
        relation = node.child
        key = relation.key_attribute
        keys: list[object] | None = None
        residual: list[Expression] = []
        for conjunct in split_conjuncts(node.condition):
            found = _literal_keys(conjunct, key) if keys is None else None
            if found is not None:
                keys = found
            else:
                residual.append(conjunct)
        if keys is None:
            return node
        lookup: LogicalPlan = IndexLookup(relation, [k for k in keys if k is not None])
        rest = combine_conjuncts(residual)
        return Filter(rest, lookup) if rest is not None else lookup

    return plan.transform_up(rewrite)


# ----------------------------------------------------------------------
# Planner strategy
# ----------------------------------------------------------------------


def _unwrap_indexed(
    plan: LogicalPlan,
) -> tuple[IndexedRelation, list[int] | None] | None:
    """Recognize an IndexedRelation, possibly under a column-pruning
    Project; returns (relation, selected ordinals or None)."""
    if isinstance(plan, IndexedRelation):
        return plan, None
    if isinstance(plan, Project) and isinstance(plan.child, IndexedRelation):
        relation = plan.child
        positions = {a.expr_id: i for i, a in enumerate(relation.output())}
        columns: list[int] = []
        for expr in plan.project_list:
            if not isinstance(expr, Attribute) or expr.expr_id not in positions:
                return None
            columns.append(positions[expr.expr_id])
        return relation, columns
    return None


def _plan_indexed_join(join: Join, planner: Planner) -> PhysicalPlan | None:
    if join.how != "inner":
        return None
    keys = extract_equi_join_keys(join)
    if keys is None:
        return None
    left_keys, right_keys, extra = keys

    for build_on_left in (True, False):
        side = join.left if build_on_left else join.right
        probe_side = join.right if build_on_left else join.left
        unwrapped = _unwrap_indexed(side)
        if unwrapped is None:
            continue
        relation, build_columns = unwrapped
        key_attr = relation.key_attribute
        own_keys = left_keys if build_on_left else right_keys
        other_keys = right_keys if build_on_left else left_keys

        probe_key: Expression | None = None
        residual_pairs: list[Expression] = []
        for own, other in zip(own_keys, other_keys):
            stripped = strip_alias(own)
            if (
                probe_key is None
                and isinstance(stripped, Attribute)
                and stripped.expr_id == key_attr.expr_id
            ):
                probe_key = other
            else:
                residual_pairs.append(EqualTo(own, other))
        if probe_key is None:
            continue

        conditions = list(residual_pairs)
        if extra is not None:
            conditions.append(extra)
        extra_condition = combine_conjuncts(conditions)

        probe_plan = planner.plan(probe_side)
        build_output = side.output()
        return IndexedJoinExec(
            planner.ctx,
            relation.version,
            build_output,
            probe_plan,
            probe_key,
            build_on_left,
            extra_condition,
            broadcast_threshold=planner.config.broadcast_threshold,
            probe_rows_estimate=estimate_rows(probe_side),
            build_columns=build_columns,
        )
    return None


def _vanilla_planner(planner: Planner) -> Planner:
    """A planner with no extension strategies — the transformToRowRDD
    path of Figure 1, guaranteed free of indexed operators."""
    return Planner(planner.session)


def _guard(
    primary: PhysicalPlan,
    planner: Planner,
    fallback_logical: LogicalPlan,
    label: str,
) -> PhysicalPlan:
    """Wrap an indexed operator for graceful degradation, if enabled."""
    if not planner.config.index_fallback:
        return primary

    def build_fallback() -> PhysicalPlan:
        return _vanilla_planner(planner).plan(fallback_logical)

    return GuardedIndexExec(primary, build_fallback, label)


def indexed_strategy(plan: LogicalPlan, planner: Planner) -> PhysicalPlan | None:
    """Lower indexed logical nodes; return None to fall back to the
    vanilla strategy (paper Figure 1's dual execution paths).

    When ``Config.index_fallback`` is on, lookup and join operators are
    wrapped in :class:`GuardedIndexExec` so a *runtime* index failure
    degrades to the equivalent vanilla plan instead of failing the
    query."""
    if isinstance(plan, IndexLookup):
        lookup_exec: PhysicalPlan = IndexLookupExec(
            planner.ctx, plan.relation.version, plan.keys, plan.output()
        )
        if not plan.keys:
            return lookup_exec
        equivalent = Filter(
            In(plan.relation.key_attribute, [Literal(k) for k in plan.keys]),
            plan.relation,
        )
        return _guard(lookup_exec, planner, equivalent, "lookup")
    if isinstance(plan, Filter) and isinstance(plan.child, IndexLookup):
        child = indexed_strategy(plan.child, planner)
        assert child is not None
        return FilterExec(plan.condition, child)
    if isinstance(plan, IndexedRelation):
        return IndexedScanExec(planner.ctx, plan.version, plan.output())
    if isinstance(plan, Project):
        unwrapped = _unwrap_indexed(plan)
        if unwrapped is not None:
            relation, columns = unwrapped
            return IndexedScanExec(planner.ctx, relation.version, plan.output(), columns)
        return None
    if isinstance(plan, Join):
        join_exec = _plan_indexed_join(plan, planner)
        if join_exec is None:
            return None
        return _guard(join_exec, planner, plan, "join")
    return None


# ----------------------------------------------------------------------
# Session wiring
# ----------------------------------------------------------------------


def enable_indexing(session: "object") -> None:
    """Inject the indexed rule + strategy into a session and add the
    ``DataFrame.create_index`` method (the implicit-conversion analogue
    of Listing 1's ``regularDF.createIndex``)."""
    from repro.sql.dataframe import DataFrame
    from repro.sql.session import Session

    assert isinstance(session, Session)
    if index_lookup_rewrite not in session.extensions.optimizer_rules:
        session.extensions.inject_optimizer_rule(index_lookup_rewrite)
    if indexed_strategy not in session.extensions.planner_strategies:
        session.extensions.inject_planner_strategy(indexed_strategy)
    session._rebuild_pipeline()

    if not hasattr(DataFrame, "create_index"):
        def _create_index(self: DataFrame, column: str | int, num_partitions: int | None = None):
            return create_index(self, column, num_partitions)

        DataFrame.create_index = _create_index  # type: ignore[attr-defined]
