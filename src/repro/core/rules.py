"""Catalyst integration: index-aware optimizer rule and planner strategy.

Paper §2, *Integration with Catalyst*: the library adds optimization
rules so that regular SQL / DataFrame queries become index-aware —
equality filters on the indexed column turn into cTrie lookups,
equi-joins against an indexed relation turn into indexed joins with
the index as the pre-built build side, and everything else falls back
to vanilla execution on top of the row-batch scan.

:func:`enable_indexing` performs the whole injection on a session —
the Python analogue of importing the library's Scala implicits.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.indexed_df import create_index
from repro.core.physical import (
    GuardedIndexExec,
    IndexedJoinExec,
    IndexedScanExec,
    IndexLookupExec,
)
from repro.core.relation import IndexedRelation
from repro.index.bitmap import (
    compile_bitmap_program,
    evaluate_program,
    program_ordinals,
)
from repro.index.registry import bitmap_registry
from repro.sql.expressions import (
    Attribute,
    EqualTo,
    Expression,
    In,
    Literal,
    combine_conjuncts,
    split_conjuncts,
    strip_alias,
)
from repro.sql.logical import Filter, Join, LogicalPlan, Project
from repro.sql.physical import (
    BitmapIndexAndExec,
    BitmapScanExec,
    FilterExec,
    PhysicalPlan,
    ProjectExec,
)
from repro.sql.planner import Planner, estimate_rows, extract_equi_join_keys
from repro.stats import extract_pruning_predicates

#: Cost-model weight of one bitmap row fetch (pointer resolution plus a
#: single-row decode) relative to one sequentially scanned row. The
#: bitmap plan wins when ``selected_rows * _BITMAP_FETCH_COST`` beats
#: the rival's row count (zone-map-pruned scan estimate, or the cTrie
#: lookup's chain estimate).
_BITMAP_FETCH_COST = 4


class IndexLookup(LogicalPlan):
    """Logical point lookup: ``key IN literals`` on the indexed column.

    Produced by :func:`index_lookup_rewrite`; lowered to
    :class:`~repro.core.physical.IndexLookupExec` by the strategy.
    """

    def __init__(self, relation: IndexedRelation, keys: Sequence[object]):
        self.relation = relation
        self.keys = list(keys)

    def output(self) -> list[Attribute]:
        return self.relation.output()

    def estimated_rows(self) -> int:
        """Keys × average chain length (rows per distinct key)."""
        total = self.relation.version.row_count()
        distinct = sum(
            snapshot.distinct_keys for snapshot in self.relation.version.snapshots
        )
        average_chain = max(1, total // max(1, distinct))
        return len(self.keys) * average_chain

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "IndexLookup":
        return self

    def describe(self) -> str:
        return f"IndexLookup[{self.relation.key_attribute!r} IN {self.keys!r}]"


# ----------------------------------------------------------------------
# Logical rule
# ----------------------------------------------------------------------


def _literal_keys(conjunct: Expression, key: Attribute) -> list[object] | None:
    """Keys if ``conjunct`` is an equality/IN on the indexed column."""
    if isinstance(conjunct, EqualTo):
        left, right = conjunct.left, conjunct.right
        if isinstance(left, Attribute) and left.expr_id == key.expr_id and isinstance(
            right, Literal
        ):
            return [right.value]
        if isinstance(right, Attribute) and right.expr_id == key.expr_id and isinstance(
            left, Literal
        ):
            return [left.value]
    if isinstance(conjunct, In):
        if (
            isinstance(conjunct.value, Attribute)
            and conjunct.value.expr_id == key.expr_id
            and all(isinstance(o, Literal) for o in conjunct.options)
        ):
            return [o.value for o in conjunct.options]  # type: ignore[union-attr]
    return None


def index_lookup_rewrite(plan: LogicalPlan) -> LogicalPlan:
    """Rewrite ``Filter(key = lit, IndexedRelation)`` into a logical
    :class:`IndexLookup` (plus a residual filter if needed)."""

    def rewrite(node: LogicalPlan) -> LogicalPlan:
        if not (isinstance(node, Filter) and isinstance(node.child, IndexedRelation)):
            return node
        relation = node.child
        key = relation.key_attribute
        keys: list[object] | None = None
        residual: list[Expression] = []
        for conjunct in split_conjuncts(node.condition):
            found = _literal_keys(conjunct, key) if keys is None else None
            if found is not None:
                keys = found
            else:
                residual.append(conjunct)
        if keys is None:
            return node
        lookup: LogicalPlan = IndexLookup(relation, [k for k in keys if k is not None])
        rest = combine_conjuncts(residual)
        return Filter(rest, lookup) if rest is not None else lookup

    return plan.transform_up(rewrite)


# ----------------------------------------------------------------------
# Planner strategy
# ----------------------------------------------------------------------


def _unwrap_indexed(
    plan: LogicalPlan,
) -> tuple[IndexedRelation, list[int] | None] | None:
    """Recognize an IndexedRelation, possibly under a column-pruning
    Project; returns (relation, selected ordinals or None)."""
    if isinstance(plan, IndexedRelation):
        return plan, None
    if isinstance(plan, Project) and isinstance(plan.child, IndexedRelation):
        relation = plan.child
        positions = {a.expr_id: i for i, a in enumerate(relation.output())}
        columns: list[int] = []
        for expr in plan.project_list:
            if not isinstance(expr, Attribute) or expr.expr_id not in positions:
                return None
            columns.append(positions[expr.expr_id])
        return relation, columns
    return None


def _plan_indexed_join(join: Join, planner: Planner) -> PhysicalPlan | None:
    if join.how != "inner":
        return None
    keys = extract_equi_join_keys(join)
    if keys is None:
        return None
    left_keys, right_keys, extra = keys

    for build_on_left in (True, False):
        side = join.left if build_on_left else join.right
        probe_side = join.right if build_on_left else join.left
        unwrapped = _unwrap_indexed(side)
        if unwrapped is None:
            continue
        relation, build_columns = unwrapped
        key_attr = relation.key_attribute
        own_keys = left_keys if build_on_left else right_keys
        other_keys = right_keys if build_on_left else left_keys

        probe_key: Expression | None = None
        residual_pairs: list[Expression] = []
        for own, other in zip(own_keys, other_keys):
            stripped = strip_alias(own)
            if (
                probe_key is None
                and isinstance(stripped, Attribute)
                and stripped.expr_id == key_attr.expr_id
            ):
                probe_key = other
            else:
                residual_pairs.append(EqualTo(own, other))
        if probe_key is None:
            continue

        conditions = list(residual_pairs)
        if extra is not None:
            conditions.append(extra)
        extra_condition = combine_conjuncts(conditions)

        probe_plan = planner.plan(probe_side)
        build_output = side.output()
        return IndexedJoinExec(
            planner.ctx,
            relation.version,
            build_output,
            probe_plan,
            probe_key,
            build_on_left,
            extra_condition,
            broadcast_threshold=planner.config.broadcast_threshold,
            probe_rows_estimate=estimate_rows(probe_side),
            build_columns=build_columns,
        )
    return None


def _vanilla_planner(planner: Planner) -> Planner:
    """A planner with no extension strategies — the transformToRowRDD
    path of Figure 1, guaranteed free of indexed operators."""
    return Planner(planner.session)


def _guard(
    primary: PhysicalPlan,
    planner: Planner,
    fallback_logical: LogicalPlan,
    label: str,
) -> PhysicalPlan:
    """Wrap an indexed operator for graceful degradation, if enabled."""
    if not planner.config.index_fallback:
        return primary

    def build_fallback() -> PhysicalPlan:
        return _vanilla_planner(planner).plan(fallback_logical)

    return GuardedIndexExec(primary, build_fallback, label)


# ----------------------------------------------------------------------
# Bitmap-index planning (cost-based choice against scan and lookup)
# ----------------------------------------------------------------------


def _bitmap_candidate(
    condition: Expression, relation: IndexedRelation, planner: Planner
) -> dict | None:
    """Compile and evaluate a bitmap program for ``condition``.

    Returns ``None`` when no bitmap plan is *possible* here — the knob
    is off, no snapshot carries bitmap views, no conjunct compiles, or
    some partition cannot evaluate the program soundly (a missing view
    or a value/literal type mismatch; a partial bitmap answer would be
    wrong, so the whole plan is abandoned). Otherwise returns the exact
    per-partition selections plus everything the cost model and the
    exec need. Evaluation happens at plan time: big-int AND/OR over
    whole bitmaps is cheap, and the resulting popcount is an *exact*
    cost signal, not an estimate.
    """
    if not getattr(planner.config, "bitmap_indexes_enabled", True):
        return None
    snapshots = relation.version.snapshots
    if not snapshots:
        return None
    per_part = [getattr(s, "bitmaps", None) or {} for s in snapshots]
    indexed = frozenset().union(*(views.keys() for views in per_part))
    if not indexed:
        return None
    attrs = relation.output()
    program, covered, residual = compile_bitmap_program(condition, attrs, indexed)
    if program is None:
        return None
    selections: list[int] = []
    selected = 0
    for views in per_part:
        bits = evaluate_program(program, views)
        if bits is None:
            return None
        selections.append(bits)
        selected += bits.bit_count()
    ordinals = sorted(program_ordinals(program))
    return {
        "program": program,
        "selections": selections,
        # One view per partition for pointer resolution; any program
        # ordinal works (the pointer array is per partition, not per
        # column), and evaluation just proved every partition has it.
        "views": [views[ordinals[0]] for views in per_part],
        "ordinals": ordinals,
        "selected": selected,
        "total": relation.version.row_count(),
        "residual": combine_conjuncts(residual),
    }


def _scan_rival_rows(
    condition: Expression, relation: IndexedRelation, planner: Planner
) -> int:
    """Rows the zone-map-pruned scan would decode for ``condition``.

    Computed against the snapshot zone maps directly — *without*
    calling ``apply_pruning`` on any exec — so costing a scan that is
    never taken records nothing in the pruning metrics.
    """
    snapshots = relation.version.snapshots
    total = relation.version.row_count()
    if not planner.config.zone_maps_enabled:
        return total
    predicates = extract_pruning_predicates(condition, relation.output())
    if not predicates:
        return total
    return sum(len(s) for s in snapshots if s.may_match(predicates))


def _bitmap_choice(
    condition: Expression,
    relation: IndexedRelation,
    planner: Planner,
    rival_rows: int,
) -> tuple[str, PhysicalPlan | str] | None:
    """Cost the bitmap plan for ``condition`` against ``rival_rows``.

    ``None`` — no bitmap candidate exists (stay silent; the vanilla
    plan is bit-identical to the pre-bitmap planner).
    ``("chosen", exec)`` — the bitmap plan won; ``exec`` is the fetch
    operator with any residual filter already applied above it.
    ``("rejected", reason)`` — a candidate existed but lost; the caller
    must surface the decision (EXPLAIN marker + metrics counter).
    """
    candidate = _bitmap_candidate(condition, relation, planner)
    if candidate is None:
        return None
    cost = candidate["selected"] * _BITMAP_FETCH_COST
    if cost >= rival_rows:
        return ("rejected", f"cost={cost}>=rival={rival_rows}")
    exec_cls = (
        BitmapScanExec if candidate["program"][0] == "pred" else BitmapIndexAndExec
    )
    primary: PhysicalPlan = exec_cls(
        planner.ctx,
        relation.version,
        relation.output(),
        candidate["selections"],
        candidate["views"],
        candidate["ordinals"],
        candidate["selected"],
        candidate["total"],
    )
    if candidate["residual"] is not None:
        primary = FilterExec(candidate["residual"], primary)
    bitmap_registry().record_hit()
    return ("chosen", primary)


def _plan_bitmap_vs_scan(
    plan: LogicalPlan,
    condition: Expression,
    relation: IndexedRelation,
    planner: Planner,
    project_list: "Sequence[Expression] | None" = None,
) -> PhysicalPlan | None:
    """Plan ``Filter(relation)`` (optionally under a Project) with the
    bitmap-vs-pruned-scan cost comparison.

    Returns ``None`` when no bitmap index applies — the vanilla
    strategy then produces the exact pre-bitmap plan. On rejection the
    vanilla plan is replicated here so the losing decision can be
    surfaced: the scan still zone-prunes (recording the usual pruning
    counters), carries an ``index_rejected`` EXPLAIN marker, and the
    rejection is counted in the pruning metrics.
    """
    rival = _scan_rival_rows(condition, relation, planner)
    choice = _bitmap_choice(condition, relation, planner, rival)
    if choice is None:
        return None
    if choice[0] == "chosen":
        guarded = _guard(choice[1], planner, plan, "bitmap")
        if project_list is not None:
            return ProjectExec(project_list, guarded)
        return guarded
    reason = choice[1]
    scan = IndexedScanExec(planner.ctx, relation.version, relation.output())
    scan.apply_pruning(condition)
    scan.mark_index_rejected(reason)
    planner.ctx.pruning_metrics.record_index_rejected()
    if project_list is not None:
        # Replicate the fused filter+project the basic strategy builds
        # (this path is only taken when codegen fusion would apply).
        return ProjectExec(project_list, scan, fused_filter=condition)
    return FilterExec(condition, scan)


def indexed_strategy(plan: LogicalPlan, planner: Planner) -> PhysicalPlan | None:
    """Lower indexed logical nodes; return None to fall back to the
    vanilla strategy (paper Figure 1's dual execution paths).

    When ``Config.index_fallback`` is on, lookup and join operators are
    wrapped in :class:`GuardedIndexExec` so a *runtime* index failure
    degrades to the equivalent vanilla plan instead of failing the
    query."""
    if isinstance(plan, IndexLookup):
        lookup_exec: PhysicalPlan = IndexLookupExec(
            planner.ctx, plan.relation.version, plan.keys, plan.output()
        )
        if not plan.keys:
            return lookup_exec
        equivalent = Filter(
            In(plan.relation.key_attribute, [Literal(k) for k in plan.keys]),
            plan.relation,
        )
        return _guard(lookup_exec, planner, equivalent, "lookup")
    if isinstance(plan, Filter) and isinstance(plan.child, IndexLookup):
        lookup = plan.child
        relation = lookup.relation
        # Bitmap vs cTrie: reconstruct the full pre-rewrite condition
        # (key-IN plus residual) and cost a bitmap plan for it against
        # the cheaper of the pruned scan and the chain-walk lookup.
        full_condition = combine_conjuncts(
            [In(relation.key_attribute, [Literal(k) for k in lookup.keys])]
            + split_conjuncts(plan.condition)
        )
        assert full_condition is not None
        rival = min(
            _scan_rival_rows(full_condition, relation, planner),
            max(1, lookup.estimated_rows()),
        )
        choice = _bitmap_choice(full_condition, relation, planner, rival)
        if choice is not None and choice[0] == "chosen":
            equivalent = Filter(full_condition, relation)
            return _guard(choice[1], planner, equivalent, "bitmap")
        child = indexed_strategy(lookup, planner)
        assert child is not None
        if choice is not None:
            target = child.children[0] if isinstance(child, GuardedIndexExec) else child
            if isinstance(target, IndexLookupExec):
                target.mark_index_rejected(choice[1])
            planner.ctx.pruning_metrics.record_index_rejected()
        return FilterExec(plan.condition, child)
    if isinstance(plan, Filter) and isinstance(plan.child, IndexedRelation):
        # Bitmap vs zone-map-pruned scan. None → the vanilla strategy
        # plans Filter(IndexedScan) exactly as before this rule existed.
        return _plan_bitmap_vs_scan(plan, plan.condition, plan.child, planner)
    if isinstance(plan, IndexedRelation):
        return IndexedScanExec(planner.ctx, plan.version, plan.output())
    if isinstance(plan, Project):
        unwrapped = _unwrap_indexed(plan)
        if unwrapped is not None:
            relation, columns = unwrapped
            return IndexedScanExec(planner.ctx, relation.version, plan.output(), columns)
        if (
            planner.config.codegen_enabled
            and isinstance(plan.child, Filter)
            and isinstance(plan.child.child, IndexedRelation)
        ):
            # With codegen on the basic strategy fuses Project(Filter)
            # into one kernel, planning the grandchild directly — which
            # would bypass the bitmap comparison. Run it here; with
            # codegen off, returning None lets the recursion reach the
            # Filter(IndexedRelation) case above instead.
            return _plan_bitmap_vs_scan(
                plan.child,
                plan.child.condition,
                plan.child.child,
                planner,
                project_list=plan.project_list,
            )
        return None
    if isinstance(plan, Join):
        join_exec = _plan_indexed_join(plan, planner)
        if join_exec is None:
            return None
        return _guard(join_exec, planner, plan, "join")
    return None


# ----------------------------------------------------------------------
# Session wiring
# ----------------------------------------------------------------------


def enable_indexing(session: "object") -> None:
    """Inject the indexed rule + strategy into a session and add the
    ``DataFrame.create_index`` method (the implicit-conversion analogue
    of Listing 1's ``regularDF.createIndex``)."""
    from repro.sql.dataframe import DataFrame
    from repro.sql.session import Session

    assert isinstance(session, Session)
    if index_lookup_rewrite not in session.extensions.optimizer_rules:
        session.extensions.inject_optimizer_rule(index_lookup_rewrite)
    if indexed_strategy not in session.extensions.planner_strategies:
        session.extensions.inject_planner_strategy(indexed_strategy)
    session._rebuild_pipeline()

    if not hasattr(DataFrame, "create_index"):
        def _create_index(
            self: DataFrame,
            column: str | int,
            num_partitions: int | None = None,
            kind: str = "ctrie",
        ):
            return create_index(self, column, num_partitions, kind=kind)

        DataFrame.create_index = _create_index  # type: ignore[attr-defined]
