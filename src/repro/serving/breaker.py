"""Circuit breakers: fast-fail persistent fault sites, then probe.

A breaker guards one named fault site (``"shuffle.fetch"``,
``"index.fallback"``, ``"wal.fsync"``). The classic three-state
machine:

* **CLOSED** — healthy. Calls pass; consecutive failures are counted
  and ``serving_breaker_failures`` of them trip the breaker.
* **OPEN** — persistent failure. Calls fail fast (no retries burned,
  no pool slots drained) for ``serving_breaker_reset_s``.
* **HALF_OPEN** — the reset window elapsed; exactly one *probe* call is
  let through. Success closes the breaker, failure reopens it for
  another window.

The ``serving.breaker_probe`` chaos site makes probes themselves
injectable: a fired draw counts the granted probe as an immediate
failure, forcing the OPEN → HALF_OPEN → OPEN loop tests exercise.

Callers use the pair ``allow()`` / ``record_success()`` /
``record_failure()``, or :meth:`guard` to raise a typed
:class:`~repro.errors.CircuitOpenError` carrying the retry-after hint.
"""

from __future__ import annotations

import threading
import time

from repro.errors import CircuitOpenError
from repro.faults import NULL_INJECTOR, FaultInjector

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Three-state breaker for one fault site. Thread-safe."""

    def __init__(
        self,
        site: str,
        failure_threshold: int,
        reset_s: float,
        injector: FaultInjector | None = None,
        clock=time.monotonic,
    ):
        self.site = site
        self._threshold = failure_threshold
        self._reset_s = reset_s
        self._injector = injector or NULL_INJECTOR
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED  # guarded-by: _lock
        self._failures = 0  # guarded-by: _lock
        self._opened_at = 0.0  # guarded-by: _lock
        self._probe_at = 0.0  # guarded-by: _lock
        # -- counters surfaced by snapshot() --
        self.trips = 0  # guarded-by: _lock
        self.fast_fails = 0  # guarded-by: _lock
        self.probes = 0  # guarded-by: _lock
        self.probes_failed = 0  # guarded-by: _lock

    # ------------------------------------------------------------------

    def _reopen(self, now: float) -> None:  # requires-lock: _lock
        self._state = OPEN
        self._opened_at = now
        self._failures = 0

    def allow(self) -> bool:
        """May this call proceed? False means fail fast."""
        with self._lock:
            if self._state == CLOSED:
                return True
            now = self._clock()
            if self._state == OPEN:
                if now - self._opened_at < self._reset_s:
                    self.fast_fails += 1
                    return False
                self._state = HALF_OPEN
                self._probe_at = now
            elif now - self._probe_at >= self._reset_s:
                # A probe was granted but its outcome never recorded
                # (caller died): don't stay stuck — grant another.
                self._probe_at = now
            else:
                self.fast_fails += 1
                return False
            # HALF_OPEN with the probe slot ours.
            self.probes += 1
            if self._injector.should_fire("serving.breaker_probe"):
                # Injected probe failure: the probe is consumed and
                # fails before the caller even runs it.
                self.probes_failed += 1
                self._reopen(now)
                return False
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state != CLOSED:
                self._state = CLOSED

    def record_failure(self) -> None:
        with self._lock:
            now = self._clock()
            if self._state == HALF_OPEN:
                self.probes_failed += 1
                self._reopen(now)
                return
            if self._state == OPEN:
                return
            self._failures += 1
            if self._failures >= self._threshold:
                self.trips += 1
                self._reopen(now)

    # ------------------------------------------------------------------

    def retry_after(self) -> float:
        """Seconds until the next probe opportunity (0 when closed)."""
        with self._lock:
            if self._state == CLOSED:
                return 0.0
            reference = self._opened_at if self._state == OPEN else self._probe_at
            return max(0.0, reference + self._reset_s - self._clock())

    def guard(self) -> None:
        """Raise :class:`CircuitOpenError` unless the call may proceed."""
        if not self.allow():
            raise CircuitOpenError(self.site, self.retry_after())

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> dict[str, int | str]:
        with self._lock:
            return {
                "state": self._state,
                "failures": self._failures,
                "trips": self.trips,
                "fast_fails": self.fast_fails,
                "probes": self.probes,
                "probes_failed": self.probes_failed,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.site!r}, state={self.state})"
