"""The serving runtime: admission → execution → degradation.

One :class:`ServingRuntime` per :class:`~repro.sql.session.Session`
(created only when ``Config.serving_enabled``). ``Session.serve()``
funnels every query through :meth:`ServingRuntime.execute`:

1. **admit** — the admission controller grants a slot or sheds the
   query (:class:`~repro.errors.QueryRejectedError`);
2. **plan** — analyze/optimize/plan as usual, then the deadline-aware
   degradation pass: when zone-map row estimates predict the exact scan
   blows the remaining deadline, sampling-capable scans are shrunk to a
   strided partition subset and the plan carries a ``degraded=True``
   marker (visible in ``last_execution_plan``);
3. **execute** — the query context is activated on the driver thread;
   the scheduler propagates it into pool tasks, and every poll site
   (driver loops, shuffle fetch, codegen chunk loops) enforces the
   deadline / cancellation cooperatively;
4. **settle** — slots, memory charges, and queue positions are released
   on every exit path, success or typed failure.

The runtime also owns the per-site :class:`CircuitBreaker` registry
(index fallback, shuffle fetch, WAL fsync) — see
:mod:`repro.serving.breaker`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import QueryCancelledError, QueryRejectedError
from repro.serving.admission import AdmissionController
from repro.serving.breaker import CircuitBreaker
from repro.serving.context import QueryContext, activate, deactivate
from repro.serving.memory import MemoryGovernor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.dataframe import DataFrame
    from repro.sql.session import Session


@dataclass
class ServingResult:
    """Outcome of one served query."""

    query_id: str
    tenant: str
    rows: list[tuple]
    degraded: bool
    sample_fraction: float | None
    elapsed_s: float

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class ServingMetrics:
    """Cumulative front-end counters."""

    submitted: int = 0  # guarded-by: _lock
    completed: int = 0  # guarded-by: _lock
    rejected: int = 0  # guarded-by: _lock
    cancelled: int = 0  # guarded-by: _lock
    deadline_cancelled: int = 0  # guarded-by: _lock
    memory_cancelled: int = 0  # guarded-by: _lock
    degraded: int = 0  # guarded-by: _lock
    failed: int = 0  # guarded-by: _lock
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + by)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                name: getattr(self, name)
                for name in (
                    "submitted",
                    "completed",
                    "rejected",
                    "cancelled",
                    "deadline_cancelled",
                    "memory_cancelled",
                    "degraded",
                    "failed",
                )
            }


def _walk(plan: Any):
    yield plan
    for child in getattr(plan, "children", ()):
        yield from _walk(child)


class ServingRuntime:
    """Resource governance between one session and its scheduler."""

    def __init__(self, session: "Session"):
        self._session = session
        self._config = session.config
        self._injector = session.ctx.fault_injector
        self.admission = AdmissionController(self._config, self._injector)
        self.memory = MemoryGovernor(self._config)
        self.metrics = ServingMetrics()
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}  # guarded-by: _lock
        self._active: dict[str, QueryContext] = {}  # guarded-by: _lock
        # Make the runtime reachable from the engine side: the scheduler
        # consults breakers, GuardedIndexExec reads ctx.serving.
        session.ctx.serving = self
        session.ctx.scheduler.serving = self

    # ------------------------------------------------------------------
    # Breakers
    # ------------------------------------------------------------------

    def breaker(self, site: str) -> CircuitBreaker:
        """The breaker guarding ``site`` (created on first use)."""
        with self._lock:
            found = self._breakers.get(site)
            if found is None:
                found = self._breakers[site] = CircuitBreaker(
                    site,
                    self._config.serving_breaker_failures,
                    self._config.serving_breaker_reset_s,
                    self._injector,
                )
            return found

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------

    def execute(
        self,
        text: str,
        *,
        tenant: str = "default",
        deadline_s: float | None = None,
        priority: int = 0,
    ) -> ServingResult:
        """Run one SQL query under full resource governance."""
        if deadline_s is None:
            deadline_s = self._config.serving_default_deadline_s
        query = QueryContext.create(
            tenant=tenant, priority=priority, deadline_s=deadline_s
        )
        query.governor = self.memory
        self.metrics.bump("submitted")
        start = time.monotonic()
        try:
            self.admission.admit(query)
        except QueryRejectedError:
            self.metrics.bump("rejected")
            raise
        except QueryCancelledError as exc:
            self._note_cancelled(exc)
            raise
        try:
            self.memory.register(query)
            with self._lock:
                self._active[query.query_id] = query
            if self._injector.should_fire("serving.cancel"):
                query.cancel("injected cancellation")
            token = activate(query)
            try:
                df = self._session.sql(text)
                physical, degraded, fraction = self._plan(df, query)
                query.check()
                rows = physical.execute().collect()
            finally:
                deactivate(token)
        except QueryCancelledError as exc:
            self._note_cancelled(exc)
            raise
        except QueryRejectedError:
            self.metrics.bump("rejected")
            raise
        except BaseException:
            self.metrics.bump("failed")
            raise
        finally:
            with self._lock:
                self._active.pop(query.query_id, None)
            self.memory.unregister(query)
            self.admission.release(query)
        self.metrics.bump("completed")
        if degraded:
            self.metrics.bump("degraded")
        return ServingResult(
            query_id=query.query_id,
            tenant=tenant,
            rows=rows,
            degraded=degraded,
            sample_fraction=fraction,
            elapsed_s=time.monotonic() - start,
        )

    def _note_cancelled(self, exc: QueryCancelledError) -> None:
        self.metrics.bump("cancelled")
        if exc.reason == "deadline":
            self.metrics.bump("deadline_cancelled")
        elif exc.reason.startswith("memory"):
            self.metrics.bump("memory_cancelled")

    def cancel_all(self, reason: str = "shutdown") -> int:
        """Cancel every in-flight query (session stop / drain)."""
        with self._lock:
            active = list(self._active.values())
        for query in active:
            query.cancel(reason)
        return len(active)

    # ------------------------------------------------------------------
    # Planning + graceful degradation
    # ------------------------------------------------------------------

    def _plan(
        self, df: "DataFrame", query: QueryContext
    ) -> tuple[Any, bool, float | None]:
        session = self._session
        analyzed = df.analyzed_plan()
        optimized = session.optimize_plan(analyzed)
        physical = session.planner.plan(optimized)
        degraded, fraction = self._maybe_degrade(physical, query)
        # Mirror DataFrame._execute: runtime markers (sampling included)
        # stay inspectable through last_execution_plan().
        df._last_physical = physical
        return physical, degraded, fraction

    def _maybe_degrade(
        self, physical: Any, query: QueryContext
    ) -> tuple[bool, float | None]:
        """Shrink sampling-capable scans when the exact plan cannot
        finish inside the remaining deadline (zone-map row estimates ×
        the calibrated ``serving_scan_rows_per_s`` throughput)."""
        if not self._config.serving_degrade_enabled:
            return False, None
        remaining = query.remaining()
        if remaining is None:
            return False, None
        scans = [
            node
            for node in _walk(physical)
            if callable(getattr(node, "apply_sampling", None))
        ]
        if not scans:
            return False, None
        estimated = 0
        for node in scans:
            rows = node.estimated_rows()
            if rows is not None:
                estimated += rows
        if estimated <= 0:
            return False, None
        rate = self._config.serving_scan_rows_per_s
        if estimated / rate <= max(remaining, 0.0):
            return False, None
        budget_rows = max(remaining, 0.0) * rate
        fraction = max(
            self._config.serving_min_sample_fraction,
            min(1.0, budget_rows / estimated),
        )
        applied = False
        for node in scans:
            applied = node.apply_sampling(fraction) or applied
        if not applied:
            return False, None
        return True, fraction

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            breakers = {
                site: breaker.snapshot() for site, breaker in self._breakers.items()
            }
        from repro.index.registry import bitmap_registry

        return {
            "serving": self.metrics.snapshot(),
            "admission": self.admission.snapshot(),
            "memory": self.memory.snapshot(),
            "breakers": breakers,
            # Shared bitmap arrangements (builds/shares/hits) so the
            # amortization across concurrent sessions is observable.
            "index_sharing": bitmap_registry().snapshot(),
        }
