"""Admission control: bounded queue, tenant quotas, load shedding.

The controller sits in front of query execution. A query either gets a
slot (bounded global and per-tenant concurrency), waits in a bounded
priority queue, or is **shed** with a typed
:class:`~repro.errors.QueryRejectedError` carrying a retry-after hint —
never an unbounded wait. Waiters poll their cancellation token, so a
query cancelled (or past its deadline) while queued leaves the queue
immediately instead of occupying a slot it can no longer use.

Ordering: waiters are served highest priority first, FIFO within a
priority. A waiter blocked only by its *tenant* cap does not block
other tenants (no head-of-line blocking across tenants): the first
waiter in order whose tenant has headroom is granted.
"""

from __future__ import annotations

import itertools
import threading
import time
from bisect import insort

from repro.config import Config
from repro.errors import InjectedFault, QueryRejectedError
from repro.faults import NULL_INJECTOR, FaultInjector
from repro.serving.context import QueryContext

#: Waiter poll tick: bounds how late a queued query notices cancellation.
_WAIT_TICK_S = 0.02


class _Waiter:
    __slots__ = ("key", "query")

    def __init__(self, key: tuple[int, int], query: QueryContext):
        self.key = key
        self.query = query

    def __lt__(self, other: "_Waiter") -> bool:
        return self.key < other.key


class AdmissionController:
    """Grants execution slots; sheds load beyond the configured budgets."""

    def __init__(
        self,
        config: Config,
        injector: FaultInjector | None = None,
        clock=time.monotonic,
    ):
        self._config = config
        self._injector = injector or NULL_INJECTOR
        self._clock = clock
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._running = 0  # guarded-by: _cond
        self._per_tenant: dict[str, int] = {}  # guarded-by: _cond
        self._waiters: list[_Waiter] = []  # guarded-by: _cond
        # -- counters surfaced by snapshot() --
        self.submitted = 0  # guarded-by: _cond
        self.admitted = 0  # guarded-by: _cond
        self.rejected_queue_full = 0  # guarded-by: _cond
        self.rejected_timeout = 0  # guarded-by: _cond
        self.rejected_injected = 0  # guarded-by: _cond
        self.cancelled_in_queue = 0  # guarded-by: _cond
        self.peak_queue_depth = 0  # guarded-by: _cond

    # ------------------------------------------------------------------

    def _tenant_running(self, tenant: str) -> int:  # requires-lock: _cond
        return self._per_tenant.get(tenant, 0)

    def _first_grantable(self) -> _Waiter | None:  # requires-lock: _cond
        """First waiter (in priority order) with global + tenant headroom."""
        if self._running >= self._config.serving_max_concurrent:
            return None
        cap = self._config.serving_tenant_max_concurrent
        for waiter in self._waiters:
            if self._tenant_running(waiter.query.tenant) < cap:
                return waiter
        return None

    def _grant(self, waiter: _Waiter) -> None:  # requires-lock: _cond
        self._waiters.remove(waiter)
        self._running += 1
        tenant = waiter.query.tenant
        self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1
        self.admitted += 1

    def _retry_after(self) -> float:
        """Backoff hint: the queue drain horizon, scaled by depth."""
        with self._cond:
            depth = len(self._waiters)
        return self._config.serving_queue_timeout_s * max(1, depth)

    # ------------------------------------------------------------------

    def admit(self, query: QueryContext) -> None:
        """Block until ``query`` holds a slot, or shed it.

        Raises :class:`QueryRejectedError` when the queue is full or the
        wait budget (queue timeout, capped by the query's own deadline)
        expires, and :class:`~repro.errors.QueryCancelledError` when the
        query is cancelled while waiting. On success the caller owns a
        slot and must :meth:`release` it.
        """
        try:
            self._injector.maybe_fail("serving.admit")
        except InjectedFault as exc:
            with self._cond:
                self.submitted += 1
                self.rejected_injected += 1
            raise QueryRejectedError(
                "injected admission fault", self._retry_after(), query.tenant
            ) from exc

        timeout = self._config.serving_queue_timeout_s
        rem = query.remaining()
        if rem is not None:
            timeout = min(timeout, max(rem, 0.0))
        give_up = self._clock() + timeout

        with self._cond:
            self.submitted += 1
            waiter = _Waiter((-query.priority, next(self._seq)), query)
            insort(self._waiters, waiter)
            # Immediate grant first: queue-depth limits *waiting*
            # queries, so a query a free slot can absorb is never shed
            # even with a zero-depth queue.
            if self._first_grantable() is waiter:
                self._grant(waiter)
                return
            if len(self._waiters) > self._config.serving_queue_depth:
                self._waiters.remove(waiter)
                self.rejected_queue_full += 1
                raise QueryRejectedError(
                    f"admission queue full ({len(self._waiters)} waiting)",
                    self._config.serving_queue_timeout_s * (len(self._waiters) + 1),
                    query.tenant,
                )
            self.peak_queue_depth = max(self.peak_queue_depth, len(self._waiters))
            try:
                while True:
                    # Self-grant only: each waiter claims its own slot
                    # when it is the first in order with headroom, so no
                    # thread ever holds a grant it does not know about.
                    if self._first_grantable() is waiter:
                        self._grant(waiter)
                        return
                    try:
                        query.check()
                    except BaseException:
                        self.cancelled_in_queue += 1
                        raise
                    now = self._clock()
                    if now >= give_up:
                        self.rejected_timeout += 1
                        raise QueryRejectedError(
                            f"no slot within {timeout:.3f}s "
                            f"(running={self._running}, "
                            f"queued={len(self._waiters)})",
                            self._config.serving_queue_timeout_s
                            * max(1, len(self._waiters)),
                            query.tenant,
                        )
                    self._cond.wait(timeout=min(_WAIT_TICK_S, give_up - now))
            except BaseException:
                if waiter in self._waiters:
                    self._waiters.remove(waiter)
                self._cond.notify_all()
                raise

    def release(self, query: QueryContext) -> None:
        """Return ``query``'s slot; wakes queued waiters."""
        with self._cond:
            self._running = max(0, self._running - 1)
            tenant = query.tenant
            left = self._per_tenant.get(tenant, 0) - 1
            if left > 0:
                self._per_tenant[tenant] = left
            else:
                self._per_tenant.pop(tenant, None)
            self._cond.notify_all()

    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        with self._cond:
            return {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "rejected_queue_full": self.rejected_queue_full,
                "rejected_timeout": self.rejected_timeout,
                "rejected_injected": self.rejected_injected,
                "cancelled_in_queue": self.cancelled_in_queue,
                "running": self._running,
                "queued": len(self._waiters),
                "peak_queue_depth": self.peak_queue_depth,
            }
