"""Memory governor: per-query and global allocation budgets.

Allocation sites (shuffle map-output writes, broadcast values, cached
result materialization) charge their estimated bytes against the query
active on the thread. Budgets are enforced with a **kill-largest-query**
policy: breaching the per-query budget cancels the charging query
itself; breaching the *global* budget cancels whichever registered
query holds the most bytes — by construction the fastest way to bring
the total back under budget, and the query whose loss frees capacity
for the most peers.

Kills are cooperative: the victim's token is cancelled (reason
``"memory"``) and it unwinds at its next poll, releasing its charges
via :meth:`unregister`. When the victim *is* the charging query, the
charge call itself raises :class:`~repro.errors.QueryCancelledError`
immediately.

Charging is best-effort accounting, not an allocator: estimates come
from :func:`repro.engine.cache.estimate_size`-style sampling, and a
query that never allocates past the budget is never touched.
"""

from __future__ import annotations

import threading

from repro.config import Config
from repro.serving.context import QueryContext


class MemoryGovernor:
    """Tracks charged bytes per registered query and globally."""

    def __init__(self, config: Config):
        self._config = config
        self._lock = threading.Lock()
        self._queries: dict[str, QueryContext] = {}  # guarded-by: _lock
        self._usage: dict[str, int] = {}  # guarded-by: _lock
        self._total = 0  # guarded-by: _lock
        # -- counters surfaced by snapshot() --
        self.charged_bytes = 0  # guarded-by: _lock
        self.peak_total = 0  # guarded-by: _lock
        self.per_query_breaches = 0  # guarded-by: _lock
        self.global_breaches = 0  # guarded-by: _lock
        self.kills = 0  # guarded-by: _lock

    # ------------------------------------------------------------------

    def register(self, query: QueryContext) -> None:
        """Start accounting for ``query`` (idempotent)."""
        with self._lock:
            self._queries.setdefault(query.query_id, query)
            self._usage.setdefault(query.query_id, 0)

    def unregister(self, query: QueryContext) -> None:
        """Stop accounting and release every byte ``query`` charged."""
        with self._lock:
            self._queries.pop(query.query_id, None)
            released = self._usage.pop(query.query_id, 0)
            self._total -= released

    def charge(self, query: QueryContext, nbytes: int) -> None:
        """Account ``nbytes`` to ``query``; enforce both budgets.

        Raises :class:`~repro.errors.QueryCancelledError` when the
        enforcement decision kills the charging query itself.
        """
        if nbytes <= 0:
            return
        victim: QueryContext | None = None
        reason = ""
        with self._lock:
            if query.query_id not in self._usage:
                # Unregistered (e.g. charged during teardown): ignore
                # rather than resurrect accounting for a finished query.
                return
            self._usage[query.query_id] += nbytes
            self._total += nbytes
            self.charged_bytes += nbytes
            self.peak_total = max(self.peak_total, self._total)
            used = self._usage[query.query_id]
            if used > self._config.serving_query_memory_bytes:
                self.per_query_breaches += 1
                victim = query
                reason = (
                    f"memory: query used {used} bytes "
                    f"(budget {self._config.serving_query_memory_bytes})"
                )
            elif self._total > self._config.serving_memory_budget_bytes:
                self.global_breaches += 1
                largest_id = max(self._usage, key=lambda q: self._usage[q])
                victim = self._queries.get(largest_id, query)
                reason = (
                    f"memory: global usage {self._total} bytes "
                    f"(budget {self._config.serving_memory_budget_bytes}); "
                    f"killing largest query {largest_id}"
                )
            if victim is not None:
                self.kills += 1
        if victim is not None:
            # Cancel outside the lock: token.cancel takes its own lock
            # and the victim may be mid-charge on another thread.
            victim.cancel(reason)
            if victim is query:
                query.check()

    def usage(self, query: QueryContext) -> int:
        with self._lock:
            return self._usage.get(query.query_id, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "active_queries": len(self._queries),
                "total_bytes": self._total,
                "charged_bytes": self.charged_bytes,
                "peak_total": self.peak_total,
                "per_query_breaches": self.per_query_breaches,
                "global_breaches": self.global_breaches,
                "kills": self.kills,
            }
