"""Overload-safe serving: admission control, deadlines, budgets.

The resource-governance layer between :class:`~repro.sql.session.Session`
and the scheduler (off by default; ``Config.serving_enabled`` /
``REPRO_SERVING=1``). See DESIGN.md §12 for the overload model.
"""

from repro.serving.admission import AdmissionController
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.context import (
    CancellationToken,
    QueryContext,
    activate,
    active,
    check_cancelled,
    current_query,
    deactivate,
)
from repro.serving.memory import MemoryGovernor
from repro.serving.runtime import ServingMetrics, ServingResult, ServingRuntime

__all__ = [
    "AdmissionController",
    "CancellationToken",
    "CircuitBreaker",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "MemoryGovernor",
    "QueryContext",
    "ServingMetrics",
    "ServingResult",
    "ServingRuntime",
    "activate",
    "active",
    "check_cancelled",
    "current_query",
    "deactivate",
]
