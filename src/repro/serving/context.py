"""Per-query context: deadline, priority, cooperative cancellation.

A :class:`QueryContext` is minted by the serving runtime for each
submitted query and *threaded through execution* via a
:class:`~contextvars.ContextVar`. The engine never receives it as an
argument — operators, shuffle fetch loops, and codegen batch loops call
:func:`check_cancelled` at their natural yield points, which is a no-op
(one ContextVar read returning ``None``) when no serving layer is
active, keeping the static engine bit-identical.

Cancellation is **cooperative**: :meth:`CancellationToken.cancel` only
records a reason; the query dies at its next poll, raising
:class:`~repro.errors.QueryCancelledError` from the polling frame so
every layer unwinds and releases its pool slots. The first cancel wins —
later cancels (deadline racing a memory kill) keep the original reason.

Executor pool threads do not inherit the driver's contextvars, so the
scheduler captures :func:`current_query` on the driver and re-activates
it around each task attempt (see ``DAGScheduler``).
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar, Token
from typing import TYPE_CHECKING, Iterator

from repro.errors import QueryCancelledError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.memory import MemoryGovernor

_query_ids = itertools.count(1)


class CancellationToken:
    """One-shot, thread-safe cancellation flag with a reason."""

    __slots__ = ("_lock", "_reason", "_listeners")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._reason: str | None = None  # guarded-by: _lock
        self._listeners: list = []  # guarded-by: _lock

    def cancel(self, reason: str) -> bool:
        """Arm the token; returns True iff this call was the first."""
        with self._lock:
            if self._reason is None:
                self._reason = reason
                listeners = list(self._listeners)
            else:
                return False
        # Outside the lock: listeners (e.g. the cluster backend's
        # shared-memory flag writer) may do arbitrary work.
        for listener in listeners:
            listener(reason)
        return True

    def add_listener(self, fn) -> None:
        """Call ``fn(reason)`` on first cancel — immediately if the
        token is already armed. The cluster backend uses this to mirror
        cancellation into a cross-process shared flag."""
        with self._lock:
            reason = self._reason
            if reason is None:
                self._listeners.append(fn)
        if reason is not None:
            fn(reason)

    def remove_listener(self, fn) -> None:
        with self._lock:
            try:
                self._listeners.remove(fn)
            except ValueError:
                pass

    @property
    def reason(self) -> str | None:
        with self._lock:
            return self._reason

    @property
    def cancelled(self) -> bool:
        return self.reason is not None


class QueryContext:
    """Identity and resource envelope of one served query.

    ``deadline`` is an absolute :func:`time.monotonic` instant (or
    ``None`` for unbounded); ``priority`` orders the admission queue
    (higher first). ``governor`` is set by the serving runtime so
    allocation sites can charge bytes without knowing the runtime.
    """

    __slots__ = (
        "query_id",
        "tenant",
        "priority",
        "deadline",
        "token",
        "governor",
        "_clock",
    )

    def __init__(
        self,
        query_id: str,
        tenant: str,
        priority: int,
        deadline: float | None,
        clock=time.monotonic,
    ):
        self.query_id = query_id
        self.tenant = tenant
        self.priority = priority
        self.deadline = deadline
        self.token = CancellationToken()
        self.governor: "MemoryGovernor | None" = None
        self._clock = clock

    @classmethod
    def create(
        cls,
        *,
        tenant: str = "default",
        priority: int = 0,
        deadline_s: float | None = None,
        clock=time.monotonic,
    ) -> "QueryContext":
        deadline = None if deadline_s is None else clock() + deadline_s
        return cls(f"q{next(_query_ids)}", tenant, priority, deadline, clock)

    def remaining(self) -> float | None:
        """Seconds until the deadline (may be negative); None if unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - self._clock()

    def expired(self) -> bool:
        return self.deadline is not None and self._clock() > self.deadline

    def cancel(self, reason: str) -> bool:
        return self.token.cancel(reason)

    def check(self) -> None:
        """The cooperative poll: raise if cancelled or past deadline."""
        reason = self.token.reason
        if reason is None and self.expired():
            self.token.cancel("deadline")
            reason = self.token.reason
        if reason is not None:
            raise QueryCancelledError(self.query_id, reason)

    def __repr__(self) -> str:
        return (
            f"QueryContext({self.query_id}, tenant={self.tenant!r}, "
            f"priority={self.priority})"
        )


#: The query active on the current thread of control (None = static
#: engine, every poll site short-circuits).
_CURRENT: ContextVar[QueryContext | None] = ContextVar(
    "repro_serving_query", default=None
)


def current_query() -> QueryContext | None:
    return _CURRENT.get()


def activate(query: QueryContext) -> Token:
    """Bind ``query`` to this thread; pair with :func:`deactivate`."""
    return _CURRENT.set(query)


def deactivate(token: Token) -> None:
    _CURRENT.reset(token)


@contextmanager
def active(query: QueryContext) -> Iterator[QueryContext]:
    token = _CURRENT.set(query)
    try:
        yield query
    finally:
        _CURRENT.reset(token)


def check_cancelled() -> None:
    """Poll the active query, if any (the engine-side entry point)."""
    query = _CURRENT.get()
    if query is not None:
        query.check()
