"""Process-boundary escape analysis (rules XP001–XP003).

The PR 7 task codec ships closures and leaf data into worker
processes; PR 8 ships bitmap arrangements inside partition snapshots
over shared memory. Two invariants keep that sound:

* shipped objects must be *plain data* — a lock, a thread, or an open
  file handle inside a shipped attribute either refuses to pickle (at
  best) or arrives as a dead replica that silently guards nothing;
* worker-side code must treat shared-memory views as read-only — the
  driver owns mutation, and a worker-side write is invisible
  corruption of another process's snapshot.

Rules:

* **XP001** — a class marked ``# analysis: shipped`` (its instances
  cross the codec boundary) whose ``__init__`` or class body creates a
  lock/condition/thread (``threading.*``), an open file
  (``open(...)``), or a socket and stores it on ``self``;
* **XP002** — worker-side code (``cluster/worker.py`` plus any module
  or class marked ``# analysis: worker-side``) calling a mutating
  method on, or assigning an attribute of, a name that denotes a
  shared view (contains ``view``, ``snapshot``, or ``batches``);
* **XP003** — worker-side code calling a driver-only singleton
  factory (:data:`DRIVER_SINGLETONS`): the worker would operate on a
  process-local copy that silently diverges from the driver's.
"""

from __future__ import annotations

import ast

from repro.analysis.program import ParsedModule, Program
from repro.analysis.report import Violation

#: Constructors a shipped class must not store.
_FORBIDDEN_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Event", "Semaphore",
     "BoundedSemaphore", "Thread", "open", "socket", "Popen"}
)

#: Mutator names that modify their receiver (the LD002 set, plus the
#: bitmap/zone mutators shared views expose).
_MUTATORS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "popitem", "clear",
     "update", "add", "discard", "setdefault", "sort", "reverse",
     "record", "merge", "seal", "update_row", "rotate", "truncate"}
)

#: Receiver-name substrings that denote shared-memory views.
_VIEW_HINTS = ("view", "snapshot", "batches")

#: Driver-resident singleton factories a worker must never call.
DRIVER_SINGLETONS = frozenset({"bitmap_registry"})

#: Modules that are worker-side by construction.
_WORKER_SUFFIXES = ("cluster/worker.py",)


def _factory_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _check_shipped_class(module: ParsedModule, cls: ast.ClassDef,
                         out: list[Violation]) -> None:
    class_body = set(map(id, cls.body))
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        stores_on_self = any(
            isinstance(t, ast.Attribute)
            and isinstance(t.value, ast.Name)
            and t.value.id == "self"
            for t in node.targets
        )
        if not stores_on_self and id(node) not in class_body:
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        name = _factory_name(value)
        if name in _FORBIDDEN_FACTORIES:
            module.report(
                out, "XP001", node.lineno,
                f"shipped class {cls.name} stores a {name}() — locks, "
                "threads, and handles do not survive the codec boundary",
            )


def _receiver_text(node: ast.expr) -> str | None:
    try:
        return ast.unparse(node).lower()
    except ValueError:  # pragma: no cover
        return None


def _looks_like_view(text: str | None) -> bool:
    return text is not None and any(h in text for h in _VIEW_HINTS)


def _check_worker_scope(module: ParsedModule, root: ast.AST, scope: str,
                        out: list[Violation]) -> None:
    for node in ast.walk(root):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) and _looks_like_view(
                    _receiver_text(target.value)
                ):
                    module.report(
                        out, "XP002", node.lineno,
                        f"{scope} assigns {ast.unparse(target)} — shared "
                        "views are read-only on the worker side",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                if _looks_like_view(_receiver_text(func.value)):
                    module.report(
                        out, "XP002", node.lineno,
                        f"{scope} calls {ast.unparse(func)}() — shared "
                        "views are read-only on the worker side",
                    )
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in DRIVER_SINGLETONS:
                module.report(
                    out, "XP003", node.lineno,
                    f"{scope} calls {name}() — a driver-only singleton; "
                    "the worker's copy would silently diverge",
                )


def check_program(program: Program) -> list[Violation]:
    violations: list[Violation] = []
    for module in program:
        normalized = module.path.replace("\\", "/")
        for cls_name in module.marked_classes("shipped"):
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and node.name == cls_name:
                    _check_shipped_class(module, node, violations)
        worker_module = any(
            normalized.endswith(s) for s in _WORKER_SUFFIXES
        ) or module.module_marked("worker-side")
        if worker_module:
            _check_worker_scope(
                module, module.tree, f"worker-side module {normalized}",
                violations,
            )
            continue
        for cls_name in module.marked_classes("worker-side"):
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef) and node.name == cls_name:
                    _check_worker_scope(
                        module, node, f"worker-side class {cls_name}",
                        violations,
                    )
    return violations
