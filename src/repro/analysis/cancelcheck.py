"""Cancellation-poll coverage (rules CP001–CP002).

Cooperative cancellation (DESIGN.md §12) only works if every code path
that can run for a partition-scale amount of time polls the query
context. The poll sites installed by PR 6 — driver retry loops,
shuffle fetch, codegen chunk boundaries — are conventions, and a new
loop added to any of those modules silently escapes the deadline.
These rules make the obligation explicit:

* a module is **poll-obligated** when its path ends with one of the
  :data:`POLL_OBLIGATED` suffixes or its source carries a standalone
  ``# analysis: poll-obligated`` comment; a class is poll-obligated
  when the marker sits on its ``class`` line;
* **CP001** — inside obligated code, a ``while`` loop, or a ``for``
  loop over a partition/batch-scale iterable (name heuristics in
  :data:`SCALE_HINTS`), whose body neither polls nor calls a
  same-module function that polls (one level deep). Generator
  functions are exempt: a generator runs inside its *consumer's* loop,
  and the consumer's chunk boundary is the poll site (the PR 6
  per-row-cost decision). A ``while`` loop whose every call is a pure
  builtin (``isinstance`` / ``getattr`` / ``len`` …) is exempt too:
  pointer-chasing walks like the scheduler's exception-cause-chain
  scans cannot block and are bounded by the structure they traverse;
* **CP002** — a poll-obligated *module* with no poll call anywhere:
  the obligation is dead, not merely incomplete.

A poll is any call to ``check_cancelled()`` or a ``.check()`` /
``.check_cancelled()`` method (``query.check()``, ``clock.check()``).
"""

from __future__ import annotations

import ast

from repro.analysis.program import ParsedModule, Program
from repro.analysis.report import Violation

#: Path suffixes of the modules the PR 6 design made poll-obligated.
POLL_OBLIGATED = (
    "engine/scheduler.py",
    "engine/shuffle.py",
    "cluster/backend.py",
    "cluster/liveness.py",
    "cluster/shuffle.py",
    "codegen/compiler.py",
)

#: Substrings marking an iterable as partition/batch-scale. A ``for``
#: loop is only a CP001 candidate when its iterable's source text
#: mentions one of these (loops over a handful of predicates or
#: config entries are not poll obligations).
SCALE_HINTS = (
    "partition", "batch", "snapshot", "split", "record", "chunk",
    "candidate", "future", "pending", "bits",
)

_POLL_NAMES = frozenset({"check", "check_cancelled"})

#: Pure builtins that can neither block nor run unbounded work. A
#: ``while`` loop calling only these is structural traversal, not a
#: poll obligation.
_PURE_CALLS = frozenset(
    {"isinstance", "issubclass", "getattr", "hasattr", "len", "id",
     "hash", "type", "repr", "str", "int", "float", "bool", "abs",
     "min", "max", "tuple", "frozenset", "format"}
)


def _only_pure_calls(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if not (isinstance(func, ast.Name) and func.id in _PURE_CALLS):
            return False
    return True


def _is_poll(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "check_cancelled"
    if isinstance(func, ast.Attribute):
        return func.attr in _POLL_NAMES
    return False


def _called_names(node: ast.AST) -> set[str]:
    """Bare names of functions/methods called anywhere under ``node``."""
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            if isinstance(sub.func, ast.Name):
                names.add(sub.func.id)
            elif isinstance(sub.func, ast.Attribute):
                names.add(sub.func.attr)
    return names


def _polls_directly(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Call) and _is_poll(sub) for sub in ast.walk(node)
    )


def _is_generator(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not func:
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _scale_iterable(loop: ast.For, module: ParsedModule) -> bool:
    try:
        text = ast.unparse(loop.iter).lower()
    except ValueError:  # pragma: no cover - unparse is total on parses
        return False
    return any(hint in text for hint in SCALE_HINTS)


class _ModuleIndex:
    """Per-module map: function/method name → polls directly?"""

    def __init__(self, module: ParsedModule):
        self.polls: dict[str, bool] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.polls[node.name] = self.polls.get(node.name, False) or (
                    _polls_directly(node)
                )

    def any_callee_polls(self, names: set[str]) -> bool:
        return any(self.polls.get(name, False) for name in names)


def _obligated_functions(
    module: ParsedModule, whole_module: bool
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function whose body carries the poll obligation."""
    found: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    marked_classes = module.marked_classes("poll-obligated")
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if whole_module:
                found.append(node)
        elif isinstance(node, ast.ClassDef):
            if whole_module or node.name in marked_classes:
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        found.append(stmt)
    return found


def _check_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    module: ParsedModule,
    index: _ModuleIndex,
    out: list[Violation],
) -> None:
    if _is_generator(func):
        return
    # Nested defs carry their own obligation only through the generator
    # exemption; walk them too (closures run on the same thread).
    for node in ast.walk(func):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        if isinstance(node, ast.For) and not _scale_iterable(node, module):
            continue
        if isinstance(node, ast.While) and _only_pure_calls(node):
            continue
        enclosing = _enclosing_function(func, node)
        if enclosing is not None and enclosing is not func and _is_generator(
            enclosing
        ):
            continue
        body = ast.Module(body=node.body, type_ignores=[])
        if _polls_directly(body):
            continue
        if index.any_callee_polls(_called_names(body)):
            continue
        kind = "while" if isinstance(node, ast.While) else "for"
        module.report(
            out, "CP001", node.lineno,
            f"{kind} loop in poll-obligated {func.name}() never polls "
            "cancellation (add check_cancelled() / query.check(), or "
            "make a callee poll)",
        )


def _enclosing_function(
    root: ast.AST, target: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The innermost function definition containing ``target``."""
    result: list[ast.FunctionDef | ast.AsyncFunctionDef | None] = [None]

    def visit(node: ast.AST,
              current: ast.FunctionDef | ast.AsyncFunctionDef | None) -> bool:
        if node is target:
            result[0] = current
            return True
        for child in ast.iter_child_nodes(node):
            inner = current
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = child
            if visit(child, inner):
                return True
        return False

    visit(root, root if isinstance(
        root, (ast.FunctionDef, ast.AsyncFunctionDef)) else None)
    return result[0]


def check_program(program: Program) -> list[Violation]:
    violations: list[Violation] = []
    for module in program:
        normalized = module.path.replace("\\", "/")
        whole_module = any(
            normalized.endswith(suffix) for suffix in POLL_OBLIGATED
        ) or module.module_marked("poll-obligated")
        marked_classes = module.marked_classes("poll-obligated")
        if not whole_module and not marked_classes:
            continue
        index = _ModuleIndex(module)
        if whole_module and not any(index.polls.values()):
            module.report(
                violations, "CP002", 1,
                "poll-obligated module contains no cancellation poll "
                "anywhere (check_cancelled / .check)",
            )
        seen: set[int] = set()
        for func in _obligated_functions(module, whole_module):
            if id(func) in seen:
                continue
            seen.add(id(func))
            _check_function(func, module, index, violations)
    return violations
