"""Project-specific static analysis and runtime sanitizers.

Run the static pass over a tree with ``python -m repro.analysis src/``.
Modules:

* :mod:`repro.analysis.report` — rule registry and Violation records;
* :mod:`repro.analysis.lockcheck` — lock-discipline rules (LD*);
* :mod:`repro.analysis.plancheck` — physical-plan contracts (PC*);
* :mod:`repro.analysis.codegen_rules` — generated-code rules (CG*),
  also called by the compiler on every kernel before ``exec``;
* :mod:`repro.analysis.interleave` — deterministic interleaving driver
  over the instrumented atomics (for tests).

The runtime sanitizers (SZ*) live with the data structures they poison
(:mod:`repro.stats`, :mod:`repro.core.rowbatch`) behind
``Config.sanitizers_enabled``.
"""

from repro.analysis.report import RULES, Violation

__all__ = ["RULES", "Violation"]
