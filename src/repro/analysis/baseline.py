"""Violation baseline: grandfathered findings with mandatory reasons.

A baseline file lets a rule land before every pre-existing finding is
fixed — but unlike the usual "ratchet file" it refuses silent entries:
every line must say *why* the violation is intentional. Format (one
entry per line, ``#`` opens the justification):

    ET002 src/repro/engine/scheduler.py:585  # central retry policy re-raises

* ``RULE path`` suppresses every finding of that rule in the file;
* ``RULE path:line`` suppresses only the finding on that line;
* a missing or empty justification is an **error**, not a suppression;
* entries that no longer match any finding are reported as stale so
  the baseline shrinks instead of fossilizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.report import RULES, Violation


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    line: int | None          # None = whole file
    justification: str
    source_line: int          # line in the baseline file itself

    def matches(self, violation: Violation) -> bool:
        if violation.rule != self.rule:
            return False
        if violation.path.replace("\\", "/") != self.path:
            return False
        return self.line is None or violation.line == self.line


@dataclass
class Baseline:
    entries: list[BaselineEntry]
    errors: list[str]

    def apply(
        self, violations: list[Violation]
    ) -> tuple[list[Violation], list[str]]:
        """(surviving violations, stale-entry warnings)."""
        kept: list[Violation] = []
        hit: set[BaselineEntry] = set()
        for violation in violations:
            entry = next(
                (e for e in self.entries if e.matches(violation)), None
            )
            if entry is None:
                kept.append(violation)
            else:
                hit.add(entry)
        stale = [
            f"baseline:{e.source_line}: stale entry {e.rule} {e.path}"
            + (f":{e.line}" if e.line is not None else "")
            + " (no longer found; remove it)"
            for e in self.entries
            if e not in hit
        ]
        return kept, stale


def parse_baseline(text: str, name: str = "baseline") -> Baseline:
    entries: list[BaselineEntry] = []
    errors: list[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, justification = line.partition("#")
        justification = justification.strip()
        parts = body.split()
        if len(parts) != 2:
            errors.append(
                f"{name}:{lineno}: expected 'RULE path[:line]  # why', "
                f"got {raw!r}"
            )
            continue
        rule, location = parts
        if rule not in RULES:
            errors.append(f"{name}:{lineno}: unknown rule id {rule!r}")
            continue
        if not justification:
            errors.append(
                f"{name}:{lineno}: baseline entry for {rule} has no "
                "justification (append '# <why this is intentional>')"
            )
            continue
        path, _, line_part = location.rpartition(":")
        if path and line_part.isdigit():
            entries.append(
                BaselineEntry(rule, path.replace("\\", "/"),
                              int(line_part), justification, lineno)
            )
        else:
            entries.append(
                BaselineEntry(rule, location.replace("\\", "/"), None,
                              justification, lineno)
            )
    return Baseline(entries, errors)


def load_baseline(path: str | Path) -> Baseline:
    path = Path(path)
    if not path.exists():
        return Baseline([], [f"baseline file {path} does not exist"])
    return parse_baseline(path.read_text(encoding="utf-8"), str(path))
