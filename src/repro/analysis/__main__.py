"""CLI entry point: ``python -m repro.analysis [paths...]``.

Walks the given files/directories and runs every rule family:

* per-file: lock discipline (LD), plan contracts (PC) on ``*.py``;
  generated-code rules (CG) on ``*.gensrc`` kernel captures;
* whole-program (one shared parse of every ``*.py`` file): lock
  ordering (LO), exception taxonomy (ET), cancellation-poll coverage
  (CP), fault-site cross-checks (FS), process-boundary escapes (XP).

Output is one ``path:line: RULE message`` line per finding (or a JSON
document with ``--format json``), exit nonzero if anything was found.

* ``--select`` / ``--ignore`` filter by rule id or family prefix
  (``--select ET,LO`` or ``--ignore CP001``);
* ``--baseline FILE`` suppresses grandfathered findings; every entry
  needs a justification comment and stale entries are reported;
* ``--self-check`` (on by default) compiles representative expression
  kernels through :mod:`repro.codegen`, running the CG rules on real
  emitter output.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import (
    cancelcheck,
    codegen_rules,
    escapecheck,
    lockcheck,
    lockgraph,
    plancheck,
    sitecheck,
    taxonomy,
)
from repro.analysis.baseline import Baseline, load_baseline
from repro.analysis.program import Program
from repro.analysis.report import RULES, Violation

#: Whole-program rule families, run over one shared parse.
PROGRAM_CHECKS = (lockgraph, taxonomy, cancelcheck, sitecheck, escapecheck)


def iter_source_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
            files.extend(sorted(path.rglob("*.gensrc")))
        else:
            files.append(path)
    return files


def _matches(rule: str, patterns: list[str]) -> bool:
    return any(rule == p or rule.startswith(p) for p in patterns)


def check_paths(
    paths: list[str],
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> list[Violation]:
    violations: list[Violation] = []
    py_files: list[Path] = []
    for path in iter_source_files(paths):
        if path.suffix == ".gensrc":
            violations.extend(codegen_rules.check_file(path))
            continue
        py_files.append(path)
        violations.extend(lockcheck.check_file(path))
        violations.extend(plancheck.check_file(path))
    if py_files:
        program = Program.load(py_files)
        for family in PROGRAM_CHECKS:
            violations.extend(family.check_program(program))
    if select:
        violations = [v for v in violations if _matches(v.rule, select)]
    if ignore:
        violations = [v for v in violations if not _matches(v.rule, ignore)]
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def self_check() -> list[str]:
    """Compile representative kernels; return error strings (empty = ok)."""
    from repro.codegen import compile_predicate, compile_projection
    from repro.errors import CodegenError
    from repro.sql import expressions as E
    from repro.sql.types import IntegerType, StringType

    age = E.BoundReference(0, IntegerType(), "age")
    name = E.BoundReference(1, StringType(), "name")
    cases = [
        ("predicate", lambda: compile_predicate(
            E.And(
                E.GreaterThan(age, E.Literal(21)),
                E.IsNotNull(name),
            )
        )),
        ("projection", lambda: compile_projection(
            [E.Add(age, E.Literal(1)), name]
        )),
        ("arithmetic", lambda: compile_projection(
            [E.Divide(E.Multiply(age, age), E.Subtract(age, E.Literal(1)))]
        )),
    ]
    errors: list[str] = []
    for label, build in cases:
        try:
            build()
        except CodegenError as exc:
            errors.append(f"self-check kernel {label!r} failed validation: {exc}")
        # The self-check *reports* breakage instead of crashing the CLI;
        # nothing is absorbed — every failure fails the run.
        except Exception as exc:  # lint: allow[ET001] -- reported as a failing check, exits nonzero
            errors.append(f"self-check kernel {label!r} raised {exc!r}")
    return errors


def _split_rules(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis: file-local rules "
        "(lock discipline, plan contracts, generated code) plus the "
        "whole-program contract families (lock ordering, exception "
        "taxonomy, cancellation polls, fault sites, process-boundary "
        "escapes).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json: machine-readable, for CI)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids or family prefixes to run "
        "(e.g. ET,LO001)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids or family prefixes to skip",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="baseline file of justified, grandfathered findings",
    )
    parser.add_argument(
        "--no-self-check", action="store_true",
        help="skip compiling representative codegen kernels",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0

    files = iter_source_files(args.paths)
    violations = check_paths(
        args.paths, _split_rules(args.select), _split_rules(args.ignore)
    )

    stale: list[str] = []
    baseline_errors: list[str] = []
    if args.baseline:
        baseline: Baseline = load_baseline(args.baseline)
        baseline_errors = list(baseline.errors)
        violations, stale = baseline.apply(violations)

    errors: list[str] = []
    if not args.no_self_check:
        errors = self_check()

    if args.format == "json":
        print(json.dumps(
            {
                "files_checked": len(files),
                "violations": [
                    {
                        "rule": v.rule,
                        "path": v.path,
                        "line": v.line,
                        "message": v.message,
                    }
                    for v in violations
                ],
                "baseline_errors": baseline_errors,
                "stale_baseline": stale,
                "self_check_failures": errors,
            },
            indent=2,
        ))
    else:
        for violation in violations:
            print(violation.render())
        for error in baseline_errors:
            print(error)
        for warning in stale:
            print(warning)
        for error in errors:
            print(error)

    if violations or errors or baseline_errors:
        print(
            f"repro.analysis: {len(violations)} violation(s), "
            f"{len(baseline_errors)} baseline error(s), "
            f"{len(errors)} self-check failure(s)",
            file=sys.stderr,
        )
        return 1
    check = "skipped" if args.no_self_check else "ok"
    print(
        f"analysis: {len(files)} files checked, 0 violations, "
        f"self-check {check}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
