"""CLI entry point: ``python -m repro.analysis [paths...]``.

Walks the given files/directories, applies the lock-discipline and
plan-contract rules to every ``*.py`` file and the generated-code
rules to every ``*.gensrc`` file (captured kernel sources, used by the
regression fixtures), prints one ``path:line: RULE message`` line per
finding, and exits nonzero if anything was found.

``--self-check`` (on by default) additionally compiles a set of
representative expression kernels through :mod:`repro.codegen`, which
runs the CG rules on the real emitter output — a cheap end-to-end
guarantee that the shipped emitters satisfy their own contract.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import codegen_rules, lockcheck, plancheck
from repro.analysis.report import RULES, Violation


def iter_source_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
            files.extend(sorted(path.rglob("*.gensrc")))
        else:
            files.append(path)
    return files


def check_paths(paths: list[str]) -> list[Violation]:
    violations: list[Violation] = []
    for path in iter_source_files(paths):
        if path.suffix == ".gensrc":
            violations.extend(codegen_rules.check_file(path))
            continue
        violations.extend(lockcheck.check_file(path))
        violations.extend(plancheck.check_file(path))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def self_check() -> list[str]:
    """Compile representative kernels; return error strings (empty = ok)."""
    from repro.codegen import compile_predicate, compile_projection
    from repro.errors import CodegenError
    from repro.sql import expressions as E
    from repro.sql.types import IntegerType, StringType

    age = E.BoundReference(0, IntegerType(), "age")
    name = E.BoundReference(1, StringType(), "name")
    cases = [
        ("predicate", lambda: compile_predicate(
            E.And(
                E.GreaterThan(age, E.Literal(21)),
                E.IsNotNull(name),
            )
        )),
        ("projection", lambda: compile_projection(
            [E.Add(age, E.Literal(1)), name]
        )),
        ("arithmetic", lambda: compile_projection(
            [E.Divide(E.Multiply(age, age), E.Subtract(age, E.Literal(1)))]
        )),
    ]
    errors: list[str] = []
    for label, build in cases:
        try:
            build()
        except CodegenError as exc:
            errors.append(f"self-check kernel {label!r} failed validation: {exc}")
        except Exception as exc:  # pragma: no cover - unexpected breakage
            errors.append(f"self-check kernel {label!r} raised {exc!r}")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis (lock discipline, "
        "plan contracts, generated-code rules).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--no-self-check", action="store_true",
        help="skip compiling representative codegen kernels",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0

    files = iter_source_files(args.paths)
    violations = check_paths(args.paths)
    for violation in violations:
        print(violation.render())

    errors: list[str] = []
    if not args.no_self_check:
        errors = self_check()
        for error in errors:
            print(error)

    if violations or errors:
        print(
            f"repro.analysis: {len(violations)} violation(s), "
            f"{len(errors)} self-check failure(s)",
            file=sys.stderr,
        )
        return 1
    check = "skipped" if args.no_self_check else "ok"
    print(
        f"analysis: {len(files)} files checked, 0 violations, "
        f"self-check {check}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
