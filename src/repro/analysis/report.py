"""Violation records and the rule registry for ``repro.analysis``.

Every check in the static-analysis pass (and every runtime sanitizer)
is identified by a stable rule ID. The registry below is the single
source of truth: the CLI's ``--list-rules`` output, the DESIGN.md §9
catalogue, and the test suite all key off it. Rule families:

* ``LD*`` — lock discipline (guarded-by / requires-lock annotations);
* ``PC*`` — physical-plan contracts (partitioning + EXPLAIN markers);
* ``CG*`` — generated-code rules (validated on the emitted AST);
* ``SZ*`` — runtime sanitizers (write-poisoned sealed state);
* ``LO*`` — whole-program lock-ordering analysis (deadlock cycles);
* ``ET*`` — exception-taxonomy discipline (fail-stop vs transient);
* ``CP*`` — cancellation-poll coverage in poll-obligated modules;
* ``FS*`` — fault-site registry cross-checks;
* ``XP*`` — process-boundary escape analysis (codec-shipped state).
"""

from __future__ import annotations

from dataclasses import dataclass

#: rule id → one-line invariant description.
RULES: dict[str, str] = {
    "LD001": "guarded field written outside a `with self.<lock>:` block",
    "LD002": "guarded field mutated (method call) outside its lock",
    "LD003": "requires-lock method called without the lock held",
    "LD004": "guarded-by / requires-lock names a lock the class never defines",
    "PC001": "physical operator missing a valid PARTITIONING declaration",
    "PC002": "declared PARTITIONING contradicts the operator body",
    "PC003": "pruning operator without metrics recording or EXPLAIN marker",
    "PC004": "runtime adaptive decision not surfaced in describe()",
    "PC005": "partition_by placement produced but not consumed partition-locally",
    "CG001": "generated kernel reads a name outside the codegen whitelist",
    "CG002": "generated kernel captures mutable outer state",
    "CG003": "generated kernel uses an operand without a NULL guard",
    "CG004": "generated kernel contains a banned construct",
    "SZ001": "mutation of a sealed zone map",
    "SZ002": "sealed row-batch region modified (CRC seal mismatch)",
    "LO001": "lock-acquisition cycle (potential deadlock)",
    "LO002": "re-acquisition of a held non-reentrant lock (self-deadlock)",
    "LO003": "requires-lock method acquires the lock it already holds",
    "ET001": "broad except absorbs fail-stop errors without re-raising",
    "ET002": "except BaseException can absorb SimulatedCrash",
    "ET003": "broad except re-raises only conditionally (fail-stop leak)",
    "ET004": "scheduler transient-retry set names a fail-stop class",
    "CP001": "partition-scale loop in poll-obligated code never polls "
    "cancellation",
    "CP002": "poll-obligated module contains no cancellation poll at all",
    "FS001": "injection site literal not registered in faults.SITES",
    "FS002": "registered fault site unreachable from any call site",
    "XP001": "codec-shipped class carries a lock/thread/file handle",
    "XP002": "worker-side code mutates a shared-memory view",
    "XP003": "worker-side code calls a driver-only singleton",
}


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line: RULE message``."""

    rule: str
    path: str
    line: int
    message: str

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown rule id {self.rule!r}")

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def __str__(self) -> str:
        return self.render()
