"""Violation records and the rule registry for ``repro.analysis``.

Every check in the static-analysis pass (and every runtime sanitizer)
is identified by a stable rule ID. The registry below is the single
source of truth: the CLI's ``--list-rules`` output, the DESIGN.md §9
catalogue, and the test suite all key off it. Rule families:

* ``LD*`` — lock discipline (guarded-by / requires-lock annotations);
* ``PC*`` — physical-plan contracts (partitioning + EXPLAIN markers);
* ``CG*`` — generated-code rules (validated on the emitted AST);
* ``SZ*`` — runtime sanitizers (write-poisoned sealed state).
"""

from __future__ import annotations

from dataclasses import dataclass

#: rule id → one-line invariant description.
RULES: dict[str, str] = {
    "LD001": "guarded field written outside a `with self.<lock>:` block",
    "LD002": "guarded field mutated (method call) outside its lock",
    "LD003": "requires-lock method called without the lock held",
    "LD004": "guarded-by / requires-lock names a lock the class never defines",
    "PC001": "physical operator missing a valid PARTITIONING declaration",
    "PC002": "declared PARTITIONING contradicts the operator body",
    "PC003": "pruning operator without metrics recording or EXPLAIN marker",
    "PC004": "runtime adaptive decision not surfaced in describe()",
    "PC005": "partition_by placement produced but not consumed partition-locally",
    "CG001": "generated kernel reads a name outside the codegen whitelist",
    "CG002": "generated kernel captures mutable outer state",
    "CG003": "generated kernel uses an operand without a NULL guard",
    "CG004": "generated kernel contains a banned construct",
    "SZ001": "mutation of a sealed zone map",
    "SZ002": "sealed row-batch region modified (CRC seal mismatch)",
}


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line: RULE message``."""

    rule: str
    path: str
    line: int
    message: str

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown rule id {self.rule!r}")

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def __str__(self) -> str:
        return self.render()
