"""Exception-taxonomy discipline (rules ET001–ET004).

The error hierarchy encodes a deliberate split (DESIGN.md §7): library
errors derive from :class:`~repro.errors.ReproError` and may be
absorbed by retry / fallback / supervision layers, while the
**fail-stop** classes are deliberately *not* ``ReproError`` —
``SanitizerError`` (invariant violation), ``RecoveryError`` (durable
state unrestorable), ``QueryCancelledError`` (cooperative stop), and
``SimulatedCrash`` (``BaseException``: an injected ``kill -9``). A
``except Exception:`` that returns a fallback value can silently heal
a sanitizer trip; that is precisely the bug class these rules exist to
keep out:

* **ET001** — an ``except Exception:`` / bare ``except:`` handler with
  no ``raise`` at all, and no preceding guard handler that re-raises
  the fail-stop classes. The blessed guard is
  ``except FAIL_STOP: raise`` (or an explicit tuple covering both
  ``SanitizerError`` and ``RecoveryError``);
* **ET002** — an ``except BaseException:`` handler without an
  unconditional top-level re-raise: it can absorb ``SimulatedCrash``,
  which models a process death no supervision layer may catch;
* **ET003** — a broad handler whose every ``raise`` sits behind a
  condition: on the other path the fail-stop error is absorbed (the
  planner-strategy-fallback shape);
* **ET004** — whole-program cross-check: every class named in the
  scheduler's transient-retry classification must be genuinely
  transient — naming a fail-stop class there would convert an
  invariant violation into a retry storm.

A handler that *unconditionally* raises at its top level passes: both
the bare ``raise`` and wrap-and-raise (``raise TaskError(...) from
exc``) preserve the failure; the taxonomy only forbids absorption.
"""

from __future__ import annotations

import ast

from repro.analysis.program import ParsedModule, Program
from repro.analysis.report import Violation

#: The fail-stop classes (kept in sync with ``repro.errors.FAIL_STOP``;
#: the names are what the AST can see).
FAILSTOP_NAMES = frozenset(
    {"SanitizerError", "RecoveryError", "QueryCancelledError"}
)
#: Name of the blessed re-raise tuple in ``repro.errors``.
FAILSTOP_TUPLE = "FAIL_STOP"

#: Builtin exception classes legitimately transient (I/O flakes).
_TRANSIENT_BUILTINS = frozenset(
    {"ConnectionError", "TimeoutError", "OSError", "InterruptedError",
     "BrokenPipeError", "EOFError"}
)


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    """The class names a handler catches (empty set = bare except)."""
    node = handler.type
    if node is None:
        return set()
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names: set[str] = set()
    for item in nodes:
        if isinstance(item, ast.Name):
            names.add(item.id)
        elif isinstance(item, ast.Attribute):
            names.add(item.attr)
    return names


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    return "Exception" in _handler_names(handler)


def _catches_base(handler: ast.ExceptHandler) -> bool:
    return "BaseException" in _handler_names(handler)


def _raises(handler: ast.ExceptHandler) -> tuple[bool, bool]:
    """(has any raise, has an unconditional top-level raise).

    Nested function bodies are pruned: a ``raise`` inside a closure
    does not re-raise the caught exception.
    """
    any_raise = False

    def scan(node: ast.AST) -> None:
        nonlocal any_raise
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            if isinstance(child, ast.Raise):
                any_raise = True
            scan(child)

    for stmt in handler.body:
        if isinstance(stmt, ast.Raise):
            any_raise = True
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        scan(stmt)
    top_level = any(isinstance(stmt, ast.Raise) for stmt in handler.body)
    return any_raise, top_level


def _is_failstop_guard(handler: ast.ExceptHandler) -> bool:
    """A preceding handler that catches the fail-stop classes and
    immediately re-raises — the blessed pattern that licenses a broad
    handler after it."""
    names = _handler_names(handler)
    covers = FAILSTOP_TUPLE in names or (
        "SanitizerError" in names and "RecoveryError" in names
    )
    if not covers:
        return False
    return any(isinstance(stmt, ast.Raise) for stmt in handler.body)


def _check_handlers(module: ParsedModule, out: list[Violation]) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Try):
            continue
        guarded = False
        for handler in node.handlers:
            if _is_failstop_guard(handler):
                guarded = True
                continue
            if _catches_base(handler):
                _any, top = _raises(handler)
                if not top:
                    module.report(
                        out, "ET002", handler.lineno,
                        "except BaseException without an unconditional "
                        "re-raise can absorb SimulatedCrash",
                    )
                continue
            if not _is_broad(handler):
                continue
            any_raise, top = _raises(handler)
            if top or guarded:
                continue
            if not any_raise:
                module.report(
                    out, "ET001", handler.lineno,
                    "broad except never re-raises; SanitizerError / "
                    "RecoveryError would be absorbed (guard with "
                    "`except FAIL_STOP: raise` or narrow the catch)",
                )
            else:
                module.report(
                    out, "ET003", handler.lineno,
                    "broad except re-raises only conditionally; the "
                    "other path absorbs fail-stop errors (guard with "
                    "`except FAIL_STOP: raise`)",
                )


def _class_hierarchy(errors_module: ParsedModule | None) -> dict[str, set[str]]:
    """class name → base names, from ``repro/errors.py`` when present."""
    bases: dict[str, set[str]] = {}
    if errors_module is None:
        return bases
    for node in errors_module.tree.body:
        if isinstance(node, ast.ClassDef):
            bases[node.name] = {
                b.id for b in node.bases if isinstance(b, ast.Name)
            }
    return bases


def _transient_names(module: ParsedModule) -> list[tuple[str, int]]:
    """Class names the scheduler's transient classification mentions.

    Looks inside any function named ``_find_transient`` (and any
    module-level ``_TRANSIENT*`` tuple) for ``isinstance(x, (...))``
    tuples and tuple literals of names.
    """
    found: list[tuple[str, int]] = []

    def harvest(node: ast.expr, lineno: int) -> None:
        items = node.elts if isinstance(node, ast.Tuple) else [node]
        for item in items:
            if isinstance(item, ast.Name):
                found.append((item.id, lineno))
            elif isinstance(item, ast.Attribute):
                found.append((item.attr, lineno))

    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node.name == "_find_transient"
        ):
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "isinstance"
                    and len(sub.args) == 2
                ):
                    harvest(sub.args[1], sub.lineno)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.startswith(
                    "_TRANSIENT"
                ):
                    harvest(node.value, node.lineno)
    return found


def _check_retry_set(program: Program, module: ParsedModule,
                     out: list[Violation]) -> None:
    names = _transient_names(module)
    if not names:
        return
    hierarchy = _class_hierarchy(program.find("repro/errors.py"))

    def is_failstop(name: str) -> bool:
        if name in FAILSTOP_NAMES or name == "SimulatedCrash":
            return True
        seen = set()
        frontier = {name}
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for base in hierarchy.get(current, ()):
                if base in FAILSTOP_NAMES or base == "SimulatedCrash":
                    return True
                frontier.add(base)
        return False

    for name, lineno in names:
        if is_failstop(name):
            module.report(
                out, "ET004", lineno,
                f"transient-retry set names fail-stop class {name}: an "
                "invariant violation would be retried instead of "
                "surfacing",
            )
            continue
        known = name in hierarchy or name in _TRANSIENT_BUILTINS
        if hierarchy and not known:
            module.report(
                out, "ET004", lineno,
                f"transient-retry set names {name}, which is neither a "
                "repro.errors class nor a transient builtin",
            )


def check_program(program: Program) -> list[Violation]:
    violations: list[Violation] = []
    for module in program:
        _check_handlers(module, violations)
        _check_retry_set(program, module, violations)
    return violations
