"""AST lock-discipline checker (rules LD001–LD004).

The concurrency invariants of the storage and engine layers were
previously enforced by comments ("caller holds the lock"). This module
turns those comments into machine-checked annotations:

* ``# guarded-by: <lock>`` on the line where a field is first assigned
  (``self.field = ...`` in ``__init__``, or a class-level / dataclass
  field declaration) declares that every write to the field must happen
  inside a ``with self.<lock>:`` block;
* ``# requires-lock: <lock>`` on a ``def`` line declares that the
  method may only be called with the lock already held — inside the
  method the lock is assumed held, and every intra-class call site is
  checked (rule LD003).

Scope (kept deliberately narrow so every finding is actionable):

* only writes through ``self`` are checked — ``self.f = ...``,
  ``self.f += ...``, ``self.f[k] = ...``, ``del self.f[k]``, and
  mutating method calls ``self.f.append(...)`` etc. Writes through a
  local alias (``zones = self._zones; zones.append(...)``) are
  invisible, which is why the hot loops that alias are themselves
  ``requires-lock`` methods or hold the lock around the aliasing block;
* ``__init__`` / ``__post_init__`` / ``__new__`` are exempt — the
  object is not yet shared;
* closures defined inside a method are analyzed with an *empty* lock
  set: a closure can escape and run after the enclosing ``with`` block
  released the lock, so only locks it acquires itself count.

A finding can be silenced on its line with ``# lint: allow[LD001]``.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.report import Violation

_ANNOT_RE = re.compile(
    r"#\s*(guarded-by|requires-lock):\s*([A-Za-z_][A-Za-z0-9_]*)"
)
_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\[([A-Z0-9_, ]+)\]")

#: Method names that mutate their receiver. A call
#: ``self.<guarded>.<mutator>(...)`` outside the lock is LD002.
MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "add", "discard", "setdefault", "sort", "reverse",
        # domain-specific mutators of the structures we guard
        "update_row", "merge", "readonly_snapshot", "seal",
    }
)

#: Methods where unguarded writes are allowed (object not shared yet).
_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def _parse_comments(source: str) -> tuple[dict[int, tuple[str, str]], dict[int, set[str]]]:
    """Per-line annotations and suppressions from the raw source."""
    annotations: dict[int, tuple[str, str]] = {}
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _ANNOT_RE.search(line)
        if m:
            annotations[lineno] = (m.group(1), m.group(2))
        m = _ALLOW_RE.search(line)
        if m:
            allows[lineno] = {r.strip() for r in m.group(1).split(",") if r.strip()}
    return annotations, allows


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` → ``"X"``; anything else → None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _write_target(node: ast.expr) -> str | None:
    """Resolve a write target to the guarded ``self`` field it touches.

    Handles ``self.f``, ``self.f[k]`` (and nested subscripts).
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    return _self_attr(node)


class _ClassChecker:
    def __init__(
        self,
        path: str,
        cls: ast.ClassDef,
        annotations: dict[int, tuple[str, str]],
        allows: dict[int, set[str]],
    ):
        self.path = path
        self.cls = cls
        self.annotations = annotations
        self.allows = allows
        self.violations: list[Violation] = []
        self.guarded: dict[str, str] = {}       # field → lock
        self.requires: dict[str, str] = {}      # method → lock
        self.defined_attrs: set[str] = set()
        self._collect()

    # -- declaration pass ------------------------------------------------

    def _collect(self) -> None:
        for stmt in self.cls.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                for name in self._decl_names(stmt):
                    self.defined_attrs.add(name)
                    ann = self.annotations.get(stmt.lineno)
                    if ann and ann[0] == "guarded-by":
                        self.guarded[name] = ann[1]
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ann = self.annotations.get(stmt.lineno)
                if ann and ann[0] == "requires-lock":
                    self.requires[stmt.name] = ann[1]
                for node in ast.walk(stmt):
                    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for target in targets:
                            field = _self_attr(target)
                            if field is None:
                                continue
                            self.defined_attrs.add(field)
                            ann = self.annotations.get(node.lineno)
                            if ann and ann[0] == "guarded-by":
                                self.guarded[field] = ann[1]

    @staticmethod
    def _decl_names(stmt: ast.Assign | ast.AnnAssign) -> list[str]:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        return [t.id for t in targets if isinstance(t, ast.Name)]

    # -- enforcement pass ------------------------------------------------

    def check(self) -> list[Violation]:
        for (field, lock) in sorted(self.guarded.items()):
            if lock not in self.defined_attrs:
                self._report(
                    "LD004",
                    self.cls.lineno,
                    f"{self.cls.name}.{field} is guarded by unknown lock "
                    f"{lock!r} (never assigned in the class)",
                )
        for (method, lock) in sorted(self.requires.items()):
            if lock not in self.defined_attrs:
                self._report(
                    "LD004",
                    self.cls.lineno,
                    f"{self.cls.name}.{method} requires unknown lock {lock!r}",
                )
        for stmt in self.cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in _EXEMPT_METHODS:
                continue
            held = frozenset(
                {self.requires[stmt.name]} if stmt.name in self.requires else set()
            )
            for child in stmt.body:
                self._visit(child, held)
        return self.violations

    def _report(self, rule: str, lineno: int, message: str) -> None:
        if rule in self.allows.get(lineno, ()):
            return
        self.violations.append(Violation(rule, self.path, lineno, message))

    def _visit(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                lock = _self_attr(item.context_expr)
                if lock is not None:
                    acquired.add(lock)
                self._visit(item.context_expr, held)
            for child in node.body:
                self._visit(child, frozenset(acquired))
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A closure may outlive the enclosing with-block.
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                self._visit(child, frozenset())
            return

        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                self._check_write(target, node.lineno, held)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._check_write(target, node.lineno, held)
        elif isinstance(node, ast.Call):
            self._check_call(node, held)

        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _check_write(self, target: ast.expr, lineno: int, held: frozenset[str]) -> None:
        field = _write_target(target)
        if field is None:
            return
        lock = self.guarded.get(field)
        if lock is not None and lock not in held:
            self._report(
                "LD001",
                lineno,
                f"write to {self.cls.name}.{field} outside `with self.{lock}:`",
            )

    def _check_call(self, node: ast.Call, held: frozenset[str]) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        # self.<guarded>.<mutator>(...)
        receiver = _write_target(func.value)
        if receiver is not None and func.attr in MUTATORS:
            lock = self.guarded.get(receiver)
            if lock is not None and lock not in held:
                self._report(
                    "LD002",
                    node.lineno,
                    f"{self.cls.name}.{receiver}.{func.attr}() outside "
                    f"`with self.{lock}:`",
                )
        # self.<requires-lock method>(...)
        method = _self_attr(func)
        if method is not None and method in self.requires:
            lock = self.requires[method]
            if lock not in held:
                self._report(
                    "LD003",
                    node.lineno,
                    f"call to {self.cls.name}.{method}() without holding "
                    f"self.{lock} (requires-lock)",
                )


def check_source(source: str, path: str = "<string>") -> list[Violation]:
    """Run the lock-discipline rules over one module's source."""
    annotations, allows = _parse_comments(source)
    tree = ast.parse(source)
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            checker = _ClassChecker(path, node, annotations, allows)
            violations.extend(checker.check())
    return violations


def check_file(path: str | Path) -> list[Violation]:
    path = Path(path)
    return check_source(path.read_text(encoding="utf-8"), str(path))
