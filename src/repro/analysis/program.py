"""Whole-program facts shared by the cross-module rule families.

The PR 4 analyzers (lock discipline, plan contracts, generated-code
rules) are file-local: each file is parsed, checked, and forgotten.
The contract families added on top of them — lock ordering (LO),
exception taxonomy (ET), cancellation-poll coverage (CP), fault-site
cross-checks (FS), and process-boundary escape analysis (XP) — need
facts *across* modules: the global lock-acquisition graph, the
scheduler's transient-retry set, the fault-site registry, the codec's
shipped classes. This module provides the single-parse pass they
share:

* :class:`ParsedModule` — one source file parsed once: AST, raw lines,
  the PR 4 ``guarded-by`` / ``requires-lock`` annotations, ``# lint:
  allow[...]`` suppressions (with their justifications), and the
  ``# analysis: <marker>`` obligations introduced by this pass;
* :class:`Program` — the collection of parsed modules plus the lookup
  helpers rule families use (module by path suffix, marker queries).

Suppression contract for the new families: an inline allow for an
``LO``/``ET``/``CP``/``FS``/``XP`` rule **must** carry a justification
(``# lint: allow[ET002] -- ships the error to the driver``). An allow
without one does not suppress — intentional exceptions must say why,
in the code, where the next reader needs it.

Marker comments (machine-readable obligations, not suppressions):

* ``# analysis: poll-obligated`` — on its own line: the whole module is
  poll-obligated (CP rules apply); on a ``class`` line: only that
  class's methods are;
* ``# analysis: worker-side`` — the module (or class) runs inside
  worker processes: XP002/XP003 apply;
* ``# analysis: shipped`` — on a ``class`` line: instances cross the
  process boundary through the task codec: XP001 applies.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.report import Violation

_ANNOT_RE = re.compile(
    r"#\s*(guarded-by|requires-lock):\s*([A-Za-z_][A-Za-z0-9_]*)"
)
_ALLOW_RE = re.compile(
    r"#\s*lint:\s*allow\[([A-Z0-9_, ]+)\](?:\s*--\s*(\S.*))?"
)
_MARKER_RE = re.compile(r"#\s*analysis:\s*([a-z-]+)")

#: Rule families introduced by the whole-program pass. Their inline
#: allows require a justification; the PR 4 families keep the original
#: bare ``# lint: allow[LD001]`` form.
PROGRAM_FAMILIES = ("LO", "ET", "CP", "FS", "XP")

KNOWN_MARKERS = frozenset({"poll-obligated", "worker-side", "shipped"})


@dataclass(frozen=True)
class Allow:
    """One ``# lint: allow[...]`` comment."""

    rules: frozenset[str]
    justification: str | None

    def suppresses(self, rule: str) -> bool:
        if rule not in self.rules:
            return False
        if rule[:2] in PROGRAM_FAMILIES and not self.justification:
            return False
        return True


@dataclass
class ParsedModule:
    """One source file, parsed once and annotated for every family."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: line → (kind, lock) from ``guarded-by`` / ``requires-lock``.
    annotations: dict[int, tuple[str, str]] = field(default_factory=dict)
    #: line → allow entry.
    allows: dict[int, Allow] = field(default_factory=dict)
    #: line → marker names on that line.
    markers: dict[int, set[str]] = field(default_factory=dict)

    # -- markers ---------------------------------------------------------

    def module_marked(self, marker: str) -> bool:
        """True when ``marker`` appears on a standalone comment line
        (whole-module obligation)."""
        for lineno, names in self.markers.items():
            if marker not in names:
                continue
            text = self.lines[lineno - 1].lstrip()
            if text.startswith("#"):
                return True
        return False

    def marked_classes(self, marker: str) -> set[str]:
        """Names of classes whose ``class`` line carries ``marker``."""
        found: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef) and marker in self.markers.get(
                node.lineno, ()
            ):
                found.add(node.name)
        return found

    # -- reporting -------------------------------------------------------

    def report(
        self,
        out: list[Violation],
        rule: str,
        lineno: int,
        message: str,
    ) -> None:
        """Append a violation unless a valid allow suppresses it."""
        allow = self.allows.get(lineno)
        if allow is not None and allow.suppresses(rule):
            return
        out.append(Violation(rule, self.path, lineno, message))


def parse_module(path: str, source: str) -> ParsedModule:
    tree = ast.parse(source)
    lines = source.splitlines()
    annotations: dict[int, tuple[str, str]] = {}
    allows: dict[int, Allow] = {}
    markers: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        m = _ANNOT_RE.search(line)
        if m:
            annotations[lineno] = (m.group(1), m.group(2))
        m = _ALLOW_RE.search(line)
        if m:
            rules = frozenset(
                r.strip() for r in m.group(1).split(",") if r.strip()
            )
            justification = m.group(2).strip() if m.group(2) else None
            allows[lineno] = Allow(rules, justification)
        m = _MARKER_RE.search(line)
        if m and m.group(1) in KNOWN_MARKERS:
            markers.setdefault(lineno, set()).add(m.group(1))
    return ParsedModule(
        path=path,
        source=source,
        tree=tree,
        lines=lines,
        annotations=annotations,
        allows=allows,
        markers=markers,
    )


class Program:
    """The parsed modules of one analysis run."""

    def __init__(self, modules: list[ParsedModule]):
        self.modules = modules
        self._by_suffix: dict[str, ParsedModule] = {}
        for module in modules:
            normalized = module.path.replace("\\", "/")
            self._by_suffix[normalized] = module

    @classmethod
    def load(cls, paths: list[str | Path]) -> "Program":
        modules = []
        for path in paths:
            path = Path(path)
            modules.append(
                parse_module(str(path), path.read_text(encoding="utf-8"))
            )
        return cls(modules)

    def find(self, suffix: str) -> ParsedModule | None:
        """The module whose normalized path ends with ``suffix``."""
        for path, module in self._by_suffix.items():
            if path.endswith(suffix):
                return module
        return None

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)
