"""Validation of generated kernel source before ``exec`` (CG001–CG004).

:mod:`repro.codegen` compiles bound expression trees into Python
functions (the whole-stage-codegen analogue). Because that source is
``exec``'d into the live process, it is held to a far stricter standard
than handwritten code — the emitter's entire vocabulary is known, so
anything outside it is a compiler bug or an injection:

* CG001 — every name the kernel *reads* must be a parameter (including
  the const-pool defaults ``_kN``), a local assigned earlier in the
  kernel, or an explicitly allowed builtin. In particular no global
  reads: a kernel that silently closes over engine state would break
  snapshot isolation and plan caching.
* CG002 — const-pool values must be immutable (no list/dict/set/
  bytearray). A mutable default argument would be shared across every
  invocation of the kernel — mutation in one task would corrupt all.
* CG003 — three-valued logic: any arithmetic/comparison operand that
  is a row field (``r[i]``) or a temp (``tN``) must be dominated by an
  ``is (not) None`` guard. SQL NULL must never reach a Python operator
  that would raise or, worse, compare successfully.
* CG004 — structurally banned constructs: imports, ``global`` /
  ``nonlocal``, nested functions/lambdas/classes, yields/awaits,
  comprehensions, and attribute access other than the bound
  ``out.append``. The emitters never produce these, so their presence
  means the source was not produced by our emitters.

The compiler calls :func:`validate_generated_source` on every kernel
immediately before ``compile``; a violation raises
:class:`~repro.errors.CodegenError`, which the ``try_*`` wrappers
translate into interpreter fallback — a kernel that fails validation
can never execute.
"""

from __future__ import annotations

import ast
import threading
from pathlib import Path

from repro.analysis.report import Violation

#: CPython's AST-object constructor tracks recursion depth in
#: interpreter-global state; concurrent ``ast.parse`` calls from
#: executor worker threads can trip ``SystemError: AST constructor
#: recursion depth mismatch``. Kernels are tiny, so serializing the
#: parse costs nothing.
_PARSE_LOCK = threading.Lock()

_MUTABLE_CONST_TYPES = (list, dict, set, bytearray)

#: Exception names generated Cast kernels are allowed to catch.
_ALLOWED_EXC_NAMES = frozenset({"TypeError", "ValueError", "ZeroDivisionError"})

_BANNED_NODES: tuple[tuple[type[ast.AST], str], ...] = (
    (ast.Import, "import"),
    (ast.ImportFrom, "import"),
    (ast.Global, "global statement"),
    (ast.Nonlocal, "nonlocal statement"),
    (ast.ClassDef, "class definition"),
    (ast.Lambda, "lambda"),
    (ast.Yield, "yield"),
    (ast.YieldFrom, "yield from"),
    (ast.Await, "await"),
    (ast.ListComp, "comprehension"),
    (ast.SetComp, "comprehension"),
    (ast.DictComp, "comprehension"),
    (ast.GeneratorExp, "generator expression"),
)


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except ValueError:  # pragma: no cover - unparse is total on parsed trees
        return f"<{type(node).__name__}>"


def _guardable(node: ast.expr) -> str | None:
    """Return the canonical key for an operand that needs a NULL guard.

    Row-field reads (``r[...]``, ``row[...]``) and emitter temps
    (``tN``) are nullable; constants, const-pool names and everything
    else are not.
    """
    if isinstance(node, ast.Name):
        name = node.id
        if name.startswith("t") and name[1:].isdigit():
            return name
        return None
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
        if node.value.id in ("r", "row"):
            return _unparse(node)
    return None


def _null_test(test: ast.expr) -> tuple[str, bool] | None:
    """``X is None`` → (key(X), True); ``X is not None`` → (key(X), False)."""
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        key = _guardable(test.left) or _unparse(test.left)
        return key, isinstance(test.ops[0], ast.Is)
    return None


class _Validator:
    def __init__(self, path: str, check_null_guards: bool):
        self.path = path
        self.check_null_guards = check_null_guards
        self.violations: list[Violation] = []
        self.allowed_names: set[str] = set()

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(rule, self.path, getattr(node, "lineno", 1), message)
        )

    # -- structure -------------------------------------------------------

    def validate(self, tree: ast.Module, allowed_builtins: frozenset[str]) -> None:
        funcs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
        if len(funcs) != 1 or len(tree.body) != 1:
            self._report(
                "CG004",
                tree.body[0] if tree.body else tree,
                "generated module must be exactly one function definition",
            )
            return
        fn = funcs[0]

        params = {a.arg for a in fn.args.args}
        params |= {a.arg for a in fn.args.kwonlyargs}
        self.allowed_names = (
            params
            | set(allowed_builtins)
            | _ALLOWED_EXC_NAMES
            | self._assigned_names(fn)
        )

        for node in ast.walk(fn):
            self._check_banned(node)
            self._check_names(node)
        if self.check_null_guards:
            self._walk_guards(fn.body, frozenset())

    @staticmethod
    def _assigned_names(fn: ast.FunctionDef) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                names.add(node.name)
        return names

    def _check_banned(self, node: ast.AST) -> None:
        for node_type, label in _BANNED_NODES:
            if isinstance(node, node_type):
                self._report("CG004", node, f"banned construct: {label}")
                return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if getattr(node, "col_offset", 0) != 0:
                self._report("CG004", node, "banned construct: nested function")
        elif isinstance(node, ast.Attribute):
            if _unparse(node) != "out.append":
                self._report(
                    "CG004",
                    node,
                    f"banned attribute access: {_unparse(node)}",
                )

    def _check_names(self, node: ast.AST) -> None:
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in self.allowed_names:
                self._report(
                    "CG001",
                    node,
                    f"name {node.id!r} is outside the codegen whitelist "
                    "(possible global capture)",
                )

    # -- null guards (CG003) ---------------------------------------------

    def _walk_guards(self, stmts: list[ast.stmt], known: frozenset[str]) -> None:
        for stmt in stmts:
            self._guard_stmt(stmt, known)

    def _guard_stmt(self, stmt: ast.stmt, known: frozenset[str]) -> None:
        if isinstance(stmt, ast.If):
            test = _null_test(stmt.test)
            self._guard_expr(stmt.test, known)
            if test is not None:
                key, is_none = test
                if is_none:  # if X is None: ... else: X non-null
                    self._walk_guards(stmt.body, known)
                    self._walk_guards(stmt.orelse, known | {key})
                else:  # if X is not None: X non-null ... else: ...
                    self._walk_guards(stmt.body, known | {key})
                    self._walk_guards(stmt.orelse, known)
            else:
                self._walk_guards(stmt.body, known)
                self._walk_guards(stmt.orelse, known)
        elif isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.While):
                self._guard_expr(stmt.test, known)
            else:
                self._guard_expr(stmt.iter, known)
            self._walk_guards(stmt.body, known)
            self._walk_guards(stmt.orelse, known)
        elif isinstance(stmt, ast.Try):
            self._walk_guards(stmt.body, known)
            for handler in stmt.handlers:
                self._walk_guards(handler.body, known)
            self._walk_guards(stmt.orelse, known)
            self._walk_guards(stmt.finalbody, known)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is not None:
                self._guard_expr(value, known)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._guard_expr(stmt.value, known)
        # pass/continue/break carry no expressions

    def _guard_expr(self, expr: ast.expr, known: frozenset[str]) -> None:
        if isinstance(expr, ast.IfExp):
            test = _null_test(expr.test)
            self._guard_expr(expr.test, known)
            if test is not None:
                key, is_none = test
                if is_none:  # A if X is None else B
                    self._guard_expr(expr.body, known)
                    self._guard_expr(expr.orelse, known | {key})
                else:
                    self._guard_expr(expr.body, known | {key})
                    self._guard_expr(expr.orelse, known)
            else:
                self._guard_expr(expr.body, known)
                self._guard_expr(expr.orelse, known)
            return

        if isinstance(expr, ast.BinOp):
            for operand in (expr.left, expr.right):
                self._require_guard(operand, known)
        elif isinstance(expr, ast.Compare):
            if not all(isinstance(op, (ast.Is, ast.IsNot)) for op in expr.ops):
                for operand in (expr.left, *expr.comparators):
                    self._require_guard(operand, known)

        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._guard_expr(child, known)

    def _require_guard(self, operand: ast.expr, known: frozenset[str]) -> None:
        key = _guardable(operand)
        if key is not None and key not in known:
            self._report(
                "CG003",
                operand,
                f"nullable operand {key!r} used without an `is None` guard",
            )


def validate_generated_source(
    source: str,
    *,
    consts: tuple | list = (),
    allowed_builtins: frozenset[str] = frozenset(),
    check_null_guards: bool = True,
    path: str = "<generated>",
) -> list[Violation]:
    """Validate one emitted kernel; return all violations found."""
    validator = _Validator(path, check_null_guards)
    try:
        with _PARSE_LOCK:
            tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Violation(
                "CG004", path, exc.lineno or 1, f"unparseable kernel: {exc.msg}"
            )
        ]
    for index, value in enumerate(consts):
        if isinstance(value, _MUTABLE_CONST_TYPES):
            validator.violations.append(
                Violation(
                    "CG002",
                    path,
                    1,
                    f"const pool entry _k{index} is mutable "
                    f"({type(value).__name__})",
                )
            )
    validator.validate(tree, allowed_builtins)
    return validator.violations


def check_file(path: str | Path) -> list[Violation]:
    """Validate a ``.gensrc`` file (a captured kernel source) from disk.

    The const pool is not recoverable from a source file, so CG002 is
    only enforced at compile time; everything else applies.
    """
    path = Path(path)
    return validate_generated_source(
        path.read_text(encoding="utf-8"), path=str(path)
    )
