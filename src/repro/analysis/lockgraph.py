"""Whole-program lock-ordering analysis (rules LO001–LO003).

The engine now nests locks across layers: ``create_index`` runs a
builder under the :class:`~repro.index.registry.BitmapIndexRegistry`
lock, the builder takes each partition's append lock, and the per-
partition bitmap index records rows under its own lock — a three-level
chain crossing three modules. A second chain anywhere that acquires
the same locks in the *opposite* order is a deadlock that no tier-1
test reliably produces. This module builds the global acquisition
graph and reports:

* **LO001** — a cycle in the acquisition graph: lock A is held while
  acquiring B somewhere, and B while acquiring A somewhere else;
* **LO002** — re-acquisition of a lock the method already holds, when
  the lock is known to be a plain (non-reentrant) ``threading.Lock``;
* **LO003** — a ``# requires-lock: X`` method that acquires ``self.X``
  itself (directly or through a one-level callee): the annotation says
  the caller holds it, so the acquisition self-deadlocks.

Lock identity and edge discovery (deliberately approximate, tuned for
zero false positives on this codebase):

* ``with self.X:`` inside class ``C`` is the lock node ``C.X``; when
  ``__init__`` assigns ``self.attr = OtherClass(...)`` the path
  ``self.attr.Y`` resolves to ``OtherClass.Y`` (the BlockManager →
  CacheStats nesting); module-level locks become ``module:<name>``;
* a ``# requires-lock: X`` method starts with ``C.X`` held;
* holding L and calling ``self.m()`` adds edges from L to every lock
  ``m`` acquires; calling ``obj.m()`` resolves ``m`` by name when
  exactly one class in the program defines a lock-acquiring method of
  that name; a lambda argument passed to such a callee contributes the
  locks *it* acquires (through its own calls) as edges from the
  callee's locks — the ``registry.acquire(store, ordinal, builder)``
  pattern;
* closures are analyzed with an empty held set (they may run after the
  enclosing ``with`` released the lock), exactly like the LD rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.program import ParsedModule, Program
from repro.analysis.report import Violation

#: Constructors that create *reentrant* synchronization objects —
#: re-acquiring one of these while held is legal, so LO002 skips them.
_REENTRANT = frozenset({"RLock", "Condition"})
#: Constructors that create any lock-like object (for lock-kind facts).
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                             "BoundedSemaphore", "Event"})
#: Method names that usually belong to builtin containers / stdlib
#: objects (``list.append``, ``dict.update``, ``set.add`` …). A call
#: like ``self._pointers.append(x)`` must **not** resolve by unique
#: name to a program class that happens to define ``append`` — that
#: conflation invents cross-object edges and phantom cycles.
_AMBIENT_METHODS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "popitem", "clear",
     "update", "add", "discard", "setdefault", "get", "items", "keys",
     "values", "sort", "reverse", "count", "index", "copy", "join",
     "split", "strip", "close", "write", "read", "flush", "put",
     "result", "cancel", "done", "appendleft", "popleft"}
)


def _lock_kind(value: ast.expr) -> str | None:
    """``threading.Lock()`` → ``"Lock"``; ``Condition(...)`` →
    ``"Condition"``; anything else → None."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    if name in _LOCK_FACTORIES:
        return name
    # dataclasses.field(default_factory=threading.Lock)
    if name == "field":
        for kw in value.keywords:
            if kw.arg == "default_factory":
                inner = kw.value
                if isinstance(inner, ast.Attribute) and inner.attr in _LOCK_FACTORIES:
                    return inner.attr
                if isinstance(inner, ast.Name) and inner.id in _LOCK_FACTORIES:
                    return inner.id
    return None


def _attr_path(node: ast.expr) -> list[str] | None:
    """``self.a.b`` → ``["self", "a", "b"]``; non-attribute → None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


@dataclass
class _Acquisition:
    lock: str
    lineno: int
    held: frozenset[str]


@dataclass
class _CallSite:
    """A call made while locks were held."""

    method: str           # bare callee name
    on_self: bool
    lineno: int
    held: frozenset[str]
    lambda_callees: tuple[str, ...] = ()   # names called inside lambda args


@dataclass
class _MethodFacts:
    qualname: str          # Class.method
    cls: str
    name: str
    module: ParsedModule
    lineno: int
    requires: str | None   # lock attr from # requires-lock
    acquisitions: list[_Acquisition] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)

    @property
    def acquired_locks(self) -> frozenset[str]:
        return frozenset(a.lock for a in self.acquisitions)


class _ClassScanner(ast.NodeVisitor):
    """Collects per-method lock facts for one class."""

    def __init__(self, module: ParsedModule, cls: ast.ClassDef,
                 classes: set[str], module_locks: set[str] | None = None):
        self.module = module
        self.cls = cls
        self.classes = classes
        #: Module-level names bound to lock objects in this module; a
        #: ``with <name>:`` on anything else (a local alias) is ignored
        #: rather than conflated into a global node.
        self.module_locks = module_locks or set()
        #: attr name → kind (for locks created in this class).
        self.lock_kinds: dict[str, str] = {}
        #: attr name → program class it is an instance of.
        self.attr_types: dict[str, str] = {}
        self.methods: list[_MethodFacts] = []
        self._collect_attrs()
        self._collect_methods()

    # -- declaration pass ------------------------------------------------

    def _collect_attrs(self) -> None:
        for stmt in self.cls.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and value is not None:
                        self._note_attr(target.id, value)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        path = _attr_path(target)
                        if path and len(path) == 2 and path[0] == "self":
                            if node.value is not None:
                                self._note_attr(path[1], node.value)

    def _note_attr(self, attr: str, value: ast.expr) -> None:
        kind = _lock_kind(value)
        if kind is not None:
            self.lock_kinds.setdefault(attr, kind)
            return
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in self.classes:
                self.attr_types.setdefault(attr, value.func.id)

    # -- method pass -----------------------------------------------------

    def _collect_methods(self) -> None:
        for stmt in self.cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            ann = self.module.annotations.get(stmt.lineno)
            requires = ann[1] if ann and ann[0] == "requires-lock" else None
            facts = _MethodFacts(
                qualname=f"{self.cls.name}.{stmt.name}",
                cls=self.cls.name,
                name=stmt.name,
                module=self.module,
                lineno=stmt.lineno,
                requires=requires,
            )
            held: frozenset[str] = frozenset(
                {self._lock_id(["self", requires])} if requires else set()
            )
            for child in stmt.body:
                self._walk(child, held, facts)
            self.methods.append(facts)

    def _lock_id(self, path: list[str] | None) -> str | None:
        """Resolve an attribute path used as a lock to a global id."""
        if path is None:
            return None
        if path[0] == "self":
            if len(path) == 2:
                return f"{self.cls.name}.{path[1]}"
            if len(path) == 3:
                owner = self.attr_types.get(path[1])
                if owner is not None:
                    return f"{owner}.{path[2]}"
                return f"{self.cls.name}.{path[1]}.{path[2]}"
            return None
        if len(path) == 1 and path[0] in self.module_locks:
            return f"module:{self.module.path}:{path[0]}"
        return None

    def _walk(self, node: ast.AST, held: frozenset[str],
              facts: _MethodFacts) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                lock = self._lock_id(_attr_path(item.context_expr))
                if lock is not None:
                    facts.acquisitions.append(
                        _Acquisition(lock, node.lineno, frozenset(acquired))
                    )
                    acquired.add(lock)
                else:
                    self._walk(item.context_expr, held, facts)
            for child in node.body:
                self._walk(child, frozenset(acquired), facts)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Closure: may run after the enclosing with released.
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                self._walk(child, frozenset(), facts)
            return
        if isinstance(node, ast.Call):
            self._note_call(node, held, facts)
        for child in ast.iter_child_nodes(node):
            self._walk(child, held, facts)

    def _note_call(self, node: ast.Call, held: frozenset[str],
                   facts: _MethodFacts) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        on_self = isinstance(receiver, ast.Name) and receiver.id == "self"
        lambda_callees: list[str] = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call) and isinstance(
                        sub.func, ast.Attribute
                    ):
                        lambda_callees.append(sub.func.attr)
        facts.calls.append(
            _CallSite(
                method=func.attr,
                on_self=on_self,
                lineno=node.lineno,
                held=held,
                lambda_callees=tuple(lambda_callees),
            )
        )


@dataclass
class _Edge:
    src: str
    dst: str
    path: str
    lineno: int
    why: str


class LockGraph:
    """The global acquisition graph plus the facts that built it."""

    def __init__(self, program: Program):
        self.program = program
        self.methods: list[_MethodFacts] = []
        #: Class.method → facts.
        self.by_qualname: dict[str, _MethodFacts] = {}
        #: bare method name → facts of every lock-acquiring definition.
        self.acquirers_by_name: dict[str, list[_MethodFacts]] = {}
        #: lock id → kind ("Lock" / "RLock" / ...).
        self.lock_kinds: dict[str, str] = {}
        self.edges: list[_Edge] = []
        self._build()

    # -- construction ----------------------------------------------------

    def _build(self) -> None:
        class_names: set[str] = set()
        for module in self.program:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    class_names.add(node.name)
        scanners: list[_ClassScanner] = []
        for module in self.program:
            module_locks = {
                target.id
                for stmt in module.tree.body
                if isinstance(stmt, ast.Assign)
                and _lock_kind(stmt.value) is not None
                for target in stmt.targets
                if isinstance(target, ast.Name)
            }
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    scanner = _ClassScanner(module, node, class_names,
                                            module_locks)
                    scanners.append(scanner)
                    for attr, kind in scanner.lock_kinds.items():
                        self.lock_kinds[f"{node.name}.{attr}"] = kind
        for scanner in scanners:
            for facts in scanner.methods:
                self.methods.append(facts)
                self.by_qualname[facts.qualname] = facts
                if facts.acquisitions:
                    self.acquirers_by_name.setdefault(facts.name, []).append(
                        facts
                    )
        # Direct nesting edges.
        for facts in self.methods:
            for acq in facts.acquisitions:
                for held in acq.held:
                    self._edge(held, acq.lock, facts, acq.lineno,
                               f"{facts.qualname} nests the acquisitions")
        # One-level call edges (self calls, unique-name calls, lambdas).
        for facts in self.methods:
            for call in facts.calls:
                callee = self._resolve(facts, call)
                if callee is None:
                    continue
                for held in call.held:
                    for lock in sorted(callee.acquired_locks):
                        self._edge(
                            held, lock, facts, call.lineno,
                            f"{facts.qualname} calls "
                            f"{callee.qualname} while holding",
                        )
                # Locks the callee holds while running a lambda argument:
                # whatever the lambda's own callees acquire nests inside.
                if call.lambda_callees and callee.acquired_locks:
                    for inner_name in call.lambda_callees:
                        inner = self._unique_acquirer(inner_name)
                        if inner is None:
                            continue
                        for outer in sorted(callee.acquired_locks):
                            for lock in sorted(inner.acquired_locks):
                                self._edge(
                                    outer, lock, facts, call.lineno,
                                    f"lambda passed to {callee.qualname} "
                                    f"calls {inner.qualname}",
                                )

    def _resolve(self, caller: _MethodFacts,
                 call: _CallSite) -> _MethodFacts | None:
        if call.on_self:
            return self.by_qualname.get(f"{caller.cls}.{call.method}")
        return self._unique_acquirer(call.method)

    def _unique_acquirer(self, name: str) -> _MethodFacts | None:
        if name in _AMBIENT_METHODS:
            return None
        candidates = self.acquirers_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _edge(self, src: str, dst: str, facts: _MethodFacts, lineno: int,
              why: str) -> None:
        if src == dst:
            return  # re-acquisition, LO002's business
        self.edges.append(_Edge(src, dst, facts.module.path, lineno, why))

    # -- cycle detection -------------------------------------------------

    def cycles(self) -> list[list[_Edge]]:
        """Every elementary cycle, as the edge list that closes it."""
        adjacency: dict[str, list[_Edge]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.src, []).append(edge)
        seen_cycles: set[frozenset[str]] = set()
        found: list[list[_Edge]] = []

        def dfs(node: str, path: list[_Edge], on_path: dict[str, int]) -> None:
            for edge in adjacency.get(node, []):
                if edge.dst in on_path:
                    cycle = path[on_path[edge.dst]:] + [edge]
                    key = frozenset(e.src for e in cycle)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        found.append(cycle)
                    continue
                on_path[edge.dst] = len(path) + 1
                dfs(edge.dst, path + [edge], on_path)
                del on_path[edge.dst]

        for start in sorted(adjacency):
            dfs(start, [], {start: 0})
        return found


def check_program(program: Program) -> list[Violation]:
    graph = LockGraph(program)
    violations: list[Violation] = []

    # LO001 — acquisition cycles.
    for cycle in graph.cycles():
        order = " -> ".join([e.src for e in cycle] + [cycle[0].src])
        anchor = cycle[0]
        module = program.find(anchor.path) or program.modules[0]
        module.report(
            violations, "LO001", anchor.lineno,
            f"lock-order cycle {order} ({anchor.why})",
        )

    for facts in graph.methods:
        # LO002 — re-acquiring a held non-reentrant lock.
        for acq in facts.acquisitions:
            if acq.lock not in acq.held:
                continue
            kind = graph.lock_kinds.get(acq.lock)
            if kind is None or kind in _REENTRANT:
                continue
            facts.module.report(
                violations, "LO002", acq.lineno,
                f"{facts.qualname} re-acquires held non-reentrant lock "
                f"{acq.lock} (threading.{kind})",
            )
        # LO003 — requires-lock method acquiring its own lock.
        if facts.requires is None:
            continue
        own = f"{facts.cls}.{facts.requires}"
        for acq in facts.acquisitions:
            if acq.lock == own:
                facts.module.report(
                    violations, "LO003", acq.lineno,
                    f"{facts.qualname} is annotated requires-lock: "
                    f"{facts.requires} but acquires self.{facts.requires} "
                    "itself",
                )
        for call in facts.calls:
            callee = graph.by_qualname.get(f"{facts.cls}.{call.method}") \
                if call.on_self else None
            if callee is None or callee is facts:
                continue
            if own in callee.acquired_locks:
                facts.module.report(
                    violations, "LO003", call.lineno,
                    f"{facts.qualname} (requires-lock: {facts.requires}) "
                    f"calls {callee.qualname}, which acquires "
                    f"self.{facts.requires}",
                )
    return violations
