"""Deterministic interleaving driver over the instrumented atomics.

:class:`~repro.ctrie.atomic.AtomicReference` exposes a yield hook that
fires on entry to every ``get`` / ``set`` / ``compare_and_set`` /
``get_and_set``. :class:`DeterministicInterleaver` uses it to turn a
handful of threads into a seeded, scheduler-controlled interleaving:

* every registered worker *parks* at each atomic operation;
* a driver loop picks the next worker to release using a seeded RNG,
  so a given seed replays the same interleaving (modulo operations
  that block on a *native* lock — see below);
* unregistered threads (pytest's main thread, executor pools) pass
  straight through the hook.

Native locks are the one escape hatch: a released worker that blocks
on e.g. a partition's ``_append_lock`` held by a *parked* worker can
not park again. The driver handles this with a bounded wait — if the
released worker neither parks nor finishes within ``timeout_s``, the
driver simply picks another parked worker, which eventually releases
the native lock and unwedges the first. This keeps the driver
deadlock-free without instrumenting every lock in the process.

This is a race *shaker*, not a model checker: it explores one seeded
schedule per run. Sweeping a few seeds in a test gives cheap, replayable
coverage of writer/reader interleavings that wall-clock scheduling
almost never produces.
"""

from __future__ import annotations

import random
import threading
from typing import Callable

from repro.ctrie import atomic


class _Worker:
    __slots__ = ("index", "thread", "go", "parked", "finished", "error")

    def __init__(self, index: int):
        self.index = index
        self.thread: threading.Thread | None = None
        self.go = threading.Event()
        self.parked = False
        self.finished = False
        self.error: BaseException | None = None


class DeterministicInterleaver:
    """Run thunks concurrently under a seeded atomic-op schedule.

    ``steps`` counts scheduling decisions taken; a test asserting
    ``steps > N`` proves the workers actually contended on the
    instrumented atomics rather than running back-to-back.
    """

    def __init__(
        self,
        seed: int = 0,
        timeout_s: float = 0.05,
        max_steps: int = 100_000,
        stall_limit: int = 200,
    ):
        self.rng = random.Random(seed)
        self.timeout_s = timeout_s
        self.max_steps = max_steps
        self.stall_limit = stall_limit
        self.steps = 0
        self._cond = threading.Condition()
        self._workers: dict[int, _Worker] = {}  # thread ident -> worker

    # -- hook ------------------------------------------------------------

    def _hook(self, site: str) -> None:
        worker = self._workers.get(threading.get_ident())
        if worker is None:
            return  # foreign thread: pass through
        self._park(worker)

    def _park(self, worker: _Worker) -> None:
        with self._cond:
            worker.parked = True
            self._cond.notify_all()
        worker.go.wait()
        worker.go.clear()

    # -- driver ----------------------------------------------------------

    def run(self, *thunks: Callable[[], None]) -> None:
        """Execute the thunks to completion under the seeded schedule.

        Re-raises the first worker exception (by worker index) after
        all workers have stopped.
        """
        workers = [_Worker(i) for i in range(len(thunks))]
        barrier = threading.Barrier(len(thunks) + 1)

        def body(worker: _Worker, thunk: Callable[[], None]) -> None:
            self._workers[threading.get_ident()] = worker
            barrier.wait()
            self._park(worker)  # initial park: driver controls the start
            try:
                thunk()
            except BaseException as exc:  # lint: allow[ET002] -- captured into worker.error; run() re-raises it
                worker.error = exc
            finally:
                with self._cond:
                    worker.finished = True
                    worker.parked = False
                    self._cond.notify_all()

        atomic.install_yield_hook(self._hook)
        try:
            for worker, thunk in zip(workers, thunks):
                worker.thread = threading.Thread(
                    target=body, args=(worker, thunk), daemon=True
                )
                worker.thread.start()
            barrier.wait()
            self._drive(workers)
        finally:
            atomic.clear_yield_hook()
            # Release anything still parked so threads can drain.
            for worker in workers:
                worker.go.set()
            for worker in workers:
                if worker.thread is not None:
                    worker.thread.join(timeout=5.0)

        for worker in workers:
            if worker.error is not None:
                raise worker.error

    def _drive(self, workers: list[_Worker]) -> None:
        stalls = 0
        while not all(w.finished for w in workers):
            with self._cond:
                self._cond.wait_for(
                    lambda: any(w.parked for w in workers)
                    or all(w.finished for w in workers),
                    timeout=self.timeout_s,
                )
                parked = [w for w in workers if w.parked]
                if not parked:
                    if all(w.finished for w in workers):
                        return
                    stalls += 1
                    if stalls > self.stall_limit:
                        raise RuntimeError(
                            "interleaver stalled: no worker parked or "
                            f"finished in {self.stall_limit} waits"
                        )
                    continue
                choice = self.rng.choice(parked)
                choice.parked = False
            choice.go.set()
            self.steps += 1
            if self.steps > self.max_steps:
                raise RuntimeError("interleaver exceeded max_steps")
            # Wait (bounded) for the released worker to park again or
            # finish; on timeout it is blocked on a native lock and we
            # schedule someone else to unwedge it.
            with self._cond:
                self._cond.wait_for(
                    lambda: choice.parked or choice.finished or
                    any(w.parked for w in workers if w is not choice),
                    timeout=self.timeout_s,
                )
            stalls = 0
