"""Plan-contract linter for physical operators (rules PC001–PC005).

Every physical operator (a ``ClassDef`` extending ``PhysicalPlan``)
must declare how it moves data with a class-level ``PARTITIONING``
attribute, and the declaration must match what the operator body
actually does to its input RDDs:

* ``"source"``   — materializes partitions itself (scans, local data);
* ``"narrow"``   — per-partition transforms of its children, no data
  movement (filter, project, union);
* ``"exchange"`` — repartitions by key (``partition_by``, ``cogroup``,
  ``reduce_by_key``, ``distinct``, ``sort_by``);
* ``"driver"``   — materializes data on the driver (``collect``,
  ``take``, ``run_job``), the most expensive placement.

The body classification is evidence-based and purely syntactic: the
checker looks at which RDD methods the class calls. Driver evidence
dominates exchange evidence dominates narrow. ``parallelize`` alone is
*not* driver evidence — re-distributing locally built rows is how
sources and limits hand data back to the engine.

On top of the placement contract, three EXPLAIN-marker rules keep the
adaptive/pruning machinery honest:

* PC003 — an operator that prunes (defines ``apply_pruning``) must
  record its decisions (``record_scan``) *and* surface them in
  ``describe()`` (one of the ``zone_pruned`` / ``key_routed`` /
  ``batches_pruned`` markers), otherwise EXPLAIN lies about work done;
* PC004 — an operator that makes a runtime decision (assigns
  ``self.decision``) must echo it from ``describe()``;
* PC005 — a class that produces key placement with ``partition_by``
  must consume it partition-locally (``map_partitions_with_index``);
  producing placement and then discarding it is a silent full shuffle
  wasted.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.report import Violation

PLACEMENTS = frozenset({"source", "narrow", "exchange", "driver"})

#: RDD calls that imply a repartition / data exchange.
EXCHANGE_CALLS = frozenset(
    {"partition_by", "cogroup", "reduce_by_key", "distinct", "sort_by"}
)
#: Calls that materialize data on the driver.
DRIVER_CALLS = frozenset({"collect", "take", "run_job"})

#: EXPLAIN markers a pruning operator must emit (PC003).
PRUNING_MARKERS = ("zone_pruned", "key_routed", "batches_pruned")

_BASE_CLASS = "PhysicalPlan"


def _base_names(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _is_abstract(cls: ast.ClassDef) -> bool:
    """True when ``execute`` is missing or only raises NotImplementedError."""
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "execute":
            body = [
                n for n in stmt.body
                if not (isinstance(n, ast.Expr) and isinstance(n.value, ast.Constant))
            ]
            if len(body) == 1 and isinstance(body[0], ast.Raise):
                exc = body[0].exc
                name = (
                    exc.func.id
                    if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name)
                    else exc.id if isinstance(exc, ast.Name) else None
                )
                return name == "NotImplementedError"
            return False
    return True


def _declared_partitioning(cls: ast.ClassDef) -> tuple[str | None, int]:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "PARTITIONING":
                    value = stmt.value
                    if isinstance(value, ast.Constant) and isinstance(value.value, str):
                        return value.value, stmt.lineno
                    return "", stmt.lineno  # present but not a string literal
    return None, cls.lineno


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _called_attrs(node: ast.AST) -> set[str]:
    calls: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            calls.add(sub.func.attr)
    return calls


def _attr_refs(node: ast.AST) -> set[str]:
    return {
        sub.attr for sub in ast.walk(node) if isinstance(sub, ast.Attribute)
    }


def _string_constants(node: ast.AST) -> list[str]:
    return [
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
    ]


def _assigns_attr(cls: ast.ClassDef, attr: str) -> bool:
    for sub in ast.walk(cls):
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr == attr
                ):
                    return True
    return False


def _computed_partitioning(cls: ast.ClassDef) -> str:
    calls = _called_attrs(cls)
    if calls & DRIVER_CALLS:
        return "driver"
    if calls & EXCHANGE_CALLS:
        return "exchange"
    if "children" in _attr_refs(cls):
        return "narrow"
    return "source"


def _check_operator(cls: ast.ClassDef, path: str) -> list[Violation]:
    violations: list[Violation] = []

    declared, decl_line = _declared_partitioning(cls)
    if declared is None or declared not in PLACEMENTS:
        violations.append(
            Violation(
                "PC001",
                path,
                decl_line,
                f"{cls.name} must declare PARTITIONING as one of "
                f"{sorted(PLACEMENTS)} (got {declared!r})",
            )
        )
    else:
        computed = _computed_partitioning(cls)
        if declared != computed:
            violations.append(
                Violation(
                    "PC002",
                    path,
                    decl_line,
                    f"{cls.name} declares PARTITIONING={declared!r} but its "
                    f"body implies {computed!r}",
                )
            )

    describe = _method(cls, "describe")

    pruner = _method(cls, "apply_pruning")
    if pruner is not None:
        if "record_scan" not in _called_attrs(pruner):
            violations.append(
                Violation(
                    "PC003",
                    path,
                    pruner.lineno,
                    f"{cls.name}.apply_pruning does not record its decision "
                    "(no record_scan call)",
                )
            )
        markers: list[str] = _string_constants(describe) if describe else []
        if not any(m in text for text in markers for m in PRUNING_MARKERS):
            violations.append(
                Violation(
                    "PC003",
                    path,
                    (describe or pruner).lineno,
                    f"{cls.name} prunes but describe() emits none of the "
                    f"markers {PRUNING_MARKERS}",
                )
            )

    if _assigns_attr(cls, "decision"):
        surfaced = describe is not None and (
            "decision" in _attr_refs(describe)
            or any("decision" in text for text in _string_constants(describe))
        )
        if not surfaced:
            violations.append(
                Violation(
                    "PC004",
                    path,
                    cls.lineno,
                    f"{cls.name} records a runtime decision but describe() "
                    "never surfaces it",
                )
            )

    calls = _called_attrs(cls)
    if "partition_by" in calls and "map_partitions_with_index" not in calls:
        violations.append(
            Violation(
                "PC005",
                path,
                cls.lineno,
                f"{cls.name} produces partition_by placement but never "
                "consumes it partition-locally (no map_partitions_with_index)",
            )
        )

    return violations


def check_source(source: str, path: str = "<string>") -> list[Violation]:
    """Run the plan-contract rules over one module's source."""
    tree = ast.parse(source)
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name == _BASE_CLASS or _BASE_CLASS not in _base_names(node):
            continue
        if _is_abstract(node):
            continue
        violations.extend(_check_operator(node, path))
    return violations


def check_file(path: str | Path) -> list[Violation]:
    path = Path(path)
    return check_source(path.read_text(encoding="utf-8"), str(path))
