"""Fault-site registry cross-checks (rules FS001–FS002).

``repro.faults.SITES`` is documented as the single source of truth for
injection sites, but nothing enforced it: a typo'd site string at a
call site silently never fires (chaos coverage rots), and a site
registered but never consulted is dead weight that reads as coverage.
Both actually happened — the circuit-breaker guard labels
``"index.fallback"`` and ``"wal.fsync"`` predated their registration.

* **FS001** — a string literal passed as the site argument to an
  injector method (``maybe_fail`` / ``maybe_crash`` / ``maybe_delay``
  / ``should_fire`` / ``choose``), to ``serving.breaker(...)``, or to
  a ``CircuitBreaker(...)`` constructor, that is not in
  ``faults.SITES``. Non-literal site arguments are skipped — they are
  forwarded registry values, not new names;
* **FS002** — a registered site that no analyzed call site ever names.
  Only checked when the analyzed file set includes
  ``faults/injector.py`` itself (a partial-tree run cannot prove a
  site dead). Breaker registrations count as reachability: a breaker
  guard label is consulted every time the breaker decides.

The live registry is imported, not re-parsed: the analyzer runs with
``src`` on its path, so ``from repro.faults.injector import SITES`` is
the same tuple the engine uses.
"""

from __future__ import annotations

import ast

from repro.analysis.program import Program
from repro.analysis.report import Violation
from repro.faults.injector import SITES

#: Injector methods whose first argument names a site.
_INJECTOR_METHODS = frozenset(
    {
        "maybe_fail",
        "maybe_crash",
        "maybe_delay",
        "should_fire",
        "should_fire_at",
        "choose",
    }
)


def _site_literal(node: ast.Call) -> tuple[str, int] | None:
    """(site, lineno) when the call names a site with a string literal."""
    func = node.func
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    else:
        return None
    takes_site = name in _INJECTOR_METHODS or name in (
        "breaker", "CircuitBreaker"
    )
    if not takes_site or not node.args:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value, node.lineno
    return None


def check_program(program: Program) -> list[Violation]:
    violations: list[Violation] = []
    registered = set(SITES)
    used: set[str] = set()
    for module in program:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            found = _site_literal(node)
            if found is None:
                continue
            site, lineno = found
            used.add(site)
            if site not in registered:
                module.report(
                    violations, "FS001", lineno,
                    f"site {site!r} is not registered in faults.SITES "
                    "(typo, or add it to the registry)",
                )
    injector_module = program.find("faults/injector.py")
    if injector_module is not None:
        # The registry file itself is in the analyzed set: every
        # registered site must be reachable from some call site.
        sites_line = 1
        for node in injector_module.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "SITES"
                for t in node.targets
            ):
                sites_line = node.lineno
        for site in sorted(registered - used):
            injector_module.report(
                violations, "FS002", sites_line,
                f"registered site {site!r} is never named at any "
                "injection or breaker call site (dead chaos coverage)",
            )
    return violations
