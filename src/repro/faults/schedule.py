"""Deterministic gray-failure schedules (the PR 10 chaos harness).

The per-site RNG *streams* of :class:`~repro.faults.injector.
FaultInjector` are deterministic per site, but the order in which
concurrent dispatch threads consume one stream depends on thread
interleaving — good enough for "same seed, same fault *count*", not
for bit-identical replay of *which* task attempt was hit.

A :class:`FaultSchedule` removes the stream entirely: every draw is a
**pure keyed hash** of ``(seed, site, split, attempt)``. Whether the
dispatch of split 3's attempt 0 hangs is a mathematical function of
the schedule, independent of how the thread pool interleaved it with
split 5 — so a replay with the same seed fires the exact same faults
at the exact same logical events, and two runs' recorded traces
compare equal element for element.

``attempt_cap`` bounds firing to the first N attempts of each
``(site, split)`` (default 1: only attempt 0 can be hit), which
guarantees retry progress the way ``max_fires_per_site`` does for
profiles — a retried attempt always runs clean.

Sites (all driver-side draws; the directive ships in the envelope):

* ``cluster.hang``  — the worker freezes whole (beats stop too); the
  heartbeat monitor must detect and fence it within
  ``Config.heartbeat_timeout``;
* ``cluster.delay`` — the worker stalls ``delay_s`` then completes (a
  straggler, not a failure: results must still be exact);
* ``cluster.drop``  — the worker computes but never replies while its
  beats continue (a *partially-responsive* gray worker: only the
  ``Config.rpc_deadline`` backstop can catch it);
* ``cluster.heartbeat_miss`` — driver-side: the monitor discards every
  beat of one ``(slot, generation)``, simulating a lossy beat channel;
  the worker is healthy but gets fenced anyway, so the run proves
  fencing never loses or duplicates rows.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Sites a schedule may arm; draws for anything else never fire.
SCHEDULE_SITES = (
    "cluster.hang",
    "cluster.delay",
    "cluster.drop",
    "cluster.heartbeat_miss",
)

_HASH_DENOM = float(1 << 64)


def keyed_uniform(seed: int, site: str, split: int, attempt: int) -> float:
    """The deterministic U[0,1) draw for one logical event.

    SHA-256 of the event key, reduced to 64 bits — stable across
    processes, platforms, and Python hash randomization.
    """
    digest = hashlib.sha256(
        f"{seed}:{site}:{split}:{attempt}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") / _HASH_DENOM


@dataclass(frozen=True)
class FaultSchedule:
    """Seeded per-site probabilities for keyed gray-failure draws.

    Travels inside :class:`~repro.config.Config` (driver-side only;
    the worker fork strips it so every draw happens exactly once, on
    the driver, at dispatch).
    """

    #: Seed folded into every keyed draw. Same seed → same schedule.
    seed: int = 0
    #: P(a dispatched attempt's worker hangs whole — beats stop).
    hang_p: float = 0.0
    #: P(a dispatched attempt stalls ``delay_s`` before completing).
    delay_p: float = 0.0
    #: P(a dispatched attempt's reply is dropped — beats continue).
    drop_p: float = 0.0
    #: P(one spawned (slot, generation)'s beats are discarded driver-
    #: side; drawn once per spawn with ``generation - 1`` as the
    #: attempt ordinal, so the default cap deafens only first spawns).
    heartbeat_miss_p: float = 0.0
    #: Stall duration of a ``cluster.delay`` fire, in seconds.
    delay_s: float = 0.05
    #: Fire only on the first N attempts of each (site, split); the
    #: default 1 means retries always run clean, so every schedule
    #: makes progress.
    attempt_cap: int = 1

    def __post_init__(self) -> None:
        for name in ("hang_p", "delay_p", "drop_p", "heartbeat_miss_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if self.attempt_cap < 1:
            raise ValueError("attempt_cap must be >= 1")

    def probability(self, site: str) -> float:
        return {
            "cluster.hang": self.hang_p,
            "cluster.delay": self.delay_p,
            "cluster.drop": self.drop_p,
            "cluster.heartbeat_miss": self.heartbeat_miss_p,
        }.get(site, 0.0)

    def should_fire(self, site: str, split: int, attempt: int) -> bool:
        """Pure function of the event key: no state, no stream."""
        if attempt >= self.attempt_cap:
            return False
        p = self.probability(site)
        if p <= 0.0:
            return False
        return keyed_uniform(self.seed, site, split, attempt) < p


def gray_failure_schedule(seed: int = 1337) -> FaultSchedule:
    """The standard gray-failure mix for the 20-seed acceptance sweep:
    hangs, delays, and dropped replies each moderate, plus occasional
    driver-side beat loss — every detector (heartbeat monitor, RPC
    deadline) gets exercised, while the attempt cap keeps each seeded
    run convergent."""
    return FaultSchedule(
        seed=seed,
        hang_p=0.12,
        delay_p=0.2,
        drop_p=0.12,
        heartbeat_miss_p=0.1,
        delay_s=0.03,
    )


__all__ = [
    "SCHEDULE_SITES",
    "FaultSchedule",
    "gray_failure_schedule",
    "keyed_uniform",
]
