"""Deterministic, seeded fault injection.

Chaos testing only pays off when a failing run can be replayed, so the
injector is built around reproducibility:

* every injection *site* (``"task"``, ``"shuffle.fetch"``,
  ``"broker.read"``, ...) draws from its **own** seeded RNG stream —
  enabling faults at one site never perturbs the fire pattern of
  another;
* probabilities are configured per site through a frozen
  :class:`FaultProfile`, which travels inside
  :class:`~repro.config.Config` so a whole session (engine, shuffle,
  broker, indexed operators) shares one injector;
* ``max_fires_per_site`` turns a probabilistic profile into an exact
  one ("fail the first N times, then heal"), which most unit tests
  prefer over statistical assertions.

The injector never fires when constructed without a profile —
:data:`NULL_INJECTOR` is the shared no-op used throughout the engine so
hot paths pay a single attribute check.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import InjectedFault, SimulatedCrash
from repro.faults.schedule import FaultSchedule

#: Injection sites recognised by the engine. Anything else is legal
#: (the injector is generic) but these are the ones wired in. Naming
#: convention (documented in DESIGN.md §10): ``<component>.<operation>``
#: with an optional ``.<mode>`` suffix for distinct failure shapes of
#: the same operation (``disk.write`` fails cleanly, ``disk.write.torn``
#: dies mid-write). ``crash.*`` sites simulate whole-process death
#: (:class:`~repro.errors.SimulatedCrash`) at a named point of the
#: durability protocol rather than a recoverable operation failure.
SITES = (
    "task",
    "task.slow",
    "shuffle.fetch",
    "broker.read",
    "broker.commit",
    "index.probe",
    # file-I/O faults (durability layer)
    "disk.write.torn",
    "disk.read.short",
    "disk.fsync",
    # crash points of the WAL/checkpoint protocol
    "crash.pre_wal",
    "crash.post_wal",
    "crash.mid_checkpoint",
    "crash.post_checkpoint",
    # serving / resource-governance layer
    "serving.admit",
    "serving.cancel",
    "serving.breaker_probe",
    # cluster backend: a worker process dies (os._exit) mid-dispatch
    "cluster.worker_crash",
    # cluster gray failures: schedule-driven (FaultSchedule keyed-hash
    # draws via should_fire_at, not profile streams). hang freezes the
    # worker whole (heartbeat-detected), delay stalls it, drop swallows
    # the reply while beats continue (rpc-deadline-detected),
    # heartbeat_miss discards one generation's beats driver-side.
    "cluster.hang",
    "cluster.delay",
    "cluster.drop",
    "cluster.heartbeat_miss",
    # circuit-breaker guard labels: consulted by serving.breaker(...)
    # on every guarded call rather than drawn as fault probabilities.
    # Registered so the FS rules can cross-check every site literal in
    # the tree against this tuple — a typo'd guard label would
    # otherwise silently split breaker state.
    "index.fallback",
    "wal.fsync",
    "cluster.rpc",
)


@dataclass(frozen=True)
class FaultProfile:
    """Per-site fault probabilities plus the seed that fixes the run.

    All probabilities default to zero, so a profile only injects what a
    test explicitly asks for.
    """

    #: Seed for every per-site RNG stream. Two injectors built from the
    #: same profile produce identical fire sequences.
    seed: int = 0
    #: P(task attempt crashes with an :class:`InjectedFault`).
    task_crash_p: float = 0.0
    #: P(task attempt is a straggler, sleeping ``slow_delay_s``).
    task_slow_p: float = 0.0
    #: Straggler sleep duration in seconds.
    slow_delay_s: float = 0.005
    #: P(a shuffle fetch loses one map output and fails).
    shuffle_loss_p: float = 0.0
    #: P(a broker read fails before returning records).
    broker_read_p: float = 0.0
    #: P(a consumer-offset commit fails on the broker).
    broker_commit_p: float = 0.0
    #: P(an index probe — cTrie lookup or indexed-join probe — fails).
    index_probe_p: float = 0.0
    #: P(a WAL write dies mid-record, leaving a torn tail on disk).
    disk_torn_write_p: float = 0.0
    #: P(a WAL/checkpoint read returns fewer bytes than are on disk).
    disk_short_read_p: float = 0.0
    #: P(an fsync fails — the bytes may or may not be durable).
    disk_fsync_p: float = 0.0
    #: P(process dies just *before* the WAL write of a batch).
    crash_pre_wal_p: float = 0.0
    #: P(process dies after the WAL write but *before* the in-memory
    #: apply — the window the WAL exists to close).
    crash_post_wal_p: float = 0.0
    #: P(process dies mid-checkpoint, before the atomic commit rename).
    crash_mid_checkpoint_p: float = 0.0
    #: P(process dies after checkpoint commit, before WAL cleanup).
    crash_post_checkpoint_p: float = 0.0
    #: P(admission sheds a query spuriously — converted by the
    #: controller into a :class:`~repro.errors.QueryRejectedError`).
    serving_admit_p: float = 0.0
    #: P(an admitted query is cancelled right after its slot grant).
    serving_cancel_p: float = 0.0
    #: P(a half-open circuit-breaker probe fails before running).
    serving_breaker_probe_p: float = 0.0
    #: P(a dispatched cluster task kills its worker process instead of
    #: running — exercises respawn + spill invalidation + lineage).
    cluster_worker_crash_p: float = 0.0
    #: Cap on fires per site; ``None`` means unbounded. With a
    #: probability of 1.0 this gives "fail exactly N times" semantics.
    max_fires_per_site: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "task_crash_p",
            "task_slow_p",
            "shuffle_loss_p",
            "broker_read_p",
            "broker_commit_p",
            "index_probe_p",
            "disk_torn_write_p",
            "disk_short_read_p",
            "disk_fsync_p",
            "crash_pre_wal_p",
            "crash_post_wal_p",
            "crash_mid_checkpoint_p",
            "crash_post_checkpoint_p",
            "serving_admit_p",
            "serving_cancel_p",
            "serving_breaker_probe_p",
            "cluster_worker_crash_p",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.slow_delay_s < 0:
            raise ValueError("slow_delay_s must be non-negative")
        if self.max_fires_per_site is not None and self.max_fires_per_site < 0:
            raise ValueError("max_fires_per_site must be non-negative (or None)")

    def probability(self, site: str) -> float:
        return {
            "task": self.task_crash_p,
            "task.slow": self.task_slow_p,
            "shuffle.fetch": self.shuffle_loss_p,
            "broker.read": self.broker_read_p,
            "broker.commit": self.broker_commit_p,
            "index.probe": self.index_probe_p,
            "disk.write.torn": self.disk_torn_write_p,
            "disk.read.short": self.disk_short_read_p,
            "disk.fsync": self.disk_fsync_p,
            "crash.pre_wal": self.crash_pre_wal_p,
            "crash.post_wal": self.crash_post_wal_p,
            "crash.mid_checkpoint": self.crash_mid_checkpoint_p,
            "crash.post_checkpoint": self.crash_post_checkpoint_p,
            "serving.admit": self.serving_admit_p,
            "serving.cancel": self.serving_cancel_p,
            "serving.breaker_probe": self.serving_breaker_probe_p,
            "cluster.worker_crash": self.cluster_worker_crash_p,
        }.get(site, 0.0)


def chaos_profile(seed: int = 1337, max_fires_per_site: int | None = None) -> FaultProfile:
    """The standard chaos mix used by the acceptance suite and CI:
    task crashes at 0.2, shuffle-fetch loss at 0.1, broker delivery
    failures at 0.1 — all driven by one fixed seed."""
    return FaultProfile(
        seed=seed,
        task_crash_p=0.2,
        shuffle_loss_p=0.1,
        broker_read_p=0.1,
        broker_commit_p=0.1,
        max_fires_per_site=max_fires_per_site,
    )


def durability_chaos_profile(
    seed: int = 1337, max_fires_per_site: int | None = 1
) -> FaultProfile:
    """The crash-recovery chaos mix: every crash point of the WAL/
    checkpoint protocol armed at a moderate probability, plus torn
    writes, so one seeded run dies at an unpredictable-but-replayable
    point. Capped at one fire per site by default — after the first
    simulated death the test harness restarts from disk, and a second
    crash inside *recovery* is a different experiment."""
    return FaultProfile(
        seed=seed,
        disk_torn_write_p=0.15,
        crash_pre_wal_p=0.15,
        crash_post_wal_p=0.15,
        crash_mid_checkpoint_p=0.3,
        crash_post_checkpoint_p=0.3,
        max_fires_per_site=max_fires_per_site,
    )


def serving_chaos_profile(
    seed: int = 1337, max_fires_per_site: int | None = None
) -> FaultProfile:
    """The overload chaos mix for the serving layer: spurious admission
    sheds, post-grant cancellations, failed breaker probes, plus the
    engine faults (task crashes, shuffle loss, index-probe failures)
    that drive breakers through their trip → half-open → close cycle.
    Probabilities are moderate so a closed-loop run sees *every* error
    class — rejections, cancellations, fallbacks — without starving the
    success path the latency assertions need."""
    return FaultProfile(
        seed=seed,
        task_crash_p=0.05,
        shuffle_loss_p=0.05,
        index_probe_p=0.05,
        serving_admit_p=0.1,
        serving_cancel_p=0.1,
        serving_breaker_probe_p=0.3,
        max_fires_per_site=max_fires_per_site,
    )


def cluster_chaos_profile(
    seed: int = 1337, max_fires_per_site: int | None = 2
) -> FaultProfile:
    """The worker-kill chaos mix for the cluster backend: dispatched
    tasks occasionally poison their worker into ``os._exit``, forcing
    respawn, spill-output invalidation, and lineage recomputation.
    Capped per site by default so a seeded run makes progress instead
    of killing every attempt."""
    return FaultProfile(
        seed=seed,
        cluster_worker_crash_p=0.25,
        max_fires_per_site=max_fires_per_site,
    )


class FaultInjector:
    """Seeded decision-maker consulted at every injection site.

    Thread-safe: concurrent tasks draw from the per-site streams under
    a lock, and fire counts are exposed through :meth:`stats`.
    """

    def __init__(
        self,
        profile: FaultProfile | None = None,
        schedule: "FaultSchedule | None" = None,
    ):
        self.profile = profile
        #: Optional gray-failure schedule (keyed-hash draws; see
        #: :mod:`repro.faults.schedule`). Independent of the profile:
        #: a session may run either or both.
        self.schedule = schedule
        self._lock = threading.Lock()
        self._rngs: dict[str, random.Random] = {}
        self._fired: dict[str, int] = {}
        #: Fired schedule events, for replay comparison. Sorted on
        #: read, so two runs with different thread interleavings (which
        #: *record* in different orders) still compare equal.
        self._schedule_trace: list[tuple[str, int, int]] = []  # guarded-by: _lock
        if profile is not None:
            for site in SITES:
                # str-seeding is stable across processes (hashlib-based),
                # and one stream per site keeps sites independent.
                self._rngs[site] = random.Random(f"{profile.seed}:{site}")

    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.profile is not None or self.schedule is not None

    def should_fire_at(self, site: str, split: int, attempt: int) -> bool:
        """Schedule draw for one logical event: a pure keyed hash of
        ``(seed, site, split, attempt)``, so the outcome is independent
        of thread interleaving and bit-identical on replay. Fired
        events are recorded for trace comparison."""
        schedule = self.schedule
        if schedule is None:
            return False
        fired = schedule.should_fire(site, split, attempt)
        if fired:
            with self._lock:
                self._schedule_trace.append((site, split, attempt))
                self._fired[site] = self._fired.get(site, 0) + 1
        return fired

    def schedule_trace(self) -> list[tuple[str, int, int]]:
        """Every fired schedule event so far, sorted (order-free)."""
        with self._lock:
            return sorted(self._schedule_trace)

    def should_fire(self, site: str) -> bool:
        """Draw from the site's stream; True when a fault should occur."""
        profile = self.profile
        if profile is None:
            return False
        p = profile.probability(site)
        if p <= 0.0:
            return False
        with self._lock:
            if (
                profile.max_fires_per_site is not None
                and self._fired.get(site, 0) >= profile.max_fires_per_site
            ):
                return False
            rng = self._rngs.get(site)
            if rng is None:  # unknown site: dedicated stream on demand
                rng = self._rngs[site] = random.Random(f"{profile.seed}:{site}")
            fired = rng.random() < p
            if fired:
                self._fired[site] = self._fired.get(site, 0) + 1
            return fired

    def maybe_fail(self, site: str) -> None:
        """Raise :class:`InjectedFault` when the site's draw fires."""
        if self.should_fire(site):
            raise InjectedFault(site)

    def maybe_crash(self, site: str) -> None:
        """Raise :class:`SimulatedCrash` when the site's draw fires.

        Unlike :meth:`maybe_fail`, the raised exception derives from
        ``BaseException``: no retry or supervision layer may absorb it.
        """
        if self.should_fire(site):
            raise SimulatedCrash(site)

    def maybe_delay(self, site: str = "task.slow") -> None:
        """Sleep ``slow_delay_s`` when the straggler draw fires."""
        if self.should_fire(site):
            assert self.profile is not None
            time.sleep(self.profile.slow_delay_s)

    def choose(self, site: str, options: Sequence[Any]) -> Any:
        """Pick a victim (e.g. which map output to lose) from the
        site's stream, keeping the whole fault deterministic."""
        if not options:
            raise ValueError("no options to choose a fault victim from")
        profile = self.profile
        if profile is None:
            return options[0]
        with self._lock:
            rng = self._rngs.setdefault(
                site, random.Random(f"{profile.seed}:{site}")
            )
            return rng.choice(list(options))

    def stats(self) -> dict[str, int]:
        """Fires per site so far (sites that never fired are absent)."""
        with self._lock:
            return dict(self._fired)

    def __repr__(self) -> str:
        state = "disabled" if self.profile is None else f"seed={self.profile.seed}"
        return f"FaultInjector({state})"


#: Shared no-op injector: ``should_fire`` is a two-branch fast path.
NULL_INJECTOR = FaultInjector(None)
