"""Deterministic fault injection for chaos-testing the engine.

One seeded :class:`FaultInjector` per engine context drives every
injection site — task crashes, stragglers, shuffle-fetch loss, broker
delivery failures, and index-probe failures — so a chaotic run can be
replayed exactly from its seed. See :mod:`repro.faults.injector`.
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    SITES,
    FaultInjector,
    FaultProfile,
    chaos_profile,
    cluster_chaos_profile,
    durability_chaos_profile,
    serving_chaos_profile,
)

__all__ = [
    "FaultInjector",
    "FaultProfile",
    "chaos_profile",
    "cluster_chaos_profile",
    "durability_chaos_profile",
    "serving_chaos_profile",
    "NULL_INJECTOR",
    "SITES",
]
