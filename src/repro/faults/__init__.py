"""Deterministic fault injection for chaos-testing the engine.

One seeded :class:`FaultInjector` per engine context drives every
injection site — task crashes, stragglers, shuffle-fetch loss, broker
delivery failures, and index-probe failures — so a chaotic run can be
replayed exactly from its seed. See :mod:`repro.faults.injector`.
Gray-failure *schedules* (hangs, delays, dropped replies, heartbeat
loss, keyed-hash draws replayed bit-identically) live in
:mod:`repro.faults.schedule`.
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    SITES,
    FaultInjector,
    FaultProfile,
    chaos_profile,
    cluster_chaos_profile,
    durability_chaos_profile,
    serving_chaos_profile,
)
from repro.faults.schedule import (
    SCHEDULE_SITES,
    FaultSchedule,
    gray_failure_schedule,
    keyed_uniform,
)

__all__ = [
    "FaultInjector",
    "FaultProfile",
    "FaultSchedule",
    "chaos_profile",
    "cluster_chaos_profile",
    "durability_chaos_profile",
    "gray_failure_schedule",
    "keyed_uniform",
    "serving_chaos_profile",
    "NULL_INJECTOR",
    "SCHEDULE_SITES",
    "SITES",
]
