"""Micro-batch ingestion: broker topic → Indexed DataFrame versions.

The structured-streaming shape of the paper's demo: a loop drains the
update topic in micro-batches and calls ``append_rows``, minting a new
MVCC version per batch. Readers grab :meth:`IndexedIngest.current` at
any moment and query a stable version while ingestion continues.

Runs either synchronously (:meth:`step`, for tests and benchmarks) or
on a supervised background thread (:meth:`start` / :meth:`stop`).

At-least-once contract:

* broker offsets are **committed only after** ``append_rows``
  succeeded, so a crash anywhere in the poll→apply window replays the
  batch instead of losing it;
* polls are retried with exponential backoff up to
  ``Config.ingest_max_retries`` before raising
  :class:`~repro.errors.RetryExhaustedError`;
* replayed records are deduplicated against a per-partition *applied
  watermark* (the next offset each partition still owes the store), so
  at-least-once delivery composes into exactly-once application;
* a commit failure is tolerated (the next successful commit persists
  strictly newer offsets — worst case is a replay, which dedup
  absorbs);
* the background loop is supervised: a crashed iteration rewinds the
  consumer to the applied watermark, backs off, and restarts —
  counted in :attr:`loop_restarts`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.core.indexed_df import IndexedDataFrame
from repro.errors import ReproError, RetryExhaustedError
from repro.streaming.broker import Broker
from repro.streaming.consumer import Consumer

#: Hard cap on one supervised-loop backoff sleep.
_MAX_LOOP_BACKOFF_S = 0.5


class IndexedIngest:
    """Drains a topic of row tuples into an Indexed DataFrame."""

    def __init__(
        self,
        broker: Broker,
        topic: str,
        indexed: IndexedDataFrame,
        batch_size: int = 500,
        group: str = "ingest",
        on_batch: Callable[[IndexedDataFrame, int], None] | None = None,
        max_retries: int | None = None,
        backoff_s: float | None = None,
    ):
        config = indexed.session.config
        self.consumer = Consumer(broker, topic, group)
        self.batch_size = batch_size
        self.on_batch = on_batch
        self.max_retries = (
            config.ingest_max_retries if max_retries is None else max_retries
        )
        self.backoff_s = config.ingest_backoff_s if backoff_s is None else backoff_s
        self._current = indexed  # guarded-by: _lock
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        # Applied watermark: next offset each partition owes the store.
        # Starts at the committed offsets — everything below them was
        # applied by definition of the commit-after-apply contract.
        committed = broker.committed_offsets(group, topic)
        self._applied: dict[int, int] = {  # guarded-by: _lock
            p: committed.get(p, 0) for p in range(broker.num_partitions(topic))
        }
        self.batches_applied = 0  # guarded-by: _lock
        self.rows_applied = 0  # guarded-by: _lock
        self.poll_failures = 0  # guarded-by: _lock
        self.commit_failures = 0  # guarded-by: _lock
        self.duplicates_skipped = 0  # guarded-by: _lock
        self.loop_restarts = 0  # guarded-by: _lock
        self.last_error: BaseException | None = None  # guarded-by: _lock

    @property
    def current(self) -> IndexedDataFrame:
        """The latest ingested version (safe to query concurrently)."""
        with self._lock:
            return self._current

    # ------------------------------------------------------------------

    def step(self) -> int:
        """Apply one micro-batch; returns rows applied (0 if idle).

        Order of operations is the whole contract: poll (retried) →
        dedup against the applied watermark → ``append_rows`` → advance
        watermark → commit. A crash before the watermark advance leaves
        the batch uncommitted and unapplied (replayed next step); a
        crash after it is absorbed by dedup.
        """
        records = self._poll_with_retry()
        if not records:
            return 0
        fresh = [r for r in records if r.offset >= self._applied.get(r.partition, 0)]
        if len(fresh) < len(records):
            with self._lock:
                self.duplicates_skipped += len(records) - len(fresh)
        if not fresh:
            # Positions moved past already-applied records; persist that.
            self._try_commit()
            return 0
        rows = [tuple(r.value) for r in fresh]
        try:
            with self._lock:
                self._current = self._current.append_rows(rows)
                current = self._current
                for r in fresh:
                    nxt = r.offset + 1
                    if nxt > self._applied.get(r.partition, 0):
                        self._applied[r.partition] = nxt
        except BaseException:
            # Apply failed: rewind the consumer to the applied watermark
            # so the batch is re-polled rather than silently skipped.
            self.consumer.seek(dict(self._applied))
            raise
        self._log_watermark()
        self._try_commit()
        with self._lock:
            self.batches_applied += 1
            self.rows_applied += len(rows)
        if self.on_batch is not None:
            self.on_batch(current, len(rows))
        return len(rows)

    def _poll_with_retry(self):
        attempt = 0
        while True:
            try:
                return self.consumer.poll(self.batch_size)
            except ReproError as exc:
                with self._lock:
                    self.poll_failures += 1
                    self.last_error = exc
                if attempt >= self.max_retries:
                    raise RetryExhaustedError(
                        "ingest poll", attempt + 1, exc
                    ) from exc
                time.sleep(min(self.backoff_s * (2**attempt), _MAX_LOOP_BACKOFF_S))
                attempt += 1

    def _log_watermark(self) -> None:
        """Persist the applied watermark to the durable store (if any).

        Written *after* the rows were applied (and therefore WAL-logged)
        and *before* the broker commit: recovery restores broker offsets
        from the last durable marker, so a batch that reached this point
        is never re-applied after a restart. A crash in the small window
        between the row log and this marker degrades that one batch to
        at-least-once — the standard gap for non-transactional sinks —
        which the chaos suite tolerates explicitly.
        """
        durable = getattr(self.current.store, "durable_store", None)
        if durable is None:
            return
        with self._lock:
            watermark = dict(self._applied)
        try:
            durable.log_offsets(self.consumer.group, self.consumer.topic, watermark)
        except ReproError as exc:
            # Same tolerance as a commit failure: the next successful
            # marker persists strictly newer offsets; worst case is a
            # replayed batch, which dedup absorbs.
            with self._lock:
                self.commit_failures += 1
                self.last_error = exc

    def _try_commit(self) -> None:
        """Commit offsets; tolerate failure (replays are deduplicated)."""
        try:
            self.consumer.commit()
        except ReproError as exc:
            with self._lock:
                self.commit_failures += 1
                self.last_error = exc

    def drain(self) -> int:
        """Apply batches until the topic is empty; returns total rows."""
        total = 0
        while True:
            applied = self.step()
            if applied == 0 and self.consumer.lag() == 0:
                return total
            total += applied

    # ------------------------------------------------------------------

    def start(self, poll_interval: float = 0.01) -> None:
        """Start the supervised background ingestion loop."""
        if self._thread is not None:
            return
        self._stop.clear()

        def supervised_loop() -> None:
            while not self._stop.is_set():
                try:
                    while not self._stop.is_set():
                        if self.step() == 0:
                            time.sleep(poll_interval)
                except ReproError as exc:
                    # The worker died; restart it from the applied
                    # watermark after a bounded backoff.
                    with self._lock:
                        self.last_error = exc
                        self.loop_restarts += 1
                    self.consumer.seek(dict(self._applied))
                    self._stop.wait(
                        min(poll_interval * (2 ** min(self.loop_restarts, 6)),
                            _MAX_LOOP_BACKOFF_S)
                    )

        self._thread = threading.Thread(
            target=supervised_loop, name="indexed-ingest", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the loop (drains nothing further)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
