"""Micro-batch ingestion: broker topic → Indexed DataFrame versions.

The structured-streaming shape of the paper's demo: a loop drains the
update topic in micro-batches and calls ``append_rows``, minting a new
MVCC version per batch. Readers grab :meth:`IndexedIngest.current` at
any moment and query a stable version while ingestion continues.

Runs either synchronously (:meth:`step`, for tests and benchmarks) or
on a background thread (:meth:`start` / :meth:`stop`).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.core.indexed_df import IndexedDataFrame
from repro.streaming.broker import Broker
from repro.streaming.consumer import Consumer


class IndexedIngest:
    """Drains a topic of row tuples into an Indexed DataFrame."""

    def __init__(
        self,
        broker: Broker,
        topic: str,
        indexed: IndexedDataFrame,
        batch_size: int = 500,
        group: str = "ingest",
        on_batch: Callable[[IndexedDataFrame, int], None] | None = None,
    ):
        self.consumer = Consumer(broker, topic, group)
        self.batch_size = batch_size
        self.on_batch = on_batch
        self._current = indexed
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.batches_applied = 0
        self.rows_applied = 0

    @property
    def current(self) -> IndexedDataFrame:
        """The latest ingested version (safe to query concurrently)."""
        with self._lock:
            return self._current

    # ------------------------------------------------------------------

    def step(self) -> int:
        """Apply one micro-batch; returns rows applied (0 if idle)."""
        records = self.consumer.poll(self.batch_size)
        if not records:
            return 0
        rows = [tuple(r.value) for r in records]
        with self._lock:
            self._current = self._current.append_rows(rows)
            current = self._current
        self.consumer.commit()
        self.batches_applied += 1
        self.rows_applied += len(rows)
        if self.on_batch is not None:
            self.on_batch(current, len(rows))
        return len(rows)

    def drain(self) -> int:
        """Apply batches until the topic is empty; returns total rows."""
        total = 0
        while True:
            applied = self.step()
            if applied == 0:
                return total
            total += applied

    # ------------------------------------------------------------------

    def start(self, poll_interval: float = 0.01) -> None:
        """Start the background ingestion loop."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                if self.step() == 0:
                    time.sleep(poll_interval)

        self._thread = threading.Thread(target=loop, name="indexed-ingest", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the loop (drains nothing further)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
