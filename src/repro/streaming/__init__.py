"""Kafka substrate: in-process broker, producers, consumers, ingestion.

The paper's demo uses *"the Apache Kafka engine to handle the constant
updating stream that is mutating the graph"*. This package provides an
in-process equivalent with the same moving parts:

* :class:`~repro.streaming.broker.Broker` — topics with partitions,
  per-partition append logs, and offset-based reads;
* :class:`~repro.streaming.producer.Producer` — key-hash routing of
  records to topic partitions;
* :class:`~repro.streaming.consumer.Consumer` — offset tracking with
  commit, poll batching, and consumer groups;
* :class:`~repro.streaming.ingest.IndexedIngest` — a micro-batch loop
  that drains a topic into an Indexed DataFrame, minting a new MVCC
  version per batch while queries keep reading stable snapshots.
"""

from repro.streaming.broker import Broker, TopicPartition
from repro.streaming.consumer import Consumer
from repro.streaming.ingest import IndexedIngest
from repro.streaming.producer import Producer

__all__ = ["Broker", "TopicPartition", "Producer", "Consumer", "IndexedIngest"]
