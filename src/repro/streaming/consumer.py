"""Consumer: offset-tracked polling over all partitions of a topic."""

from __future__ import annotations

from typing import Any

from repro.streaming.broker import Broker, Record, TopicPartition


class Consumer:
    """Reads a topic from tracked offsets (one logical consumer group).

    ``poll`` returns up to ``max_records`` records across partitions
    and *advances* the in-memory position; ``commit`` persists positions
    so a new consumer in the same group resumes where this one left
    off. Without commit, an uncommitted consumer restarts from the
    committed (or zero) offsets — Kafka's at-least-once shape.
    """

    def __init__(self, broker: Broker, topic: str, group: str = "default"):
        self.broker = broker
        self.topic = topic
        self.group = group
        committed = broker.committed_offsets(group, topic)
        self._positions = {
            p: committed.get(p, 0) for p in range(broker.num_partitions(topic))
        }

    def poll(self, max_records: int = 100) -> list[Record]:
        """Fetch up to ``max_records``, round-robining partitions."""
        out: list[Record] = []
        remaining = max_records
        for partition, position in sorted(self._positions.items()):
            if remaining <= 0:
                break
            records = self.broker.read(
                TopicPartition(self.topic, partition), position, remaining
            )
            if records:
                out.extend(records)
                self._positions[partition] = records[-1].offset + 1
                remaining -= len(records)
        return out

    def commit(self) -> None:
        """Persist current positions for the consumer group (stored on
        the broker, as Kafka does)."""
        self.broker.commit_offsets(self.group, self.topic, self._positions)

    def lag(self) -> int:
        """Records available but not yet polled."""
        total = 0
        for partition, position in self._positions.items():
            end = self.broker.end_offset(TopicPartition(self.topic, partition))
            total += end - position
        return total

    def seek_to_beginning(self) -> None:
        self._positions = {p: 0 for p in self._positions}

    def values(self, max_records: int = 100) -> list[Any]:
        return [r.value for r in self.poll(max_records)]
