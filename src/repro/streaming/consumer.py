"""Consumer: offset-tracked polling over all partitions of a topic."""

from __future__ import annotations

from typing import Any

from repro.streaming.broker import Broker, Record, TopicPartition


class Consumer:
    """Reads a topic from tracked offsets (one logical consumer group).

    ``poll`` returns up to ``max_records`` records across partitions
    and *advances* the in-memory position; ``commit`` persists positions
    so a new consumer in the same group resumes where this one left
    off. Without commit, an uncommitted consumer restarts from the
    committed (or zero) offsets — Kafka's at-least-once shape.

    Two fault-tolerance properties:

    * **atomic polls** — positions advance only after every partition
      read succeeded, so a broker failure mid-poll never skips records
      that were fetched but not delivered to the caller;
    * **fair rotation** — the starting partition rotates across polls,
      so a small ``max_records`` cannot starve high-numbered partitions
      behind a constantly-refilling partition 0.
    """

    def __init__(self, broker: Broker, topic: str, group: str = "default"):
        self.broker = broker
        self.topic = topic
        self.group = group
        committed = broker.committed_offsets(group, topic)
        self._positions = {
            p: committed.get(p, 0) for p in range(broker.num_partitions(topic))
        }
        self._start = 0

    def poll(self, max_records: int = 100) -> list[Record]:
        """Fetch up to ``max_records``, round-robining partitions.

        All-or-nothing: a broker failure on any partition leaves every
        position untouched, so the next poll re-reads the same records.
        """
        partitions = sorted(self._positions)
        n = len(partitions)
        if n == 0:
            return []
        order = partitions[self._start % n :] + partitions[: self._start % n]
        new_positions = dict(self._positions)
        out: list[Record] = []
        remaining = max_records
        for partition in order:
            if remaining <= 0:
                break
            records = self.broker.read(
                TopicPartition(self.topic, partition),
                new_positions[partition],
                remaining,
            )
            if records:
                out.extend(records)
                new_positions[partition] = records[-1].offset + 1
                remaining -= len(records)
        # Commit the advance only now that every read succeeded.
        self._positions = new_positions
        self._start = (self._start + 1) % n
        return out

    def commit(self) -> None:
        """Persist current positions for the consumer group (stored on
        the broker, as Kafka does)."""
        self.broker.commit_offsets(self.group, self.topic, self._positions)

    def seek(self, positions: dict[int, int]) -> None:
        """Rewind/advance in-memory positions (per-partition offsets).

        Partitions absent from ``positions`` keep their position. Used
        by supervised consumers to replay from their applied watermark
        after a mid-batch failure.
        """
        for partition, offset in positions.items():
            if partition in self._positions:
                self._positions[partition] = offset

    def rollback_to_committed(self) -> None:
        """Reset in-memory positions to the group's committed offsets —
        what a crash-and-restart of this consumer would observe."""
        committed = self.broker.committed_offsets(self.group, self.topic)
        self._positions = {p: committed.get(p, 0) for p in self._positions}

    def lag(self) -> int:
        """Records available but not yet polled."""
        total = 0
        for partition, position in self._positions.items():
            end = self.broker.end_offset(TopicPartition(self.topic, partition))
            total += end - position
        return total

    def seek_to_beginning(self) -> None:
        self._positions = {p: 0 for p in self._positions}

    def values(self, max_records: int = 100) -> list[Any]:
        return [r.value for r in self.poll(max_records)]
