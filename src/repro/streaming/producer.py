"""Producer: routes records to topic partitions by key hash."""

from __future__ import annotations

import itertools
from typing import Any, Iterable

from repro.engine.partitioner import portable_hash
from repro.streaming.broker import Broker


class Producer:
    """Publishes key/value records to a broker topic.

    Records with a key always land in the same partition (preserving
    per-key ordering, as Kafka guarantees); keyless records round-robin.
    """

    def __init__(self, broker: Broker, topic: str):
        self.broker = broker
        self.topic = topic
        self._num_partitions = broker.num_partitions(topic)
        self._round_robin = itertools.count()

    def send(self, value: Any, key: Any = None) -> tuple[int, int]:
        """Publish one record; returns ``(partition, offset)``."""
        if key is None:
            partition = next(self._round_robin) % self._num_partitions
        else:
            partition = portable_hash(key) % self._num_partitions
        offset = self.broker.append(self.topic, partition, key, value)
        return partition, offset

    def send_all(self, values: Iterable[Any], key_fn=None) -> int:
        """Publish many records; returns how many were sent."""
        count = 0
        for value in values:
            key = key_fn(value) if key_fn is not None else None
            self.send(value, key)
            count += 1
        return count
