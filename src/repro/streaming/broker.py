"""In-process message broker: topics, partitions, offsets.

Semantics follow Kafka where it matters to the demo:

* a topic has N partitions, each an append-only log;
* records are ``(key, value)``; the producer routes by key hash (or
  round-robin for None keys);
* consumers read by ``(topic, partition, offset)`` — the broker never
  deletes or mutates records, so re-reads are always possible;
* thread-safe: producers and consumers run on different threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import StreamingError
from repro.faults import NULL_INJECTOR, FaultInjector


@dataclass(frozen=True)
class TopicPartition:
    """Address of one partition of a topic."""

    topic: str
    partition: int


@dataclass(frozen=True)
class Record:
    """One stored record."""

    topic: str
    partition: int
    offset: int
    key: Any
    value: Any


class _PartitionLog:
    __slots__ = ("records", "lock")

    def __init__(self) -> None:
        self.records: list[Record] = []
        self.lock = threading.Lock()


class Broker:
    """Holds every topic's partition logs.

    An optional :class:`~repro.faults.FaultInjector` simulates delivery
    failures: reads and offset commits raise
    :class:`~repro.errors.InjectedFault` when their site fires. The log
    itself is never corrupted — exactly like a network fault in front
    of a durable Kafka partition — so retries always see intact data.
    """

    def __init__(self, injector: FaultInjector | None = None) -> None:
        self._topics: dict[str, list[_PartitionLog]] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self._injector = injector or NULL_INJECTOR
        # Committed consumer-group offsets live on the broker (as in
        # Kafka), keyed by (group, topic) → {partition: offset}.
        self._committed: dict[tuple[str, str], dict[int, int]] = {}  # guarded-by: _lock

    def create_topic(self, name: str, partitions: int = 1) -> None:
        if partitions < 1:
            raise StreamingError("a topic needs at least one partition")
        with self._lock:
            if name in self._topics:
                raise StreamingError(f"topic {name!r} already exists")
            self._topics[name] = [_PartitionLog() for _ in range(partitions)]

    def topics(self) -> list[str]:
        with self._lock:
            return sorted(self._topics)

    def num_partitions(self, topic: str) -> int:
        return len(self._logs(topic))

    def _logs(self, topic: str) -> list[_PartitionLog]:
        with self._lock:
            try:
                return self._topics[topic]
            except KeyError:
                raise StreamingError(f"unknown topic: {topic}") from None

    # ------------------------------------------------------------------

    def append(self, topic: str, partition: int, key: Any, value: Any) -> int:
        """Append one record; returns its offset."""
        logs = self._logs(topic)
        if not 0 <= partition < len(logs):
            raise StreamingError(
                f"partition {partition} out of range for topic {topic!r}"
            )
        log = logs[partition]
        with log.lock:
            offset = len(log.records)
            log.records.append(Record(topic, partition, offset, key, value))
            return offset

    def read(
        self, tp: TopicPartition, offset: int, max_records: int
    ) -> Sequence[Record]:
        """Records from ``offset`` (inclusive), at most ``max_records``."""
        self._injector.maybe_fail("broker.read")
        logs = self._logs(tp.topic)
        log = logs[tp.partition]
        with log.lock:
            return log.records[offset : offset + max_records]

    def end_offset(self, tp: TopicPartition) -> int:
        """The offset one past the last record (Kafka's log end offset)."""
        log = self._logs(tp.topic)[tp.partition]
        with log.lock:
            return len(log.records)

    def total_records(self, topic: str) -> int:
        return sum(
            self.end_offset(TopicPartition(topic, p))
            for p in range(self.num_partitions(topic))
        )

    # ------------------------------------------------------------------
    # Consumer-group offsets
    # ------------------------------------------------------------------

    def committed_offsets(self, group: str, topic: str) -> dict[int, int]:
        with self._lock:
            return dict(self._committed.get((group, topic), {}))

    def commit_offsets(
        self, group: str, topic: str, positions: dict[int, int]
    ) -> None:
        """Persist consumer-group positions — **advance-only** per
        partition.

        A consumer that crashed between poll and commit (or a laggy
        concurrent consumer in the same group committing stale
        positions) must never rewind the group below offsets another
        member already committed: rewinding would re-deliver records a
        restarted consumer treats as fresh. Deliberate rewinds go
        through :meth:`Consumer.seek`, which is in-memory per consumer.
        """
        self._injector.maybe_fail("broker.commit")
        with self._lock:
            current = self._committed.setdefault((group, topic), {})
            for partition, offset in positions.items():
                if offset > current.get(partition, 0):
                    current[partition] = offset

    def restore_committed_offsets(
        self, group: str, topic: str, positions: dict[int, int]
    ) -> None:
        """Install recovered offsets (crash recovery), advance-only.

        Identical merge semantics to :meth:`commit_offsets` but without
        the injected-fault site: recovery must not be tripped by the
        chaos profile that killed the previous incarnation.
        """
        with self._lock:
            current = self._committed.setdefault((group, topic), {})
            for partition, offset in positions.items():
                if offset > current.get(partition, 0):
                    current[partition] = offset
