"""repro — Indexed DataFrame: low-latency queries on updatable data.

A faithful, self-contained Python reproduction of *"[Demo] Low-latency
Spark Queries on Updatable Data"* (Uta, Ghit, Dave, Boncz — SIGMOD
2019), including every substrate the paper builds on:

* :mod:`repro.engine` — a Spark-core analogue (RDDs, DAG scheduler,
  shuffle, cache, broadcast);
* :mod:`repro.sql` — a Spark-SQL analogue (DataFrames, SQL parser,
  Catalyst-style analyzer/optimizer/planner);
* :mod:`repro.ctrie` — the concurrent trie with O(1) snapshots
  (Prokopec et al. 2012);
* :mod:`repro.core` — **the paper's contribution**: the Indexed
  DataFrame (row batches + cTrie + backward pointers, MVCC versions,
  index-aware optimizer rules);
* :mod:`repro.snb` — an LDBC SNB-style datagen, the 7 short-read
  queries, and update streams;
* :mod:`repro.streaming` — a Kafka-like in-process broker and
  micro-batch ingestion;
* :mod:`repro.bench` — the harness regenerating the paper's figures.

Quickstart::

    from repro import Config, Session, create_index, enable_indexing

    session = Session(Config(executor_threads=4))
    enable_indexing(session)

    df = session.create_dataframe(rows, [("id", "long"), ("name", "string")])
    indexed = df.create_index("id").cache()
    indexed.get_rows(1234).show()
    indexed = indexed.append_rows(more_rows_df)
"""

from repro.config import Config
from repro.core import IndexedDataFrame, create_index, enable_indexing
from repro.errors import ReproError
from repro.sql import DataFrame, Row, Session

__version__ = "1.0.0"

__all__ = [
    "Config",
    "Session",
    "DataFrame",
    "Row",
    "IndexedDataFrame",
    "create_index",
    "enable_indexing",
    "ReproError",
    "__version__",
]
