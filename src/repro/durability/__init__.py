"""Durable state for Indexed DataFrames: WAL, checkpoints, recovery.

The paper's system keeps row batches and the cTrie entirely in executor
memory — a crash loses every append since load. This package closes
that gap with the classic three-part protocol:

* **write-ahead log** (:mod:`repro.durability.wal`) — every appended
  row is written to a per-partition, CRC32-sealed log *before* the
  in-memory apply; a crash mid-write leaves a torn tail that replay
  truncates;
* **checkpoints** (:mod:`repro.durability.checkpoint`) — sealed row
  batches plus a compact cTrie manifest are serialized under an atomic
  rename commit protocol, after which the WAL prefix is discarded;
* **recovery** (:mod:`repro.durability.recovery`) — on startup the
  store is rebuilt from checkpoint + WAL replay, reconstructing
  backward-pointer chains, zone maps, MVCC state, and the broker
  consumer offsets that make replayed micro-batches dedupe cleanly.

Everything is gated by ``Config.durability_enabled`` (or
``REPRO_DURABILITY=1``); with the flag off nothing in this package is
imported and the engine behaves bit-identically to a build without it.
"""

from repro.durability.checkpoint import CHECKPOINT_PREFIX, CURRENT_FILE, DurableStore
from repro.durability.coordinator import DurabilityCoordinator
from repro.durability.recovery import RecoveryManager
from repro.durability.wal import RT_OFFSETS, RT_ROW, WALWriter, replay_wal

__all__ = [
    "CHECKPOINT_PREFIX",
    "CURRENT_FILE",
    "DurabilityCoordinator",
    "DurableStore",
    "RecoveryManager",
    "RT_OFFSETS",
    "RT_ROW",
    "WALWriter",
    "replay_wal",
]
