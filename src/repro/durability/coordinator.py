"""DurabilityCoordinator: the session-level face of durable state.

Owned by :class:`~repro.sql.session.Session` when
``Config.durability_enabled`` is on (``REPRO_DURABILITY=1``). Resolves
the on-disk root (``Config.durability_dir`` → ``REPRO_DURABILITY_DIR``
→ ``.repro_state``), hands out one :class:`DurableStore` per named
table, and is the entry point for the two lifecycle moments:

* :meth:`make_durable` — bind a live Indexed DataFrame to a named
  store: write table metadata, attach per-partition WAL writers, and
  start the background checkpointer. Done *before* the initial rows
  load in ``create_index(..., durable_name=...)`` so the load itself
  is logged;
* :meth:`recover` — restore a named table from checkpoint + WAL replay
  on startup (returns ``None`` when the store does not exist yet, so
  callers can fall through to a fresh build).
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING

from repro.durability.checkpoint import DurableStore
from repro.durability.recovery import RecoveryManager, schema_to_meta
from repro.errors import DurabilityError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.indexed_df import IndexedDataFrame
    from repro.sql.session import Session
    from repro.streaming.broker import Broker

#: Default on-disk root when neither the config field nor the
#: environment variable names one.
DEFAULT_ROOT = ".repro_state"


def resolve_root(configured: str | None) -> Path:
    """``Config.durability_dir`` → ``REPRO_DURABILITY_DIR`` → default."""
    if configured:
        return Path(configured)
    env = os.environ.get("REPRO_DURABILITY_DIR")
    if env:
        return Path(env)
    return Path(DEFAULT_ROOT)


class DurabilityCoordinator:
    """Registry of the session's durable stores."""

    def __init__(self, session: "Session"):
        self.session = session
        self.root = resolve_root(session.config.durability_dir)
        self._injector = session.ctx.fault_injector
        self._lock = threading.Lock()
        self._stores = {}  # guarded-by: _lock

    def store(self, name: str) -> DurableStore:
        """The (cached) handle for the named store; does not create
        anything on disk by itself."""
        if not name or "/" in name or name.startswith("."):
            raise DurabilityError(f"invalid durable store name: {name!r}")
        with self._lock:
            found = self._stores.get(name)
            if found is None:
                config = self.session.config
                # Serving mode guards fsync with the "wal.fsync"
                # breaker; the session attribute is created lazily so
                # read it here, at store-construction time.
                serving = getattr(self.session, "serving", None)
                breaker = None if serving is None else serving.breaker("wal.fsync")
                found = DurableStore(
                    self.root / name,
                    injector=self._injector,
                    fsync=config.wal_fsync,
                    checkpoint_bytes=config.wal_checkpoint_bytes,
                    checkpoint_age_s=config.wal_checkpoint_age_s,
                    poll_s=config.checkpoint_poll_s,
                    breaker=breaker,
                )
                self._stores[name] = found
            return found

    def exists(self, name: str) -> bool:
        return self.store(name).exists()

    def make_durable(
        self,
        indexed: "IndexedDataFrame",
        name: str,
        checkpointer: bool = True,
    ) -> DurableStore:
        """Bind a live Indexed DataFrame to the named store.

        Every append from this moment on is WAL-logged before it is
        applied; rows appended *before* this call are not durable until
        the first checkpoint covers them — which is why
        ``create_index`` binds the store before loading any row.
        """
        store = self.store(name)
        if store.exists():
            raise DurabilityError(
                f"durable store {name!r} already exists at {store.directory} "
                "— recover it (or delete the directory) instead of rebinding"
            )
        store.initialize(
            {
                "schema": schema_to_meta(indexed.schema),
                "key_ordinal": indexed.key_ordinal,
                "num_partitions": indexed.num_partitions,
                "batch_size_bytes": self.session.config.batch_size_bytes,
                "max_row_bytes": self.session.config.max_row_bytes,
            }
        )
        store.attach(indexed.store.partitions, epoch=0)
        indexed.store.durable_store = store
        if checkpointer:
            store.start_checkpointer()
        return store

    def recover(
        self,
        name: str,
        broker: "Broker | None" = None,
        checkpointer: bool = True,
    ) -> "IndexedDataFrame | None":
        """Restore the named table, or ``None`` if it was never created."""
        store = self.store(name)
        if not store.exists():
            return None
        indexed = RecoveryManager(self.session, self._injector).recover(
            store, broker
        )
        if checkpointer:
            store.start_checkpointer()
        return indexed

    def close(self) -> None:
        """Stop checkpointers and close every WAL writer (session stop)."""
        with self._lock:
            stores = list(self._stores.values())
            self._stores = {}
        for store in stores:
            store.close()

    def __repr__(self) -> str:
        with self._lock:
            names = sorted(self._stores)
        return f"DurabilityCoordinator(root={self.root}, stores={names})"
