"""Fault-injectable file primitives shared by the WAL and checkpoints.

Every byte the durability layer persists goes through this module, so
the disk fault points (``disk.write.torn``, ``disk.read.short``,
``disk.fsync``) are injected in exactly one place and behave the same
for WAL segments and checkpoint blobs.

The *seal* format is the PR 4 batch seal applied to files: a payload is
framed as ``[length: u32][crc32: u32][payload]`` (little-endian,
CRC32 over the payload). A frame whose CRC or length does not match is
either a torn tail (expected after a crash mid-write — truncated) or
corruption (a :class:`~repro.errors.RecoveryError` when it sits where
an atomically-committed artifact must be intact).
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import BinaryIO

from repro.errors import DurabilityError, RecoveryError
from repro.faults import NULL_INJECTOR, FaultInjector

_FRAME = struct.Struct("<II")  # (payload_length, crc32)
FRAME_SIZE = _FRAME.size


def seal(payload: bytes) -> bytes:
    """Frame ``payload`` with its length and CRC32 seal."""
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def unseal(raw: bytes, *, what: str) -> bytes:
    """Unframe one sealed blob; raises :class:`RecoveryError` if the
    frame is short or the CRC drifted (``what`` names the artifact)."""
    if len(raw) < FRAME_SIZE:
        raise RecoveryError(f"{what}: sealed blob shorter than its frame")
    length, crc = _FRAME.unpack_from(raw, 0)
    payload = raw[FRAME_SIZE : FRAME_SIZE + length]
    if len(payload) != length:
        raise RecoveryError(f"{what}: sealed blob truncated mid-payload")
    if zlib.crc32(payload) != crc:
        raise RecoveryError(f"{what}: CRC seal mismatch")
    return payload


def write_all(
    fh: BinaryIO, data: bytes, injector: FaultInjector = NULL_INJECTOR
) -> None:
    """Write ``data`` through the torn-write fault point.

    When ``disk.write.torn`` fires, a strict prefix of the bytes is
    flushed to disk and :class:`~repro.errors.SimulatedCrash` is raised
    — modelling the process dying mid-``write(2)``. The torn bytes stay
    on disk, exactly as after a real crash.
    """
    if injector.should_fire("disk.write.torn"):
        # Cut inside the data so replay sees a genuinely torn record;
        # the cut point is drawn from the same seeded stream so a
        # failing run replays exactly.
        cut = injector.choose("disk.write.torn", range(1, max(2, len(data))))
        fh.write(data[:cut])
        fh.flush()
        from repro.errors import SimulatedCrash

        raise SimulatedCrash("disk.write.torn")
    fh.write(data)
    fh.flush()


def maybe_fsync(
    fh: BinaryIO, injector: FaultInjector = NULL_INJECTOR, enabled: bool = True
) -> None:
    """``fsync`` the handle through the fsync fault point."""
    if injector.should_fire("disk.fsync"):
        raise DurabilityError("injected fsync failure")
    if enabled:
        os.fsync(fh.fileno())


def read_bytes(path: Path, injector: FaultInjector = NULL_INJECTOR) -> bytes:
    """Read a whole file through the short-read fault point.

    A short read is *transient* (the syscall returned fewer bytes than
    requested): it raises :class:`DurabilityError` so the caller
    retries, rather than returning truncated data that replay would
    mistake for a torn tail and destroy committed records over.
    """
    if injector.should_fire("disk.read.short"):
        raise DurabilityError(f"injected short read on {path.name}")
    return path.read_bytes()


def read_bytes_retry(
    path: Path, injector: FaultInjector = NULL_INJECTOR, attempts: int = 5
) -> bytes:
    """Read with bounded retries over transient short reads."""
    last: DurabilityError | None = None
    for _ in range(max(1, attempts)):
        try:
            return read_bytes(path, injector)
        except DurabilityError as exc:
            last = exc
    assert last is not None
    raise last


def fsync_dir(path: Path) -> None:
    """Flush directory metadata (entry renames) to disk; best-effort on
    platforms that refuse to open directories."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write(path: Path, data: bytes) -> None:
    """Write a small file atomically: temp sibling, fsync, rename."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)
