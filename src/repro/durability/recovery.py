"""RecoveryManager: rebuild an Indexed DataFrame from durable state.

Recovery is checkpoint-then-replay:

1. read the sealed table metadata (``meta.bin``) and the ``CURRENT``
   checkpoint pointer;
2. rebuild every partition from the committed checkpoint's sealed
   state blobs (or from empty partitions when no checkpoint exists
   yet) — backward-pointer chains come back verbatim inside the
   exported batch bytes, the cTrie is re-inserted from its manifest;
3. replay every WAL epoch at or after the checkpoint epoch, appending
   each intact row record through the normal partition append path
   (rebuilding chains, counters, and zone maps for post-checkpoint
   rows) and folding applied-offset markers advance-only;
4. restore broker consumer-group offsets from the recovered
   watermarks, so the ingestion loop's existing dedup absorbs any
   batch that was applied-and-marked but re-polled after restart;
5. re-attach live WAL writers (appends continue into the replayed
   segments), invalidate the block-manager cache (cached query results
   may reference pre-crash object identities), and mint a fresh MVCC
   version.

Invariants (asserted by the chaos suite in ``tests/durability``):

* every row whose append was acknowledged before the crash is present
  after recovery — acknowledged means the WAL record was written, so
  replay finds it in the intact prefix;
* no row from a torn (unacknowledged) record is resurrected — torn
  tails fail the CRC seal and are truncated;
* recovery is idempotent — crashing during recovery and recovering
  again yields the same state, because replay only truncates bytes
  that were never part of an intact record.

Failures split by blame: a torn WAL tail is a normal crash artifact
(silently truncated); damage inside a *committed* checkpoint or the
sealed metadata is corruption and raises
:class:`~repro.errors.RecoveryError`, which no retry or fallback layer
absorbs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.indexed_df import IndexedDataFrame
from repro.core.mvcc import VersionedStore
from repro.core.partition import IndexedPartition
from repro.core.pointers import PointerLayout
from repro.errors import RecoveryError
from repro.faults import NULL_INJECTOR, FaultInjector
from repro.sql.types import StructField, StructType, type_for_name

from repro.durability.checkpoint import DurableStore
from repro.durability.wal import latest_offsets, replay_rows, replay_wal

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.session import Session
    from repro.streaming.broker import Broker


def schema_to_meta(schema: StructType) -> list[tuple[str, str, bool]]:
    """Portable ``(name, type_name, nullable)`` triples for ``meta.bin``
    (independent of pickle details of the type classes)."""
    return [(f.name, f.dtype.name, f.nullable) for f in schema.fields]


def schema_from_meta(triples: list[tuple[str, str, bool]]) -> StructType:
    return StructType(
        [
            StructField(name, type_for_name(type_name), nullable)
            for name, type_name, nullable in triples
        ]
    )


class RecoveryManager:
    """Restores one durable store into a live :class:`IndexedDataFrame`."""

    def __init__(self, session: "Session", injector: FaultInjector = NULL_INJECTOR):
        self.session = session
        self._injector = injector

    def recover(
        self, store: DurableStore, broker: "Broker | None" = None
    ) -> IndexedDataFrame:
        """Rebuild the store's table; see the module docstring.

        The returned handle is bound to a fresh MVCC version with live
        WAL writers already attached — appends made through it (or any
        later version handle) are durable again immediately.
        """
        config = self.session.config
        meta = store.read_meta()
        schema = schema_from_meta(meta["schema"])
        key_ordinal = meta["key_ordinal"]
        num_partitions = meta["num_partitions"]
        batch_size = meta["batch_size_bytes"]
        max_row = meta["max_row_bytes"]
        layout = PointerLayout.for_geometry(batch_size, max_row)

        ckpt_epoch = store.current_checkpoint_epoch()
        offsets: dict[tuple[str, str], dict[int, int]] = {}
        if ckpt_epoch is None:
            partitions = [
                IndexedPartition(
                    schema,
                    key_ordinal,
                    layout,
                    batch_size,
                    max_row,
                    zone_maps=config.zone_maps_enabled,
                    sanitizers=config.sanitizers_enabled,
                )
                for _ in range(num_partitions)
            ]
            replay_from = 0
        else:
            states, ckpt_offsets = store.load_checkpoint(ckpt_epoch)
            if len(states) != num_partitions:
                raise RecoveryError(
                    f"checkpoint {ckpt_epoch} holds {len(states)} partitions, "
                    f"table metadata says {num_partitions}"
                )
            partitions = [
                IndexedPartition.from_state(
                    schema,
                    key_ordinal,
                    layout,
                    batch_size,
                    max_row,
                    state,
                    zone_maps=config.zone_maps_enabled,
                    sanitizers=config.sanitizers_enabled,
                )
                for state in states
            ]
            offsets = {key: dict(value) for key, value in ckpt_offsets.items()}
            replay_from = ckpt_epoch

        self._replay(store, partitions, offsets, replay_from)

        # Drop stale artifacts a post-commit crash left behind, then go
        # live: recovered watermarks, WAL writers on the latest epoch.
        store.garbage_collect(replay_from)
        store.seed_offsets(offsets)
        store.attach(partitions)
        if broker is not None:
            for (group, topic), watermarks in offsets.items():
                broker.restore_committed_offsets(group, topic, watermarks)
        self.session.ctx.block_manager.invalidate_all()

        versioned = VersionedStore(partitions)
        versioned.durable_store = store
        return IndexedDataFrame(
            self.session,
            schema,
            key_ordinal,
            versioned,
            versioned.capture(),
        )

    def _replay(
        self,
        store: DurableStore,
        partitions: list[IndexedPartition],
        offsets: dict[tuple[str, str], dict[int, int]],
        replay_from: int,
    ) -> None:
        """Apply every intact WAL record from ``replay_from`` onward.

        Epochs ascend, and within an epoch each partition's log is
        self-contained, so rows replay in their original append order
        per partition — exactly what backward-pointer chains require.
        WAL writers are not attached yet: replayed appends must not be
        re-logged.
        """
        for epoch in store.wal_epochs():
            if epoch < replay_from:
                continue
            for index, partition in enumerate(partitions):
                path = store.wal_path(epoch, index)
                records = replay_wal(path, self._injector)
                payloads = replay_rows(records)
                if payloads:
                    codec = partition.codec
                    partition.append_many([codec.decode(p) for p in payloads])
            meta_records = replay_wal(store.meta_wal_path(epoch), self._injector)
            latest_offsets(meta_records, into=offsets)
