"""DurableStore: one indexed table's WAL segments and checkpoints.

On-disk layout (one directory per durable store)::

    <root>/<name>/
        meta.bin                    sealed table metadata (schema, geometry)
        CURRENT                     sealed pointer to the live checkpoint
        wal/
            e00000000/              one directory per WAL *epoch*
                p00000.wal          per-partition row log
                meta.wal            applied-offset markers (ingestion)
            e00000001/ ...
        checkpoints/
            ckpt-00000001/          committed checkpoint (epoch 1)
                p00000.bin          sealed pickled partition state
                offsets.bin         sealed broker-offset watermarks
                MANIFEST            sealed {epoch, num_partitions}

Checkpoint commit protocol (all-or-nothing by rename):

1. rotate every partition's WAL into a fresh epoch directory — under
   each partition's append lock, so the exported state holds exactly
   the rows logged to the older epochs;
2. stage ``ckpt-<epoch>.tmp/`` with the sealed partition blobs
   (``crash.mid_checkpoint`` fires between files), offsets, MANIFEST;
3. ``rename`` the staged directory to its final name and atomically
   rewrite ``CURRENT`` — the commit point;
4. (``crash.post_checkpoint`` fires here) delete WAL epochs and
   checkpoints older than the new one.

A crash anywhere before step 3 leaves ``CURRENT`` on the previous
checkpoint and every WAL epoch since it intact — recovery replays them
all. A crash after step 3 leaves stale epochs behind, which recovery
garbage-collects. Checkpoint *epochs* only grow: a failed attempt
burns its epoch number (the rotated WAL segments stay replayable) and
the next attempt uses a fresh one, so a retried checkpoint can never
double-count rows.
"""

from __future__ import annotations

import os
import pickle
import re
import shutil
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.serialize import PICKLE_PROTOCOL
from repro.durability.files import (
    atomic_write,
    fsync_dir,
    maybe_fsync,
    read_bytes_retry,
    seal,
    unseal,
    write_all,
)
from repro.durability.wal import WALWriter
from repro.errors import DurabilityError, RecoveryError
from repro.faults import NULL_INJECTOR, FaultInjector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.partition import IndexedPartition

CHECKPOINT_PREFIX = "ckpt-"
CURRENT_FILE = "CURRENT"
META_FILE = "meta.bin"

_EPOCH_DIR = re.compile(r"^e(\d{8})$")
_CKPT_DIR = re.compile(rf"^{CHECKPOINT_PREFIX}(\d{{8}})$")


class DurableStore:
    """WAL + checkpoint lifecycle for one indexed table.

    Constructed by the :class:`~repro.durability.coordinator.
    DurabilityCoordinator`; :meth:`attach` binds it to the live
    partitions (opening WAL writers), after which every append is
    logged before it is applied and the background checkpointer
    compacts the log into checkpoints.
    """

    def __init__(
        self,
        directory: Path | str,
        injector: FaultInjector = NULL_INJECTOR,
        fsync: bool = True,
        checkpoint_bytes: int = 4 * 1024 * 1024,
        checkpoint_age_s: float = 30.0,
        poll_s: float = 0.1,
        breaker=None,
    ):
        self.directory = Path(directory)
        self._injector = injector
        self._fsync = fsync
        # Optional "wal.fsync" CircuitBreaker (serving mode): handed to
        # every WAL writer this store opens.
        self._breaker = breaker
        self._checkpoint_bytes = checkpoint_bytes
        self._checkpoint_age_s = checkpoint_age_s
        self._poll_s = poll_s
        # Serializes checkpoints (manual vs background) and guards the
        # writer/epoch bookkeeping they mutate.
        self._ckpt_lock = threading.Lock()
        self._partitions: "list[IndexedPartition]" = []  # guarded-by: _ckpt_lock
        self._writers: list[WALWriter] = []  # guarded-by: _ckpt_lock
        self._next_epoch = 1  # guarded-by: _ckpt_lock
        self._last_checkpoint = time.monotonic()  # guarded-by: _ckpt_lock
        # The meta WAL (offset markers) rotates with checkpoints but is
        # appended to from the ingestion thread, so it gets its own lock.
        self._meta_lock = threading.Lock()
        self._meta_wal: WALWriter | None = None  # guarded-by: _meta_lock
        self._offsets_lock = threading.Lock()
        # (group, topic) → {partition: next_offset}, advance-only.
        self._offsets = {}  # guarded-by: _offsets_lock
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    @property
    def name(self) -> str:
        return self.directory.name

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------

    @property
    def wal_root(self) -> Path:
        return self.directory / "wal"

    @property
    def checkpoints_root(self) -> Path:
        return self.directory / "checkpoints"

    def epoch_dir(self, epoch: int) -> Path:
        return self.wal_root / f"e{epoch:08d}"

    def wal_path(self, epoch: int, partition: int) -> Path:
        return self.epoch_dir(epoch) / f"p{partition:05d}.wal"

    def meta_wal_path(self, epoch: int) -> Path:
        return self.epoch_dir(epoch) / "meta.wal"

    def checkpoint_dir(self, epoch: int) -> Path:
        return self.checkpoints_root / f"{CHECKPOINT_PREFIX}{epoch:08d}"

    def wal_epochs(self) -> list[int]:
        """Existing WAL epoch numbers, ascending."""
        if not self.wal_root.is_dir():
            return []
        epochs = []
        for entry in self.wal_root.iterdir():
            match = _EPOCH_DIR.match(entry.name)
            if match and entry.is_dir():
                epochs.append(int(match.group(1)))
        return sorted(epochs)

    def checkpoint_epochs(self) -> list[int]:
        """Committed checkpoint epoch numbers, ascending (no ``.tmp``)."""
        if not self.checkpoints_root.is_dir():
            return []
        epochs = []
        for entry in self.checkpoints_root.iterdir():
            match = _CKPT_DIR.match(entry.name)
            if match and entry.is_dir():
                epochs.append(int(match.group(1)))
        return sorted(epochs)

    def current_checkpoint_epoch(self) -> int | None:
        """The epoch ``CURRENT`` points at, or None before the first
        checkpoint. Raises :class:`RecoveryError` if the pointer is
        damaged or dangling — CURRENT is written atomically, so any
        mismatch is corruption, not a crash artifact."""
        path = self.directory / CURRENT_FILE
        if not path.exists():
            return None
        payload = unseal(read_bytes_retry(path, self._injector), what="CURRENT")
        try:
            epoch = int(payload.decode("ascii"))
        except ValueError as exc:
            raise RecoveryError(f"CURRENT holds a non-numeric epoch: {payload!r}") from exc
        if not self.checkpoint_dir(epoch).is_dir():
            raise RecoveryError(
                f"CURRENT points at missing checkpoint epoch {epoch}"
            )
        return epoch

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def initialize(self, meta: dict) -> None:
        """Create the store directory skeleton and write ``meta.bin``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_root.mkdir(exist_ok=True)
        self.checkpoints_root.mkdir(exist_ok=True)
        atomic_write(
            self.directory / META_FILE, seal(pickle.dumps(meta, protocol=PICKLE_PROTOCOL))
        )

    def exists(self) -> bool:
        return (self.directory / META_FILE).exists()

    def read_meta(self) -> dict:
        raw = read_bytes_retry(self.directory / META_FILE, self._injector)
        return pickle.loads(unseal(raw, what="meta.bin"))

    def attach(
        self, partitions: "Sequence[IndexedPartition]", epoch: int | None = None
    ) -> None:
        """Bind the live partitions: open WAL writers at ``epoch`` (the
        latest existing epoch by default; epoch 0 for a fresh store) in
        append mode and attach one to each partition."""
        with self._ckpt_lock:
            if epoch is None:
                existing = self.wal_epochs()
                epoch = existing[-1] if existing else 0
            self.epoch_dir(epoch).mkdir(parents=True, exist_ok=True)
            self._partitions = list(partitions)
            self._writers = []
            for i, partition in enumerate(self._partitions):
                writer = WALWriter(
                    self.wal_path(epoch, i),
                    self._injector,
                    self._fsync,
                    breaker=self._breaker,
                )
                self._writers.append(writer)
                partition.attach_wal(writer)
                # Durable identity for worker-local WAL replay: the
                # cluster codec ships ("wal", ref, ...) tokens instead
                # of shm snapshots for partitions that carry one.
                partition.durable_ref = (str(self.directory), i)
            with self._meta_lock:
                self._meta_wal = WALWriter(
                    self.meta_wal_path(epoch),
                    self._injector,
                    self._fsync,
                    breaker=self._breaker,
                )
            self._next_epoch = epoch + 1
            self._last_checkpoint = time.monotonic()

    def close(self) -> None:
        """Stop the checkpointer and detach/close every WAL writer."""
        self.stop_checkpointer()
        with self._ckpt_lock:
            for partition in self._partitions:
                partition.attach_wal(None)
            for writer in self._writers:
                writer.close()
            self._writers = []
            self._partitions = []
            with self._meta_lock:
                if self._meta_wal is not None:
                    self._meta_wal.close()
                    self._meta_wal = None

    # ------------------------------------------------------------------
    # Offsets (streaming ingestion watermarks)
    # ------------------------------------------------------------------

    def log_offsets(self, group: str, topic: str, offsets: dict[int, int]) -> None:
        """Persist an applied-offset watermark for a consumer group.

        The in-memory fold happens *before* the WAL append so a
        checkpoint racing with this call sees the watermark through its
        post-rotation snapshot even when the marker record itself lands
        in an epoch the checkpoint is about to retire.
        """
        with self._offsets_lock:
            current = self._offsets.setdefault((group, topic), {})
            for partition, offset in offsets.items():
                if offset > current.get(partition, 0):
                    current[partition] = offset
        with self._meta_lock:
            if self._meta_wal is not None:
                self._meta_wal.append_offsets(group, topic, offsets)

    def seed_offsets(
        self, offsets: dict[tuple[str, str], dict[int, int]]
    ) -> None:
        """Install recovered watermarks (recovery only)."""
        with self._offsets_lock:
            self._offsets = {k: dict(v) for k, v in offsets.items()}

    def offsets(self) -> dict[tuple[str, str], dict[int, int]]:
        with self._offsets_lock:
            return {k: dict(v) for k, v in self._offsets.items()}

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def wal_bytes(self) -> int:
        """Bytes in the live (uncheckpointed) WAL segments."""
        with self._ckpt_lock:
            writers = list(self._writers)
            with self._meta_lock:
                meta = self._meta_wal
        total = sum(w.size_bytes() for w in writers)
        if meta is not None:
            total += meta.size_bytes()
        return total

    def should_checkpoint(self) -> bool:
        """Size or age threshold exceeded on the live WAL?"""
        size = self.wal_bytes()
        if size == 0:
            return False
        if size >= self._checkpoint_bytes:
            return True
        with self._ckpt_lock:
            age = time.monotonic() - self._last_checkpoint
        return age >= self._checkpoint_age_s

    def checkpoint(self) -> int:
        """Cut a checkpoint; returns its epoch number.

        See the module docstring for the commit protocol. Safe to call
        concurrently with appends (rotation is per-partition under the
        append lock) but serialized against itself.
        """
        with self._ckpt_lock:
            epoch = self._next_epoch
            self._next_epoch += 1
            self.epoch_dir(epoch).mkdir(parents=True, exist_ok=True)
            # 1. Rotate: per partition, atomically export state and
            # redirect its WAL to the new epoch.
            states = []
            writers = []
            for i, partition in enumerate(self._partitions):
                writer = WALWriter(
                    self.wal_path(epoch, i),
                    self._injector,
                    self._fsync,
                    breaker=self._breaker,
                )
                writers.append(writer)
                states.append(partition.rotate_wal(writer))
            self._writers = writers
            with self._meta_lock:
                old_meta = self._meta_wal
                self._meta_wal = WALWriter(
                    self.meta_wal_path(epoch),
                    self._injector,
                    self._fsync,
                    breaker=self._breaker,
                )
            if old_meta is not None:
                old_meta.close()
            offsets = self.offsets()
            # 2. Stage the checkpoint under a .tmp name.
            tmp = self.checkpoints_root / f"{CHECKPOINT_PREFIX}{epoch:08d}.tmp"
            if tmp.exists():
                shutil.rmtree(tmp)
            tmp.mkdir(parents=True)
            for i, state in enumerate(states):
                self._write_blob(
                    tmp / f"p{i:05d}.bin", seal(pickle.dumps(state, protocol=PICKLE_PROTOCOL))
                )
                self._injector.maybe_crash("crash.mid_checkpoint")
            self._write_blob(
                tmp / "offsets.bin", seal(pickle.dumps(offsets, protocol=PICKLE_PROTOCOL))
            )
            manifest = {"epoch": epoch, "num_partitions": len(states)}
            self._write_blob(
                tmp / "MANIFEST", seal(pickle.dumps(manifest, protocol=PICKLE_PROTOCOL))
            )
            fsync_dir(tmp)
            # 3. Commit: rename + CURRENT swing.
            os.replace(tmp, self.checkpoint_dir(epoch))
            fsync_dir(self.checkpoints_root)
            atomic_write(
                self.directory / CURRENT_FILE,
                seal(str(epoch).encode("ascii")),
            )
            self._last_checkpoint = time.monotonic()
            self._injector.maybe_crash("crash.post_checkpoint")
            # 4. Retire everything the new checkpoint covers.
            self.garbage_collect(epoch)
            return epoch

    def _write_blob(self, path: Path, data: bytes) -> None:
        with open(path, "wb") as fh:
            write_all(fh, data, self._injector)
            maybe_fsync(fh, self._injector, self._fsync)

    def garbage_collect(self, keep_epoch: int) -> None:
        """Delete WAL epochs, checkpoints, and staging leftovers older
        than ``keep_epoch`` (idempotent; recovery reuses it)."""
        for epoch in self.wal_epochs():
            if epoch < keep_epoch:
                shutil.rmtree(self.epoch_dir(epoch), ignore_errors=True)
        for epoch in self.checkpoint_epochs():
            if epoch < keep_epoch:
                shutil.rmtree(self.checkpoint_dir(epoch), ignore_errors=True)
        if self.checkpoints_root.is_dir():
            for entry in self.checkpoints_root.iterdir():
                if entry.name.endswith(".tmp"):
                    shutil.rmtree(entry, ignore_errors=True)

    def load_checkpoint(self, epoch: int) -> tuple[list[dict], dict]:
        """Read a committed checkpoint's partition states and offsets.

        Any damage inside a *committed* checkpoint is corruption (the
        rename happened after every blob was written and fsynced), so
        failures surface as :class:`RecoveryError`.
        """
        directory = self.checkpoint_dir(epoch)
        manifest = pickle.loads(
            unseal(
                read_bytes_retry(directory / "MANIFEST", self._injector),
                what=f"{directory.name}/MANIFEST",
            )
        )
        if manifest.get("epoch") != epoch:
            raise RecoveryError(
                f"{directory.name}: manifest epoch {manifest.get('epoch')} "
                f"does not match directory epoch {epoch}"
            )
        states = []
        for i in range(manifest["num_partitions"]):
            name = f"p{i:05d}.bin"
            path = directory / name
            if not path.exists():
                raise RecoveryError(f"{directory.name}: missing partition blob {name}")
            states.append(
                pickle.loads(
                    unseal(
                        read_bytes_retry(path, self._injector),
                        what=f"{directory.name}/{name}",
                    )
                )
            )
        offsets = pickle.loads(
            unseal(
                read_bytes_retry(directory / "offsets.bin", self._injector),
                what=f"{directory.name}/offsets.bin",
            )
        )
        return states, offsets

    # ------------------------------------------------------------------
    # Background checkpointer
    # ------------------------------------------------------------------

    def start_checkpointer(self) -> None:
        """Start the background thread that cuts threshold-triggered
        checkpoints. Transient :class:`DurabilityError` failures are
        swallowed and retried on a later tick."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self._poll_s):
                try:
                    if self.should_checkpoint():
                        self.checkpoint()
                except DurabilityError:
                    continue

        self._thread = threading.Thread(
            target=loop, name=f"checkpointer-{self.name}", daemon=True
        )
        self._thread.start()

    def stop_checkpointer(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __repr__(self) -> str:
        return f"DurableStore({self.name!r}, epochs={self.wal_epochs()})"
