"""Per-partition write-ahead log.

One WAL segment file per (epoch, partition). Records are length-
prefixed and CRC32-sealed — the frame of :mod:`repro.durability.files`
with a one-byte record type prepended to the payload::

    [ length : u32 ][ crc32 : u32 ][ type : u8 ][ body : length-1 bytes ]

Two record types exist:

* ``RT_ROW`` — one RowCodec-encoded row, written *before* the
  in-memory apply (the commit point of an append);
* ``RT_OFFSETS`` — an applied-watermark marker from the streaming
  ingestion loop (``(group, topic) → {partition: next_offset}``),
  written after the rows of a micro-batch so recovery can restore
  broker consumer offsets and the existing watermark dedup absorbs
  replayed-but-committed batches.

Replay walks the frames in order and stops at the first record whose
length or CRC does not hold — the *torn tail* a crash mid-write leaves
behind — truncating the file back to the last intact record. Committed
records are exactly the intact prefix; a record that never finished
writing was never acknowledged, so truncating it cannot lose committed
data.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from pathlib import Path

from repro.durability.files import FRAME_SIZE, maybe_fsync, read_bytes_retry, write_all
from repro.faults import NULL_INJECTOR, FaultInjector
from repro.serialize import PICKLE_PROTOCOL

_FRAME = struct.Struct("<II")  # (payload_length, crc32)

#: Record types (first payload byte).
RT_ROW = 0
RT_OFFSETS = 1


def encode_record(rtype: int, body: bytes) -> bytes:
    """Frame one record: sealed ``type byte + body``."""
    payload = bytes((rtype,)) + body
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def encode_offsets(group: str, topic: str, offsets: dict[int, int]) -> bytes:
    """Body of an ``RT_OFFSETS`` marker."""
    return pickle.dumps((group, topic, dict(offsets)), protocol=PICKLE_PROTOCOL)


def decode_offsets(body: bytes) -> tuple[str, str, dict[int, int]]:
    group, topic, offsets = pickle.loads(body)
    return group, topic, offsets


class WALWriter:
    """Append-only writer for one WAL segment file.

    Thread-safe; the owning partition additionally serializes appends
    under its own append lock, so the internal lock only matters for
    the checkpointer reading :meth:`size_bytes` concurrently.
    """

    def __init__(
        self,
        path: Path | str,
        injector: FaultInjector = NULL_INJECTOR,
        fsync: bool = True,
        breaker=None,
    ):
        self.path = Path(path)
        self._injector = injector
        self._fsync = fsync
        # Optional serving-layer CircuitBreaker for the "wal.fsync"
        # site: persistent write/fsync failures trip it so callers
        # fast-fail instead of hammering a dead disk on every append.
        self._breaker = breaker
        self._lock = threading.Lock()
        self._fh = open(self.path, "ab")  # guarded-by: _lock
        self._size = self.path.stat().st_size  # guarded-by: _lock

    def append_rows(self, payloads: list[bytes]) -> None:
        """Log one batch of encoded rows (single write, single fsync).

        Raises :class:`~repro.errors.SimulatedCrash` at the seeded
        crash points: ``crash.pre_wal`` before anything is written
        (the batch is lost — it was never acknowledged) and
        ``crash.post_wal`` after the records are durable but before
        the caller applies them in memory (the batch is recovered by
        replay). A clean failure (injected fsync error) rolls the file
        back to its pre-batch length so a caller-level retry cannot
        double-log the rows.
        """
        self._injector.maybe_crash("crash.pre_wal")
        data = b"".join(encode_record(RT_ROW, p) for p in payloads)
        self._append(data)
        self._injector.maybe_crash("crash.post_wal")

    def append_offsets(self, group: str, topic: str, offsets: dict[int, int]) -> None:
        """Log an applied-watermark marker for the ingestion loop."""
        self._append(encode_record(RT_OFFSETS, encode_offsets(group, topic, offsets)))

    def _append(self, data: bytes) -> None:
        if self._breaker is not None:
            self._breaker.guard()
        with self._lock:
            start = self._size
            try:
                write_all(self._fh, data, self._injector)
                maybe_fsync(self._fh, self._injector, self._fsync)
            except Exception:
                # Clean failure (not a simulated crash): undo the
                # partial append so the record cannot be half-committed
                # and a retry cannot duplicate it.
                try:
                    self._fh.truncate(start)
                    self._fh.seek(0, os.SEEK_END)
                except OSError:  # pragma: no cover - undo is best-effort
                    pass
                if self._breaker is not None:
                    self._breaker.record_failure()
                raise
            self._size = start + len(data)
        if self._breaker is not None:
            self._breaker.record_success()

    def size_bytes(self) -> int:
        with self._lock:
            return self._size

    def close(self) -> None:
        with self._lock:
            self._fh.close()

    def __repr__(self) -> str:
        return f"WALWriter({self.path.name}, {self.size_bytes()} bytes)"


def replay_wal(
    path: Path | str,
    injector: FaultInjector = NULL_INJECTOR,
    truncate: bool = True,
) -> list[tuple[int, bytes]]:
    """Read every intact record of a WAL segment, in append order.

    Returns ``[(record_type, body), ...]``. The first frame whose
    length overruns the file or whose CRC32 seal fails marks the torn
    tail: everything from there on is discarded and (with ``truncate``)
    physically removed, so a later append cannot interleave new records
    with torn garbage.
    """
    path = Path(path)
    if not path.exists():
        return []
    data = read_bytes_retry(path, injector)
    records: list[tuple[int, bytes]] = []
    offset = 0
    n = len(data)
    while offset + FRAME_SIZE <= n:
        length, crc = _FRAME.unpack_from(data, offset)
        end = offset + FRAME_SIZE + length
        if length < 1 or end > n:
            break  # torn tail: header or payload never finished
        payload = data[offset + FRAME_SIZE : end]
        if zlib.crc32(payload) != crc:
            break  # torn tail: payload bytes incomplete or damaged
        records.append((payload[0], bytes(payload[1:])))
        offset = end
    if truncate and offset < n:
        with open(path, "r+b") as fh:
            fh.truncate(offset)
            fh.flush()
            os.fsync(fh.fileno())
    return records


def replay_rows(records: list[tuple[int, bytes]]) -> list[bytes]:
    """The encoded row payloads of a replayed record list."""
    return [body for rtype, body in records if rtype == RT_ROW]


def latest_offsets(
    records: list[tuple[int, bytes]],
    into: dict[tuple[str, str], dict[int, int]] | None = None,
) -> dict[tuple[str, str], dict[int, int]]:
    """Fold ``RT_OFFSETS`` markers into an advance-only watermark map.

    Markers are cumulative, so later markers supersede earlier ones —
    but per-partition offsets only ever move forward, guarding against
    a marker logged by a laggy consumer regressing the watermark.
    """
    out: dict[tuple[str, str], dict[int, int]] = into if into is not None else {}
    for rtype, body in records:
        if rtype != RT_OFFSETS:
            continue
        group, topic, offsets = decode_offsets(body)
        current = out.setdefault((group, topic), {})
        for partition, offset in offsets.items():
            if offset > current.get(partition, 0):
                current[partition] = offset
    return out
