"""Inter-query bitmap-arrangement sharing (Shared Arrangements style).

Building a bitmap index is a full scan of the relation; a serving
deployment where every session (or every query) rebuilds its own copy
pays that scan once per consumer. Following Shared Arrangements
(arxiv 1812.02639), this registry keeps **one maintained arrangement
per (store, column)**: the first ``create_index(col, kind="bitmap")``
builds and attaches the per-partition indexes, every later request —
from any session sharing the process — gets the same arrangement by
reference and pays nothing. Across ``cluster`` workers the arrangement
ships inside :class:`~repro.core.partition.PartitionSnapshot` exactly
like the cTrie snapshot does, over the PR 7 shared-memory row batches.

Counters (``builds`` / ``shares`` / ``hits``) surface in
:meth:`snapshot` so benchmarks and the metrics endpoint can prove the
amortization: in the concurrent-sessions run, ``builds`` stays 1 while
``shares`` counts every additional consumer.
"""

from __future__ import annotations

import threading
from typing import Any, Callable


class _Arrangement:
    """One shared (store, column) bitmap arrangement."""

    __slots__ = ("store", "ordinal", "indexes")

    def __init__(self, store: Any, ordinal: int, indexes: list):
        # Strong reference on purpose: it keeps ``id(store)`` unambiguous
        # for the arrangement's lifetime and keeps the arrangement's
        # partitions alive for late-joining sessions.
        self.store = store
        self.ordinal = ordinal
        self.indexes = indexes


class BitmapIndexRegistry:
    """Process-wide registry of shared bitmap arrangements.

    Thread-safe; one instance per process (see :func:`bitmap_registry`)
    so concurrent serving sessions share arrangements by construction.
    A build runs under the registry lock — two sessions racing to index
    the same column serialize, and the loser gets the winner's
    arrangement instead of building a duplicate.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (id(store), ordinal) → arrangement.
        self._arrangements: dict[tuple[int, int], _Arrangement] = {}  # guarded-by: _lock
        self.builds = 0  # guarded-by: _lock
        self.shares = 0  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock

    def acquire(
        self, store: Any, ordinal: int, builder: Callable[[], list]
    ) -> _Arrangement:
        """The shared arrangement for ``(store, ordinal)``, building it
        via ``builder`` (which attaches per-partition indexes and
        returns them) only if no session has yet."""
        key = (id(store), ordinal)
        with self._lock:
            arrangement = self._arrangements.get(key)
            if arrangement is not None and arrangement.store is store:
                self.shares += 1
                return arrangement
            arrangement = _Arrangement(store, ordinal, builder())
            self._arrangements[key] = arrangement
            self.builds += 1
            return arrangement

    def record_hit(self) -> None:
        """A planner decision used a shared arrangement."""
        with self._lock:
            self.hits += 1

    def release(self, store: Any) -> None:
        """Drop every arrangement for ``store`` (table dropped or test
        teardown); the per-partition indexes stay attached to their
        partitions and die with them."""
        with self._lock:
            for key in [
                key
                for key, arrangement in self._arrangements.items()
                if arrangement.store is store
            ]:
                del self._arrangements[key]

    def clear(self) -> None:
        with self._lock:
            self._arrangements.clear()
            self.builds = 0
            self.shares = 0
            self.hits = 0

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "arrangements": len(self._arrangements),
                "builds": self.builds,
                "shares": self.shares,
                "hits": self.hits,
            }

    def __repr__(self) -> str:
        return f"BitmapIndexRegistry({self.snapshot()})"


_REGISTRY = BitmapIndexRegistry()


def bitmap_registry() -> BitmapIndexRegistry:
    """The process-wide shared-arrangement registry."""
    return _REGISTRY


__all__ = ["BitmapIndexRegistry", "bitmap_registry"]
