"""CUBIT-style updatable bitmap indexes over indexed partitions.

One :class:`PartitionBitmapIndex` maintains, for a single column of a
single :class:`~repro.core.partition.IndexedPartition`, a bitmap per
distinct value: bit *i* is set iff the partition's *i*-th appended row
holds that value. Bitmaps are arbitrary-precision Python integers —
the word-aligned compressed representation this runtime offers: dense
runs cost one machine word per 30 bits and AND/OR/NOT run at C speed
over whole words, which is exactly the access pattern WAH/roaring
compression optimizes for in CUBIT (arxiv 2410.16929).

**Updatability** follows CUBIT's merge-on-demand design: appends land
in per-value *delta* position lists (O(1) per row, no big-int rebuild
per append) and are folded into the merged bitmaps when a delta grows
past ``merge_threshold`` — or, at the latest, when a snapshot view is
captured.

**Snapshot visibility** rides the storage layer's append-only
invariant: a row's bit position is its append ordinal, so a reader at
MVCC version *v* sees exactly the first ``row_count(v)`` bits. A
:class:`BitmapColumnView` therefore masks every bitmap to
``(1 << row_count) - 1`` — writers keep setting bits at higher
positions while readers evaluate, and neither ever waits for the
other. The per-ordinal packed-pointer array (append ordinal → row
pointer) is append-only too and shared by reference across views.

The module also hosts the predicate compiler: a filter condition tree
compiles to a *bitmap program* (nested AND/OR over per-column atoms)
evaluated per partition at plan time, which is what gives the planner
an exact selected-row count to cost against the zone-map-pruned scan.
"""

from __future__ import annotations

import threading
from array import array
from typing import Any, Iterator, Sequence

from repro.stats import PruningPredicate

#: Delta positions buffered per partition before folding into the
#: merged bitmaps. Small enough that a snapshot-forced merge is cheap,
#: large enough that appends amortize the big-int rebuild.
DEFAULT_MERGE_THRESHOLD = 512


def iter_bits(bits: int) -> Iterator[int]:
    """Positions of the set bits of ``bits``, ascending (append order)."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


class BitmapColumnView:  # analysis: shipped
    """An immutable snapshot of one partition's bitmaps for one column.

    Captured under the partition append lock, so ``row_count`` equals
    the owning :class:`~repro.core.partition.PartitionSnapshot`'s row
    count exactly. ``values`` maps each distinct column value (``None``
    included) to its merged bitmap; all evaluation masks to the first
    ``row_count`` bits, making bits set by later appends invisible.
    ``pointers`` is the live append-only ordinal→packed-pointer array,
    shared by reference — only positions below ``row_count`` are read.
    """

    __slots__ = ("ordinal", "values", "row_count", "pointers")

    def __init__(
        self,
        ordinal: int,
        values: dict[Any, int],
        row_count: int,
        pointers: "array[int]",
    ):
        self.ordinal = ordinal
        self.values = values
        self.row_count = row_count
        self.pointers = pointers

    @property
    def mask(self) -> int:
        return (1 << self.row_count) - 1

    def pointer_at(self, position: int) -> int:
        return self.pointers[position]

    def eval_atom(self, pred: PruningPredicate) -> int | None:
        """The bitmap of rows satisfying ``pred`` at this version, or
        ``None`` when the atom cannot be evaluated soundly here (a
        stored value does not compare with the literal — the planner
        then rejects the bitmap plan rather than guess)."""
        mask = self.mask
        op = pred.op
        values = self.values
        if op == "eq":
            return values.get(pred.values[0], 0) & mask
        if op == "in":
            bits = 0
            for value in pred.values:
                bits |= values.get(value, 0)
            return bits & mask
        if op == "isnull":
            return values.get(None, 0) & mask
        if op == "notnull":
            return mask & ~values.get(None, 0)
        # Range operator: OR together every distinct value that
        # satisfies it. NULLs never match a comparison.
        bits = 0
        try:
            if op == "lt":
                for value, bitmap in values.items():
                    if value is not None and value < pred.values[0]:
                        bits |= bitmap
            elif op == "le":
                for value, bitmap in values.items():
                    if value is not None and value <= pred.values[0]:
                        bits |= bitmap
            elif op == "gt":
                for value, bitmap in values.items():
                    if value is not None and value > pred.values[0]:
                        bits |= bitmap
            elif op == "ge":
                for value, bitmap in values.items():
                    if value is not None and value >= pred.values[0]:
                        bits |= bitmap
            else:
                return None
        except TypeError:
            return None
        return bits & mask

    def __repr__(self) -> str:
        return (
            f"BitmapColumnView(ordinal={self.ordinal}, "
            f"values={len(self.values)}, rows={self.row_count})"
        )


class PartitionBitmapIndex:
    """Updatable per-value bitmaps for one column of one partition.

    Writers call :meth:`record` once per appended row *under the
    partition's append lock* (the index's own lock nests inside it and
    is never taken the other way around); readers only ever touch the
    immutable :class:`BitmapColumnView` handed out by
    :meth:`snapshot_view`.
    """

    def __init__(
        self, ordinal: int, merge_threshold: int = DEFAULT_MERGE_THRESHOLD
    ):
        self.ordinal = ordinal
        self.merge_threshold = max(1, merge_threshold)
        self._lock = threading.Lock()
        #: value → merged bitmap (positions folded out of the delta).
        self._values: dict[Any, int] = {}  # guarded-by: _lock
        #: value → pending append positions, CUBIT's update delta.
        self._delta: dict[Any, list[int]] = {}  # guarded-by: _lock
        self._delta_rows = 0  # guarded-by: _lock
        #: append ordinal → packed row pointer, append-only.
        self._pointers: "array[int]" = array("Q")  # guarded-by: _lock
        self._rows = 0  # guarded-by: _lock

    # -- writes (under the owning partition's append lock) ---------------

    def record(self, row: Sequence[Any], pointer: int) -> None:
        """Index one appended row at the next append ordinal."""
        value = row[self.ordinal]
        with self._lock:
            self._delta.setdefault(value, []).append(self._rows)
            self._pointers.append(pointer)
            self._rows += 1
            self._delta_rows += 1
            if self._delta_rows >= self.merge_threshold:
                self._merge_locked()

    def _merge_locked(self) -> None:  # requires-lock: _lock
        """Fold the delta position lists into the merged bitmaps."""
        if not self._delta_rows:
            return
        for value, positions in self._delta.items():
            bits = self._values.get(value, 0)
            for position in positions:
                bits |= 1 << position
            self._values[value] = bits
        self._delta.clear()
        self._delta_rows = 0

    # -- reads -----------------------------------------------------------

    def snapshot_view(self) -> BitmapColumnView:
        """An immutable view of the index at the current row count.

        Forces a delta merge so the view's ``values`` dict (a shallow
        copy — the int bitmaps themselves are immutable) covers every
        indexed row; later merges mutate only the live dict.
        """
        with self._lock:
            self._merge_locked()
            return BitmapColumnView(
                self.ordinal, dict(self._values), self._rows, self._pointers
            )

    @property
    def rows(self) -> int:
        with self._lock:
            return self._rows

    def memory_stats(self) -> dict[str, int]:
        with self._lock:
            bitmap_bytes = sum(
                (bits.bit_length() + 7) // 8 for bits in self._values.values()
            )
            return {
                "rows": self._rows,
                "distinct_values": len(self._values) + len(self._delta),
                "bitmap_bytes": bitmap_bytes,
                "pointer_bytes": len(self._pointers) * self._pointers.itemsize,
            }

    # -- durability ------------------------------------------------------

    def export_state(self) -> dict:
        """A checkpointable image (merged; pickled by the PR 5
        checkpoint machinery alongside the partition state)."""
        with self._lock:
            self._merge_locked()
            return {
                "ordinal": self.ordinal,
                "merge_threshold": self.merge_threshold,
                "rows": self._rows,
                "values": dict(self._values),
                "pointers": self._pointers.tobytes(),
            }

    @classmethod
    def from_state(cls, state: dict) -> "PartitionBitmapIndex":
        index = cls(state["ordinal"], state["merge_threshold"])
        index._rows = state["rows"]
        index._values = dict(state["values"])
        pointers: "array[int]" = array("Q")
        pointers.frombytes(state["pointers"])
        index._pointers = pointers
        return index

    def __repr__(self) -> str:
        return (
            f"PartitionBitmapIndex(ordinal={self.ordinal}, rows={self.rows})"
        )


# ----------------------------------------------------------------------
# Predicate compilation: filter condition -> bitmap program
# ----------------------------------------------------------------------
#
# A program is a nested tuple tree:
#   ("pred", PruningPredicate)   one column atom
#   ("and", [programs...])       bitmap intersection
#   ("or", [programs...])        bitmap union
# evaluated per partition against that partition's {ordinal: view} map.


def _compile_atom(expr, ordinals: dict[int, int], indexed: frozenset[int]):
    """One comparison/null-test/IN over an indexed column, or None."""
    from repro.sql.expressions import (
        Attribute,
        EqualTo,
        GreaterThan,
        GreaterThanOrEqual,
        In,
        IsNotNull,
        IsNull,
        LessThan,
        LessThanOrEqual,
        Literal,
    )

    if isinstance(expr, IsNull) and isinstance(expr.child, Attribute):
        ordinal = ordinals.get(expr.child.expr_id)
        if ordinal in indexed:
            return ("pred", PruningPredicate(ordinal, "isnull"))
        return None
    if isinstance(expr, IsNotNull) and isinstance(expr.child, Attribute):
        ordinal = ordinals.get(expr.child.expr_id)
        if ordinal in indexed:
            return ("pred", PruningPredicate(ordinal, "notnull"))
        return None
    if isinstance(expr, In):
        if isinstance(expr.value, Attribute) and all(
            isinstance(option, Literal) for option in expr.options
        ):
            ordinal = ordinals.get(expr.value.expr_id)
            values = tuple(option.value for option in expr.options)
            if ordinal in indexed and values and None not in values:
                return ("pred", PruningPredicate(ordinal, "in", values))
        return None
    ops = {
        EqualTo: "eq",
        LessThan: "lt",
        LessThanOrEqual: "le",
        GreaterThan: "gt",
        GreaterThanOrEqual: "ge",
    }
    op = ops.get(type(expr))
    if op is None:
        return None
    flipped = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq"}
    left, right = expr.left, expr.right
    if isinstance(left, Attribute) and isinstance(right, Literal):
        attr, literal = left, right
    elif isinstance(right, Attribute) and isinstance(left, Literal):
        attr, literal, op = right, left, flipped[op]
    else:
        return None
    ordinal = ordinals.get(attr.expr_id)
    if ordinal not in indexed or literal.value is None:
        return None
    return ("pred", PruningPredicate(ordinal, op, (literal.value,)))


def _compile_node(expr, ordinals: dict[int, int], indexed: frozenset[int]):
    """Compile one boolean subtree; every leaf must be indexable."""
    from repro.sql.expressions import And, Or

    if isinstance(expr, And) or isinstance(expr, Or):
        left = _compile_node(expr.left, ordinals, indexed)
        right = _compile_node(expr.right, ordinals, indexed)
        if left is None or right is None:
            return None
        tag = "and" if isinstance(expr, And) else "or"
        return (tag, [left, right])
    return _compile_atom(expr, ordinals, indexed)


def compile_bitmap_program(condition, attrs, indexed: frozenset[int]):
    """Split ``condition`` into a bitmap program plus a residual.

    Returns ``(program, covered, residual)``: ``program`` is the
    AND of every conjunct that compiles fully against the ``indexed``
    storage ordinals (``None`` when no conjunct does), ``covered`` /
    ``residual`` are the corresponding conjunct expression lists. Rows
    selected by the program still need the residual re-checked above
    the fetch — exactly the zone-map soundness split.
    """
    from repro.sql.expressions import split_conjuncts

    ordinals = {a.expr_id: i for i, a in enumerate(attrs)}
    covered: list = []
    residual: list = []
    programs: list = []
    for conjunct in split_conjuncts(condition):
        node = _compile_node(conjunct, ordinals, indexed)
        if node is None:
            residual.append(conjunct)
        else:
            covered.append(conjunct)
            programs.append(node)
    if not programs:
        return None, covered, residual
    program = programs[0] if len(programs) == 1 else ("and", programs)
    return program, covered, residual


def evaluate_program(
    program, views: "dict[int, BitmapColumnView]"
) -> int | None:
    """Evaluate a bitmap program against one partition's views.

    Returns the selected-row bitmap, or ``None`` when any atom is
    unsupported at this partition (missing view, value/literal type
    mismatch) — the caller must then reject the bitmap plan outright;
    a partial answer would be unsound.
    """
    tag = program[0]
    if tag == "pred":
        pred: PruningPredicate = program[1]
        view = views.get(pred.ordinal)
        if view is None:
            return None
        return view.eval_atom(pred)
    bits = None
    for child in program[1]:
        child_bits = evaluate_program(child, views)
        if child_bits is None:
            return None
        if bits is None:
            bits = child_bits
        elif tag == "and":
            bits &= child_bits
        else:
            bits |= child_bits
    return bits


def program_ordinals(program) -> frozenset[int]:
    """Every storage ordinal a program touches (for EXPLAIN output)."""
    if program[0] == "pred":
        return frozenset((program[1].ordinal,))
    out: frozenset[int] = frozenset()
    for child in program[1]:
        out |= program_ordinals(child)
    return out


__all__ = [
    "BitmapColumnView",
    "DEFAULT_MERGE_THRESHOLD",
    "PartitionBitmapIndex",
    "compile_bitmap_program",
    "evaluate_program",
    "iter_bits",
    "program_ordinals",
]
