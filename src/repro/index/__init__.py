"""Secondary index families beyond the cTrie point-lookup index.

The paper's Indexed DataFrame carries exactly one index — the cTrie
hash index keyed on the primary column — which makes point lookups
cheap but leaves analytical predicates (low-cardinality equality,
ranges, AND/OR combinations) to the scan path. This package adds the
second family: CUBIT-style updatable bitmap indexes whose snapshot
semantics mirror the cTrie's (readers never block writers), plus the
inter-query sharing registry that lets concurrent sessions reuse one
maintained arrangement instead of each building its own.

* :mod:`repro.index.bitmap` — the per-partition updatable bitmap index
  and its immutable snapshot views, plus the predicate compiler that
  turns filter conditions into bitmap programs.
* :mod:`repro.index.registry` — the process-wide shared-arrangement
  registry with build/share/hit counters.
"""

from repro.index.bitmap import (
    BitmapColumnView,
    PartitionBitmapIndex,
    compile_bitmap_program,
    evaluate_program,
)
from repro.index.registry import BitmapIndexRegistry, bitmap_registry

__all__ = [
    "BitmapColumnView",
    "BitmapIndexRegistry",
    "PartitionBitmapIndex",
    "bitmap_registry",
    "compile_bitmap_program",
    "evaluate_program",
]
