"""Engine and Indexed-DataFrame configuration.

A single :class:`Config` object travels from the user through the
:class:`~repro.sql.session.Session` into the engine and the indexed
core. It mirrors the handful of Spark knobs the paper's evaluation
depends on:

* ``shuffle_partitions`` — number of reduce-side partitions created by
  an exchange (``spark.sql.shuffle.partitions``);
* ``broadcast_threshold`` — estimated probe-relation size (in rows)
  below which an indexed or vanilla join falls back to a broadcast join
  instead of a shuffle (``spark.sql.autoBroadcastJoinThreshold``);
* ``batch_size_bytes`` / ``max_row_bytes`` — the row-batch geometry of
  the Indexed Row-Batch RDD (paper §2: 4 MB batches, rows up to 1 KB);
* ``executor_threads`` — degree of task parallelism (stand-in for the
  paper's 10-node cluster).

Fault tolerance adds a second family of knobs, mirroring Spark's
``spark.task.maxFailures`` / ``spark.speculation`` space: bounded task
retries with exponential backoff, a per-stage deadline, speculative
re-execution of stragglers, at-least-once ingestion retries, graceful
indexed-operator fallback, and an optional seeded
:class:`~repro.faults.FaultProfile` that switches chaos injection on
for the whole session.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import CapacityError, ConfigError
from repro.faults import FaultProfile, FaultSchedule

#: Spellings accepted by :func:`_env_flag`. Every ``REPRO_*`` boolean
#: flag parses through the same sets, so ``REPRO_SANITIZERS=true`` and
#: ``REPRO_DURABILITY=1`` behave identically.
_ENV_TRUE = frozenset({"1", "true", "yes", "on"})
_ENV_FALSE = frozenset({"", "0", "false", "no", "off"})


def _env_flag(name: str, default: bool = False) -> bool:
    """Parse a ``REPRO_*`` boolean environment flag consistently.

    Case-insensitive: ``1/true/yes/on`` enable, ``0/false/no/off`` (or
    empty/unset) disable. Anything else raises ``ValueError`` — a typo
    like ``REPRO_SANITIZERS=yse`` must not silently run unsanitized.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _ENV_TRUE:
        return True
    if value in _ENV_FALSE:
        return False
    raise ValueError(
        f"{name}={raw!r} is not a valid boolean flag "
        f"(accepted: {'/'.join(sorted(_ENV_TRUE))} or "
        f"{'/'.join(sorted(_ENV_FALSE - frozenset({''})))})"
    )


def _env_int(name: str, default: int) -> int:
    """Parse a ``REPRO_*`` integer environment knob consistently.

    Unset/empty keeps the default; anything non-numeric raises
    ``ValueError`` — a typo like ``REPRO_EXECUTORS=fuor`` must not
    silently fall back to single-process execution.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw.strip())
    except ValueError:
        raise ValueError(f"{name}={raw!r} is not a valid integer") from None


def _executors_default() -> int:
    """Env override for the cluster backend: ``REPRO_EXECUTORS=N``
    runs every session with N worker processes (0 = in-process)."""
    return _env_int("REPRO_EXECUTORS", 0)


def _sanitizers_default() -> bool:
    """Env override so a whole test run can be sanitized without
    touching every Config construction site: ``REPRO_SANITIZERS=1``."""
    return _env_flag("REPRO_SANITIZERS")


def _durability_default() -> bool:
    """Env override to switch on durable state for a whole run:
    ``REPRO_DURABILITY=1``."""
    return _env_flag("REPRO_DURABILITY")


def _serving_default() -> bool:
    """Env override to switch on the serving/resource-governance layer
    for a whole run: ``REPRO_SERVING=1``."""
    return _env_flag("REPRO_SERVING")


#: Paper §2: row batches of 4 MB.
DEFAULT_BATCH_SIZE = 4 * 1024 * 1024
#: Paper §2: rows of up to 1 KB.
DEFAULT_MAX_ROW_BYTES = 1024


@dataclass(frozen=True)
class Config:
    """Immutable configuration for an engine/session.

    Use :meth:`with_options` to derive a modified copy, mirroring the
    builder style of ``SparkConf``.
    """

    #: Number of partitions produced by shuffle exchanges.
    shuffle_partitions: int = 8
    #: Default parallelism used when creating RDDs without an explicit
    #: partition count.
    default_parallelism: int = 4
    #: Worker threads in the executor pool. ``1`` gives fully
    #: deterministic single-threaded execution (useful in tests).
    executor_threads: int = 4
    #: Probe relations at most this many rows are broadcast rather than
    #: shuffled in joins.
    broadcast_threshold: int = 10_000
    #: Capacity of the block-manager cache in bytes before LRU eviction.
    cache_capacity_bytes: int = 512 * 1024 * 1024
    #: Size of one indexed row batch in bytes.
    batch_size_bytes: int = DEFAULT_BATCH_SIZE
    #: Maximum encoded row size in bytes.
    max_row_bytes: int = DEFAULT_MAX_ROW_BYTES
    #: Retries allowed per task for *transient* failures (injected
    #: faults, lost shuffle fetches, I/O errors). ``0`` disables
    #: retrying: the first transient failure raises
    #: :class:`~repro.errors.RetryExhaustedError`.
    task_max_retries: int = 3
    #: Base of the exponential retry backoff, in seconds (attempt ``n``
    #: waits ``retry_backoff_s * 2**(n-1)``, capped at 1s).
    retry_backoff_s: float = 0.01
    #: Also retry deterministic (non-transient) task errors. Off by
    #: default: a ``ValueError`` in user code fails fast, as retrying
    #: it only replays the same crash.
    retry_all_errors: bool = False
    #: Wall-clock deadline per stage in seconds; ``None`` disables.
    #: On expiry the stage cancels outstanding tasks and raises
    #: :class:`~repro.errors.StageTimeoutError`.
    stage_timeout_s: float | None = None
    #: Enable speculative re-execution of straggler tasks.
    speculation: bool = False
    #: A running task is a straggler once its elapsed time exceeds
    #: ``speculation_multiplier`` × the median duration of finished
    #: tasks in the same stage.
    speculation_multiplier: float = 3.0
    #: Fraction of a stage's tasks that must finish before stragglers
    #: are considered for speculation.
    speculation_quantile: float = 0.5
    #: Retries allowed for a failed broker poll/commit in the
    #: ingestion loop before it gives up with RetryExhaustedError.
    ingest_max_retries: int = 5
    #: Base of the ingestion retry backoff, in seconds.
    ingest_backoff_s: float = 0.01
    #: Degrade a failing indexed operator (IndexLookup / IndexedJoin)
    #: to the equivalent vanilla plan instead of aborting the query.
    index_fallback: bool = True
    #: Compile bound expression trees into Python functions and run the
    #: hot operator loops batch-at-a-time (the whole-stage-codegen
    #: analogue). Off forces the interpreted row-at-a-time paths; the
    #: compiled paths also fall back per-expression on any compile
    #: error, so disabling this is only needed for A/B measurement.
    codegen_enabled: bool = True
    #: Maintain per-batch/per-partition zone maps (min/max, null count)
    #: on indexed storage and relation scans, and let the planner skip
    #: batches and partitions that provably cannot match a filter. Off
    #: restores the scan-everything behavior bit for bit.
    zone_maps_enabled: bool = True
    #: Let the planner use updatable bitmap indexes (``create_index(...,
    #: kind="bitmap")``) for analytical predicates: low-cardinality
    #: equality, ranges, and AND/OR combinations compile to bitmap
    #: intersections costed against the zone-map-pruned scan and the
    #: cTrie lookup. Off restores the pre-bitmap plans bit for bit —
    #: attached bitmap indexes are still maintained, just never chosen.
    bitmap_indexes_enabled: bool = True
    #: Runtime adaptivity over the DAG scheduler (the AQE analogue):
    #: coalesce tiny reduce partitions from recorded map-output sizes
    #: and replan shuffle joins into broadcast joins when the measured
    #: build side fits under ``broadcast_threshold``. Off restores
    #: static planning.
    adaptive_enabled: bool = True
    #: Target bytes per reduce partition when adaptive execution
    #: coalesces small adjacent shuffle buckets.
    target_reduce_bytes: int = 256 * 1024
    #: Runtime sanitizers (opt-in, for tests): sealed row batches and
    #: snapshot-shared zone maps become write-poisoned — any mutation
    #: raises :class:`~repro.errors.SanitizerError` instead of silently
    #: corrupting MVCC snapshots. Costs a CRC pass per snapshot, so it
    #: stays off outside the test/CI configurations. ``REPRO_SANITIZERS=1``
    #: in the environment flips the default on for a whole run.
    sanitizers_enabled: bool = field(default_factory=_sanitizers_default)
    #: Durable state: write-ahead-log every indexed append and restore
    #: from checkpoint + WAL replay on startup. Off by default — with
    #: durability off the engine behaves bit-identically to a build
    #: without the subsystem. ``REPRO_DURABILITY=1`` flips the default
    #: on for a whole run.
    durability_enabled: bool = field(default_factory=_durability_default)
    #: Root directory for WAL segments and checkpoints. ``None`` means
    #: the ``REPRO_DURABILITY_DIR`` environment variable, falling back
    #: to ``.repro_state`` under the working directory.
    durability_dir: str | None = None
    #: ``fsync`` WAL batches before acknowledging the append. On is the
    #: production contract (a committed record survives OS death); off
    #: trades that for throughput when only process death matters.
    wal_fsync: bool = True
    #: Checkpoint once a store's live WAL grows past this many bytes.
    wal_checkpoint_bytes: int = 4 * 1024 * 1024
    #: ... or once the oldest uncheckpointed WAL record is older than
    #: this many seconds (whichever comes first).
    wal_checkpoint_age_s: float = 30.0
    #: Poll interval of the background checkpointer thread.
    checkpoint_poll_s: float = 0.1
    #: Serving / resource governance: admission control, per-query
    #: deadlines with cooperative cancellation, memory budgets, circuit
    #: breakers, and deadline-driven degraded plans. Off by default —
    #: with the flag off the engine never installs a query context and
    #: behaves bit-identically to a build without the subsystem.
    #: ``REPRO_SERVING=1`` flips the default on for a whole run.
    serving_enabled: bool = field(default_factory=_serving_default)
    #: Queries allowed to execute concurrently; further admissions wait
    #: in the bounded queue.
    serving_max_concurrent: int = 4
    #: Queries allowed to *wait* for a slot; beyond this depth the
    #: controller sheds load with :class:`~repro.errors.QueryRejectedError`.
    serving_queue_depth: int = 16
    #: Longest a query may wait in the admission queue before it is
    #: rejected (also the basis of the retry-after hint).
    serving_queue_timeout_s: float = 1.0
    #: Per-tenant cap on concurrently executing queries.
    serving_tenant_max_concurrent: int = 2
    #: Default per-query deadline in seconds; ``None`` means unbounded
    #: unless the caller passes one.
    serving_default_deadline_s: float | None = None
    #: Global memory budget charged by row-batch decode, shuffle write,
    #: and broadcast allocations across all running queries. On breach
    #: the governor cancels the largest query (kill-largest policy).
    serving_memory_budget_bytes: int = 256 * 1024 * 1024
    #: Per-query memory budget; a query exceeding it is cancelled.
    serving_query_memory_bytes: int = 64 * 1024 * 1024
    #: Consecutive failures at a guarded fault site before its circuit
    #: breaker trips open (fast-fail).
    serving_breaker_failures: int = 5
    #: Seconds an open breaker fast-fails before letting one half-open
    #: probe through.
    serving_breaker_reset_s: float = 1.0
    #: Deadline-driven degradation: when the planner's zone-map row
    #: estimates predict the exact plan blows the remaining deadline,
    #: fall back to a sampled scan marked ``degraded=True``. Requires
    #: ``serving_enabled``.
    serving_degrade_enabled: bool = True
    #: Cost-model rate (rows/s a scan is assumed to sustain) used by
    #: the deadline-aware degradation decision.
    serving_scan_rows_per_s: float = 2_000_000.0
    #: Smallest fraction of partitions a degraded scan keeps.
    serving_min_sample_fraction: float = 0.05
    #: Worker *processes* for the cluster backend. ``0`` (the default)
    #: keeps everything in-process — bit-identical plans and results to
    #: a build without the subsystem. ``N > 0`` forks N executors that
    #: own partitions by ``split % N``, receive pickled task closures
    #: over pipes, read sealed row batches zero-copy out of
    #: ``multiprocessing.shared_memory``, and exchange shuffle data via
    #: per-worker spill files. ``REPRO_EXECUTORS=N`` flips the default
    #: for a whole run.
    executors: int = field(default_factory=_executors_default)
    #: Directory for cluster shuffle spill files; ``None`` uses a
    #: session-scoped temporary directory removed at ``stop()``.
    cluster_spill_dir: str | None = None
    #: Seconds between worker→driver heartbeats. ``0`` disables the
    #: liveness monitor entirely (pre-PR-10 behavior: a hung worker is
    #: only caught by ``rpc_deadline``, or never).
    heartbeat_interval: float = 0.05
    #: A worker slot whose last beat is older than this is declared
    #: dead and fenced: its generation is killed, its map outputs are
    #: rejected, and the slot respawns. Must exceed
    #: ``heartbeat_interval`` (several beats must fit in the window).
    #: Halfway to the timeout the slot turns *suspect*, which feeds
    #: speculative execution.
    heartbeat_timeout: float = 2.0
    #: Per-RPC deadline in seconds for a dispatched cluster task:
    #: a worker that neither replies nor dies within this window is
    #: fenced and the attempt fails with
    #: :class:`~repro.errors.ClusterTimeoutError` (transient).
    #: ``None`` disables the deadline — a task may legitimately run
    #: arbitrarily long; heartbeats still catch *hung* workers.
    rpc_deadline: float | None = None
    #: Bounded retries for one shuffle spill-file read before it is
    #: reported as a :class:`~repro.errors.FetchFailedError` (each
    #: retry backs off briefly; transient FS hiccups heal, a file that
    #: died with its worker still fails fast).
    rpc_max_retries: int = 2
    #: Deterministic gray-failure schedule (hang/delay/drop/heartbeat-
    #: miss draws keyed by seed, site, split, and attempt); ``None``
    #: disables. Driver-side only: workers fork with it stripped, the
    #: driver makes every draw so replays are bit-identical.
    fault_schedule: "FaultSchedule | None" = None
    #: Analyzed+optimized logical plans memoized per session, keyed by
    #: a parameterized plan fingerprint (literal values slotted out).
    #: ``0`` disables the plan cache entirely.
    plan_cache_size: int = 128
    #: Seeded chaos-injection profile; ``None`` (the default) disables
    #: all fault injection.
    faults: FaultProfile | None = None
    #: Extra free-form options (namespaced strings, like Spark conf keys).
    extra: dict[str, Any] = field(default_factory=dict)

    def _require(self, knob: str, ok: bool, requirement: str) -> None:
        """One validation: a failed requirement is a loud
        :class:`~repro.errors.ConfigError` at construction (also a
        ``ValueError``) naming the knob and its actual value — never a
        misbehaving engine at runtime."""
        if not ok:
            raise ConfigError(
                f"{knob} must be {requirement}, got {getattr(self, knob)!r}"
            )

    def __post_init__(self) -> None:
        require = self._require
        require("shuffle_partitions", self.shuffle_partitions >= 1, ">= 1")
        require("default_parallelism", self.default_parallelism >= 1, ">= 1")
        require("executor_threads", self.executor_threads >= 1, ">= 1")
        if self.batch_size_bytes < 1024:
            raise CapacityError("batch_size_bytes must be at least 1 KiB")
        if self.max_row_bytes < 16:
            raise CapacityError("max_row_bytes must be at least 16 bytes")
        if self.max_row_bytes > self.batch_size_bytes:
            raise CapacityError(
                "max_row_bytes cannot exceed batch_size_bytes: "
                f"{self.max_row_bytes} > {self.batch_size_bytes}"
            )
        require("task_max_retries", self.task_max_retries >= 0, ">= 0")
        require("retry_backoff_s", self.retry_backoff_s >= 0, ">= 0")
        require(
            "stage_timeout_s",
            self.stage_timeout_s is None or self.stage_timeout_s > 0,
            "positive (or None)",
        )
        require(
            "speculation_multiplier", self.speculation_multiplier >= 1.0, ">= 1"
        )
        require(
            "speculation_quantile",
            0.0 < self.speculation_quantile <= 1.0,
            "in (0, 1]",
        )
        require("ingest_max_retries", self.ingest_max_retries >= 0, ">= 0")
        require("ingest_backoff_s", self.ingest_backoff_s >= 0, ">= 0")
        require("target_reduce_bytes", self.target_reduce_bytes >= 1, ">= 1")
        require("wal_checkpoint_bytes", self.wal_checkpoint_bytes >= 1, ">= 1")
        require("wal_checkpoint_age_s", self.wal_checkpoint_age_s > 0, "positive")
        require("checkpoint_poll_s", self.checkpoint_poll_s > 0, "positive")
        require("serving_max_concurrent", self.serving_max_concurrent >= 1, ">= 1")
        require("serving_queue_depth", self.serving_queue_depth >= 0, ">= 0")
        require(
            "serving_queue_timeout_s", self.serving_queue_timeout_s > 0, "positive"
        )
        require(
            "serving_tenant_max_concurrent",
            self.serving_tenant_max_concurrent >= 1,
            ">= 1",
        )
        require(
            "serving_default_deadline_s",
            self.serving_default_deadline_s is None
            or self.serving_default_deadline_s > 0,
            "positive (or None)",
        )
        require(
            "serving_memory_budget_bytes",
            self.serving_memory_budget_bytes >= 1,
            ">= 1",
        )
        require(
            "serving_query_memory_bytes", self.serving_query_memory_bytes >= 1, ">= 1"
        )
        require(
            "serving_breaker_failures", self.serving_breaker_failures >= 1, ">= 1"
        )
        require(
            "serving_breaker_reset_s", self.serving_breaker_reset_s > 0, "positive"
        )
        require(
            "serving_scan_rows_per_s", self.serving_scan_rows_per_s > 0, "positive"
        )
        require(
            "serving_min_sample_fraction",
            0.0 < self.serving_min_sample_fraction <= 1.0,
            "in (0, 1]",
        )
        require("executors", 0 <= self.executors <= 64, "in [0, 64]")
        require("plan_cache_size", self.plan_cache_size >= 0, ">= 0")
        require(
            "heartbeat_interval", self.heartbeat_interval >= 0, ">= 0 (0 disables)"
        )
        if self.heartbeat_interval > 0 and not (
            self.heartbeat_timeout > self.heartbeat_interval
        ):
            raise ConfigError(
                "heartbeat_timeout must exceed heartbeat_interval "
                f"(several beats must fit in the window), got "
                f"{self.heartbeat_timeout!r} <= {self.heartbeat_interval!r}"
            )
        require("heartbeat_timeout", self.heartbeat_timeout > 0, "positive")
        require(
            "rpc_deadline",
            self.rpc_deadline is None or self.rpc_deadline > 0,
            "positive (or None)",
        )
        require("rpc_max_retries", self.rpc_max_retries >= 0, ">= 0")

    def with_options(self, **changes: Any) -> "Config":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **changes)

    def get(self, key: str, default: Any = None) -> Any:
        """Look up a free-form option from :attr:`extra`."""
        return self.extra.get(key, default)
