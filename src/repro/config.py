"""Engine and Indexed-DataFrame configuration.

A single :class:`Config` object travels from the user through the
:class:`~repro.sql.session.Session` into the engine and the indexed
core. It mirrors the handful of Spark knobs the paper's evaluation
depends on:

* ``shuffle_partitions`` — number of reduce-side partitions created by
  an exchange (``spark.sql.shuffle.partitions``);
* ``broadcast_threshold`` — estimated probe-relation size (in rows)
  below which an indexed or vanilla join falls back to a broadcast join
  instead of a shuffle (``spark.sql.autoBroadcastJoinThreshold``);
* ``batch_size_bytes`` / ``max_row_bytes`` — the row-batch geometry of
  the Indexed Row-Batch RDD (paper §2: 4 MB batches, rows up to 1 KB);
* ``executor_threads`` — degree of task parallelism (stand-in for the
  paper's 10-node cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import CapacityError

#: Paper §2: row batches of 4 MB.
DEFAULT_BATCH_SIZE = 4 * 1024 * 1024
#: Paper §2: rows of up to 1 KB.
DEFAULT_MAX_ROW_BYTES = 1024


@dataclass(frozen=True)
class Config:
    """Immutable configuration for an engine/session.

    Use :meth:`with_options` to derive a modified copy, mirroring the
    builder style of ``SparkConf``.
    """

    #: Number of partitions produced by shuffle exchanges.
    shuffle_partitions: int = 8
    #: Default parallelism used when creating RDDs without an explicit
    #: partition count.
    default_parallelism: int = 4
    #: Worker threads in the executor pool. ``1`` gives fully
    #: deterministic single-threaded execution (useful in tests).
    executor_threads: int = 4
    #: Probe relations at most this many rows are broadcast rather than
    #: shuffled in joins.
    broadcast_threshold: int = 10_000
    #: Capacity of the block-manager cache in bytes before LRU eviction.
    cache_capacity_bytes: int = 512 * 1024 * 1024
    #: Size of one indexed row batch in bytes.
    batch_size_bytes: int = DEFAULT_BATCH_SIZE
    #: Maximum encoded row size in bytes.
    max_row_bytes: int = DEFAULT_MAX_ROW_BYTES
    #: Extra free-form options (namespaced strings, like Spark conf keys).
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.shuffle_partitions < 1:
            raise ValueError("shuffle_partitions must be >= 1")
        if self.default_parallelism < 1:
            raise ValueError("default_parallelism must be >= 1")
        if self.executor_threads < 1:
            raise ValueError("executor_threads must be >= 1")
        if self.batch_size_bytes < 1024:
            raise CapacityError("batch_size_bytes must be at least 1 KiB")
        if self.max_row_bytes < 16:
            raise CapacityError("max_row_bytes must be at least 16 bytes")
        if self.max_row_bytes > self.batch_size_bytes:
            raise CapacityError(
                "max_row_bytes cannot exceed batch_size_bytes: "
                f"{self.max_row_bytes} > {self.batch_size_bytes}"
            )

    def with_options(self, **changes: Any) -> "Config":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **changes)

    def get(self, key: str, default: Any = None) -> Any:
        """Look up a free-form option from :attr:`extra`."""
        return self.extra.get(key, default)
