"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class. The sub-classes mirror the
layers of the system: engine (RDD/scheduler), SQL (analysis/parsing/
planning), and the indexed-dataframe core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class EngineError(ReproError):
    """Error in the RDD / scheduler / shuffle layer."""


class TaskError(EngineError):
    """A task failed while executing on an executor thread.

    Wraps the original exception and records which partition failed so
    that the scheduler can report a precise failure location.
    """

    def __init__(self, stage_id: int, partition: int, cause: BaseException):
        self.stage_id = stage_id
        self.partition = partition
        self.cause = cause
        super().__init__(
            f"task failed in stage {stage_id}, partition {partition}: {cause!r}"
        )


class AnalysisError(ReproError):
    """The SQL analyzer could not resolve or type-check a query."""


class ParseError(ReproError):
    """The SQL parser rejected the query text."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class PlanningError(ReproError):
    """No physical plan could be produced for a logical plan."""


class SchemaError(ReproError):
    """Rows do not conform to the expected schema."""


class IndexError_(ReproError):
    """Error in the indexed-dataframe core (named to avoid shadowing
    the builtin :class:`IndexError`)."""


class CapacityError(IndexError_):
    """A row, batch, or pointer field exceeded its addressable capacity."""


class ConcurrencyError(ReproError):
    """An invariant of the concurrent trie / MVCC machinery was violated."""


class StreamingError(ReproError):
    """Error in the in-process broker / ingestion layer."""
