"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class. The sub-classes mirror the
layers of the system: engine (RDD/scheduler), SQL (analysis/parsing/
planning), and the indexed-dataframe core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class EngineError(ReproError):
    """Error in the RDD / scheduler / shuffle layer."""


class TaskError(EngineError):
    """A task failed while executing on an executor thread.

    Wraps the original exception and records which partition failed so
    that the scheduler can report a precise failure location.
    """

    def __init__(self, stage_id: int, partition: int, cause: BaseException):
        self.stage_id = stage_id
        self.partition = partition
        self.cause = cause
        super().__init__(
            f"task failed in stage {stage_id}, partition {partition}: {cause!r}"
        )

    def __reduce__(self):
        # Exceptions with multi-argument __init__ do not survive the
        # default Exception pickling (which replays cls(*args) with the
        # formatted message only); the cluster backend ships task
        # failures back from worker processes, so spell out the real
        # constructor arguments.
        return (type(self), (self.stage_id, self.partition, self.cause))


class InjectedFault(ReproError):
    """A fault raised on purpose by the deterministic fault injector.

    Carries the injection *site* (e.g. ``"task"``, ``"broker.read"``,
    ``"index.probe"``) so recovery code and tests can tell injected
    chaos apart from organic failures. Injected faults are transient by
    definition: retrying the operation may succeed.
    """

    def __init__(self, site: str):
        self.site = site
        super().__init__(f"injected fault at site {site!r}")

    def __reduce__(self):
        return (type(self), (self.site,))


class FetchFailedError(EngineError):
    """A reduce task could not fetch a shuffle map output.

    The Spark-equivalent of ``FetchFailedException``: the scheduler
    reacts not by merely retrying the reduce task but by recomputing
    the lost map outputs from lineage first.
    """

    def __init__(
        self,
        shuffle_id: int,
        map_index: int | None = None,
        message: str | None = None,
    ):
        self.shuffle_id = shuffle_id
        self.map_index = map_index
        if message is None:
            where = "" if map_index is None else f", map output {map_index}"
            message = f"shuffle {shuffle_id}{where}: map output(s) missing"
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.shuffle_id, self.map_index, str(self)))


class RetryExhaustedError(EngineError):
    """A transient failure persisted through every allowed retry.

    Raised by the scheduler when a task keeps failing with a transient
    cause past ``Config.task_max_retries``, and by the ingestion loop
    when broker polling stays down past ``Config.ingest_max_retries``.
    """

    def __init__(self, site: str, attempts: int, cause: BaseException):
        self.site = site
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"{site} failed permanently after {attempts} attempt(s): {cause!r}"
        )

    def __reduce__(self):
        return (type(self), (self.site, self.attempts, self.cause))


class WorkerLostError(EngineError):
    """A cluster worker process died while tasks were in flight.

    The process-backend analogue of Spark's ``ExecutorLostFailure``:
    transient by definition — the backend respawns the worker slot, the
    dead worker's shuffle spill outputs are invalidated, and the
    scheduler retries the in-flight task (lineage recomputation covers
    any map outputs that died with the process).
    """

    def __init__(self, worker_id: int, generation: int, detail: str = ""):
        self.worker_id = worker_id
        self.generation = generation
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"worker {worker_id} (generation {generation}) lost{suffix}"
        )

    def __reduce__(self):
        return (type(self), (self.worker_id, self.generation))


class ClusterTimeoutError(EngineError):
    """A cluster RPC or heartbeat deadline expired on a gray worker.

    The gray-failure analogue of :class:`WorkerLostError`: the worker
    process did not die cleanly — it hung, stalled, or silently dropped
    a reply — so the driver *fenced* it (declared its generation dead
    and killed the process) after ``Config.heartbeat_timeout`` missed
    beats or a ``Config.rpc_deadline`` expiry. **Transient**: the slot
    respawns at a new generation and the scheduler retries the attempt;
    lineage recomputation covers any map outputs fenced with it.
    ``reason`` names the detector (``"heartbeat"`` or
    ``"rpc-deadline"``).
    """

    def __init__(
        self, worker_id: int, generation: int, reason: str, detail: str = ""
    ):
        self.worker_id = worker_id
        self.generation = generation
        self.reason = reason
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"worker {worker_id} (generation {generation}) fenced by "
            f"{reason}{suffix}"
        )

    def __reduce__(self):
        return (type(self), (self.worker_id, self.generation, self.reason))


class StageTimeoutError(EngineError):
    """A stage exceeded its configured deadline (``Config.stage_timeout_s``)."""

    def __init__(self, stage_id: int, timeout_s: float):
        self.stage_id = stage_id
        self.timeout_s = timeout_s
        super().__init__(
            f"stage {stage_id} exceeded its deadline of {timeout_s:.3f}s"
        )

    def __reduce__(self):
        return (type(self), (self.stage_id, self.timeout_s))


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid.

    Raised by :class:`~repro.config.Config` at construction so a bad
    knob (negative deadline, zero budget) fails loudly before any query
    runs, never as mysterious runtime behavior. Also a
    :class:`ValueError` so callers validating config generically keep
    working.
    """


class ServingError(ReproError):
    """Error in the serving / resource-governance layer."""


class QueryRejectedError(ServingError):
    """Admission control shed this query before it ran.

    **Retryable**: the engine was overloaded (queue full, concurrency or
    memory budget exhausted) at submission time. ``retry_after_s`` is
    the controller's backoff hint; nothing about the query itself is
    wrong.
    """

    def __init__(self, reason: str, retry_after_s: float, tenant: str | None = None):
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.tenant = tenant
        where = f" (tenant {tenant!r})" if tenant else ""
        super().__init__(
            f"query rejected{where}: {reason}; retry after {retry_after_s:.3f}s"
        )


class QueryCancelledError(Exception):
    """A query's cooperative cancellation token fired mid-execution.

    ``reason`` names why: ``"deadline"`` (the per-query deadline
    expired — retryable with a larger deadline), ``"memory"`` (the
    memory governor killed the largest query on budget breach —
    retryable once load drains), ``"user"``/``"shutdown"``, or an
    injected-chaos reason. **Fail-stop for this attempt**: the query
    released its pool slots and produced no result.

    Deliberately **not** a :class:`ReproError` (the
    :class:`SanitizerError` reasoning): task retry, index fallback, and
    ingestion supervision absorb library errors by design, but a
    cancelled query must *stop* — re-executing it through a fallback
    path would keep draining exactly the resources cancellation exists
    to release. Only the serving front end catches it.
    """

    def __init__(self, query_id: str, reason: str):
        self.query_id = query_id
        self.reason = reason
        super().__init__(f"query {query_id} cancelled: {reason}")

    def __reduce__(self):
        return (type(self), (self.query_id, self.reason))


class CircuitOpenError(ServingError):
    """A circuit breaker is open: the guarded fault site failed
    persistently and calls now fail fast instead of burning retries.
    Retryable after the breaker's reset window (half-open probe)."""

    def __init__(self, site: str, retry_after_s: float):
        self.site = site
        self.retry_after_s = retry_after_s
        super().__init__(
            f"circuit {site!r} open; fast-failing, probe in {retry_after_s:.3f}s"
        )


class AnalysisError(ReproError):
    """The SQL analyzer could not resolve or type-check a query."""


class ParseError(ReproError):
    """The SQL parser rejected the query text."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class PlanningError(ReproError):
    """No physical plan could be produced for a logical plan."""


class CodegenError(ReproError):
    """An expression tree could not be compiled to Python source.

    Raised by :mod:`repro.codegen` when a tree contains a node the
    compiler does not support. Callers treat it as a signal to fall
    back to the interpreted ``Expression.eval`` path, never as a query
    failure."""


class SchemaError(ReproError):
    """Rows do not conform to the expected schema."""


class IndexError_(ReproError):
    """Error in the indexed-dataframe core (named to avoid shadowing
    the builtin :class:`IndexError`)."""


class CapacityError(IndexError_):
    """A row, batch, or pointer field exceeded its addressable capacity."""


class ConcurrencyError(ReproError):
    """An invariant of the concurrent trie / MVCC machinery was violated."""


class StreamingError(ReproError):
    """Error in the in-process broker / ingestion layer."""


class DurabilityError(ReproError):
    """A write-ahead-log or checkpoint I/O operation failed.

    Covers fsync failures, unwritable WAL segments, and checkpoint
    commits that could not complete. Transient in the same sense as a
    broker fault: the in-memory state is still intact and the
    operation may be retried.
    """


class WalReplayError(DurabilityError):
    """A worker-local WAL replay could not reproduce the driver's
    snapshot (checkpoint raced past it, a WAL epoch was garbage-
    collected mid-read, or the rebuilt watermark diverged).

    **Transient** (it is a :class:`DurabilityError`): the driver's
    durable state is intact — only this worker's local rebuild missed.
    The dispatcher disables WAL-shipping for the partition and the
    scheduler's retry re-ships the snapshot through shared memory.
    """

    def __init__(self, store_dir: str, partition_index: int, detail: str):
        self.store_dir = store_dir
        self.partition_index = partition_index
        self.detail = detail
        super().__init__(
            f"worker WAL replay of {store_dir!r} partition "
            f"{partition_index} failed: {detail}"
        )

    def __reduce__(self):
        return (type(self), (self.store_dir, self.partition_index, self.detail))


class RecoveryError(Exception):
    """Durable state could not be restored on startup.

    Deliberately **not** a :class:`ReproError` (same reasoning as
    :class:`SanitizerError`): task retry, index fallback, and ingestion
    supervision absorb library errors by design, but a checkpoint whose
    CRC seal no longer matches — or a missing durable manifest — means
    the recovered store would silently diverge from the pre-crash
    state. That must abort startup loudly, never be healed by
    re-execution. A *torn WAL tail* is not a recovery error: it is the
    expected signature of a crash mid-write and is truncated silently.
    """


class SimulatedCrash(BaseException):
    """An injected process death (chaos testing only).

    Derives from :class:`BaseException` so that no recovery layer —
    scheduler retries, ingestion supervision, index fallback — can
    absorb it: a real ``kill -9`` is not catchable either. The chaos
    harness catches it at the outermost test level, discards every
    in-memory structure, and restarts from the durable state on disk.
    """

    def __init__(self, site: str):
        self.site = site
        super().__init__(f"simulated crash at site {site!r}")


class SanitizerError(Exception):
    """A runtime sanitizer observed an invariant violation.

    Deliberately **not** a :class:`ReproError`: the retry / fallback
    machinery (scheduler retries, ``GuardedIndexExec`` degradation,
    ingestion supervision) absorbs library errors by design, and a
    sanitizer trip — a write to a sealed row batch, a mutation of a
    snapshot-shared zone map — is a bug that must surface, never be
    healed by re-execution. Raised only when
    ``Config.sanitizers_enabled`` is on.
    """

    def __init__(self, rule: str, message: str):
        self.rule = rule
        super().__init__(f"[{rule}] {message}")


#: The fail-stop classes: failures no recovery layer may absorb. Any
#: ``except Exception`` that sits on a retry / fallback / supervision
#: path must be preceded by the blessed guard ``except FAIL_STOP:
#: raise`` (enforced by ``repro.analysis`` rules ET001–ET003).
#: ``SimulatedCrash`` is not listed because it derives from
#: ``BaseException`` — ``except Exception`` cannot catch it.
FAIL_STOP = (QueryCancelledError, RecoveryError, SanitizerError)
