"""Logical query plans.

A logical plan describes *what* to compute without fixing *how*
(paper §2, "Integration with Catalyst"). Nodes are immutable; rewrites
produce new trees via :meth:`LogicalPlan.transform_up` /
:meth:`LogicalPlan.transform_expressions`, the same machinery Catalyst
rules use.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.errors import AnalysisError
from repro.sql.expressions import (
    Alias,
    Attribute,
    Expression,
    SortOrder,
    strip_alias,
)
from repro.sql.relation import BaseRelation
from repro.sql.types import StructField, StructType

JOIN_TYPES = ("inner", "left", "right", "full", "cross", "semi", "anti")


class LogicalPlan:
    """Base class of logical operators."""

    children: tuple["LogicalPlan", ...] = ()

    # -- schema ----------------------------------------------------------

    def output(self) -> list[Attribute]:
        """The attributes this operator produces."""
        raise NotImplementedError

    @property
    def schema(self) -> StructType:
        return StructType(
            [StructField(a.name, a.dtype, a.nullable) for a in self.output()]
        )

    @property
    def resolved(self) -> bool:
        return all(c.resolved for c in self.children) and all(
            e.resolved for e in self.expressions()
        )

    # -- tree machinery ----------------------------------------------------

    def expressions(self) -> Sequence[Expression]:
        return ()

    def with_new_children(self, children: Sequence["LogicalPlan"]) -> "LogicalPlan":
        raise NotImplementedError(type(self).__name__)

    def map_expressions(
        self, fn: Callable[[Expression], Expression]
    ) -> "LogicalPlan":
        """Rebuild this node with each expression replaced by ``fn(e)``."""
        return self

    def transform_up(
        self, fn: Callable[["LogicalPlan"], "LogicalPlan"]
    ) -> "LogicalPlan":
        if self.children:
            new_children = [c.transform_up(fn) for c in self.children]
            if any(n is not o for n, o in zip(new_children, self.children)):
                node = self.with_new_children(new_children)
            else:
                node = self
        else:
            node = self
        return fn(node)

    def transform_expressions(
        self, fn: Callable[[Expression], Expression]
    ) -> "LogicalPlan":
        """Apply ``fn`` bottom-up to every expression in the whole tree."""

        def rewrite(plan: LogicalPlan) -> LogicalPlan:
            return plan.map_expressions(lambda e: e.transform_up(fn))

        return self.transform_up(rewrite)

    def collect_plans(
        self, pred: Callable[["LogicalPlan"], bool]
    ) -> Iterator["LogicalPlan"]:
        if pred(self):
            yield self
        for child in self.children:
            yield from child.collect_plans(pred)

    def pretty(self, indent: int = 0) -> str:
        """Readable multi-line plan description (like ``df.explain()``)."""
        line = "  " * indent + self.describe()
        return "\n".join([line] + [c.pretty(indent + 1) for c in self.children])

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return self.pretty()


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------


class ScannableLeaf(LogicalPlan):
    """A leaf that can always lower itself to a plain row scan.

    The base planner supports any such leaf, so custom relations (like
    the Indexed DataFrame's) remain executable even when their special
    strategies are not installed — the paper's "fall back to a regular
    Spark Row RDD" guarantee.
    """

    def scan_exec(self, ctx: "object") -> "object":
        """Return a PhysicalPlan scanning this leaf's rows."""
        raise NotImplementedError


class Relation(LogicalPlan):
    """Leaf scanning an in-memory relation.

    Every instantiation mints *fresh* attribute ids mapped positionally
    onto the relation's columns, so scanning the same table twice (a
    self-join) yields unambiguous references.
    """

    def __init__(self, relation: BaseRelation, attributes: list[Attribute] | None = None):
        self.relation = relation
        if attributes is None:
            attributes = [
                Attribute(f.name, f.dtype, None, None, f.nullable)
                for f in relation.schema
            ]
        self._attributes = attributes

    def output(self) -> list[Attribute]:
        return list(self._attributes)

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Relation":
        return self

    def fresh_copy(self) -> "Relation":
        """Same relation, fresh attribute ids (new scan instance)."""
        return Relation(self.relation)

    def describe(self) -> str:
        return f"Relation[{type(self.relation).__name__}] {self._attributes}"


class UnresolvedRelation(LogicalPlan):
    """A table referenced by name, resolved against the session catalog
    before analysis."""

    def __init__(self, name: str):
        self.name = name

    def output(self) -> list[Attribute]:
        raise AnalysisError(f"table {self.name!r} is not resolved")

    @property
    def resolved(self) -> bool:
        return False

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "UnresolvedRelation":
        return self

    def describe(self) -> str:
        return f"UnresolvedRelation[{self.name}]"


class LocalRelation(LogicalPlan):
    """Leaf holding literal rows (used for empty/constant relations)."""

    def __init__(self, attributes: list[Attribute], rows: list[tuple]):
        self._attributes = attributes
        self.rows = rows

    def output(self) -> list[Attribute]:
        return list(self._attributes)

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "LocalRelation":
        return self

    def describe(self) -> str:
        return f"LocalRelation({len(self.rows)} rows)"


# ----------------------------------------------------------------------
# Unary operators
# ----------------------------------------------------------------------


class UnaryNode(LogicalPlan):
    def __init__(self, child: LogicalPlan):
        self.child = child
        self.children = (child,)


class Project(UnaryNode):
    """Select list: a mix of Attributes, Aliases, and (pre-analysis)
    unresolved expressions / stars."""

    def __init__(self, project_list: Sequence[Expression], child: LogicalPlan):
        super().__init__(child)
        self.project_list = list(project_list)

    def output(self) -> list[Attribute]:
        out = []
        for expr in self.project_list:
            if isinstance(expr, Attribute):
                out.append(expr)
            elif isinstance(expr, Alias):
                out.append(expr.to_attribute())
            else:
                raise AnalysisError(
                    f"unresolved expression in project list: {expr!r}"
                )
        return out

    def expressions(self) -> Sequence[Expression]:
        return self.project_list

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Project":
        return Project(self.project_list, children[0])

    def map_expressions(self, fn: Callable[[Expression], Expression]) -> "Project":
        rebuilt = [fn(e) for e in self.project_list]
        if all(n is o for n, o in zip(rebuilt, self.project_list)):
            return self
        return Project(rebuilt, self.child)

    def describe(self) -> str:
        return f"Project{self.project_list}"


class Filter(UnaryNode):
    def __init__(self, condition: Expression, child: LogicalPlan):
        super().__init__(child)
        self.condition = condition

    def output(self) -> list[Attribute]:
        return self.child.output()

    def expressions(self) -> Sequence[Expression]:
        return (self.condition,)

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Filter":
        return Filter(self.condition, children[0])

    def map_expressions(self, fn: Callable[[Expression], Expression]) -> "Filter":
        condition = fn(self.condition)
        if condition is self.condition:
            return self
        return Filter(condition, self.child)

    def describe(self) -> str:
        return f"Filter[{self.condition!r}]"


class Aggregate(UnaryNode):
    """Grouped aggregation.

    ``aggregate_list`` entries must be named (Attribute or Alias) after
    analysis; grouping expressions may appear in it verbatim.
    """

    def __init__(
        self,
        grouping: Sequence[Expression],
        aggregate_list: Sequence[Expression],
        child: LogicalPlan,
    ):
        super().__init__(child)
        self.grouping = list(grouping)
        self.aggregate_list = list(aggregate_list)

    def output(self) -> list[Attribute]:
        out = []
        for expr in self.aggregate_list:
            if isinstance(expr, Attribute):
                out.append(expr)
            elif isinstance(expr, Alias):
                out.append(expr.to_attribute())
            else:
                raise AnalysisError(f"unnamed aggregate expression: {expr!r}")
        return out

    def expressions(self) -> Sequence[Expression]:
        return [*self.grouping, *self.aggregate_list]

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Aggregate":
        return Aggregate(self.grouping, self.aggregate_list, children[0])

    def map_expressions(self, fn: Callable[[Expression], Expression]) -> "Aggregate":
        grouping = [fn(e) for e in self.grouping]
        aggregates = [fn(e) for e in self.aggregate_list]
        unchanged = all(n is o for n, o in zip(grouping, self.grouping)) and all(
            n is o for n, o in zip(aggregates, self.aggregate_list)
        )
        if unchanged:
            return self
        return Aggregate(grouping, aggregates, self.child)

    def describe(self) -> str:
        return f"Aggregate[group={self.grouping}, agg={self.aggregate_list}]"


class Sort(UnaryNode):
    def __init__(self, orders: Sequence[SortOrder], child: LogicalPlan):
        super().__init__(child)
        self.orders = list(orders)

    def output(self) -> list[Attribute]:
        return self.child.output()

    def expressions(self) -> Sequence[Expression]:
        return self.orders

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Sort":
        return Sort(self.orders, children[0])

    def map_expressions(self, fn: Callable[[Expression], Expression]) -> "Sort":
        new_orders = []
        changed = False
        for order in self.orders:
            rewritten = fn(order)
            if rewritten is not order:
                changed = True
                if not isinstance(rewritten, SortOrder):
                    rewritten = SortOrder(rewritten, order.ascending, order.nulls_first)
            new_orders.append(rewritten)
        if not changed:
            return self
        return Sort(new_orders, self.child)

    def describe(self) -> str:
        return f"Sort{self.orders}"


class Limit(UnaryNode):
    def __init__(self, n: int, child: LogicalPlan):
        super().__init__(child)
        if n < 0:
            raise AnalysisError("LIMIT must be non-negative")
        self.n = n

    def output(self) -> list[Attribute]:
        return self.child.output()

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Limit":
        return Limit(self.n, children[0])

    def describe(self) -> str:
        return f"Limit[{self.n}]"


class Distinct(UnaryNode):
    def output(self) -> list[Attribute]:
        return self.child.output()

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Distinct":
        return Distinct(children[0])


class SubqueryAlias(UnaryNode):
    """Attaches a qualifier (``FROM t AS alias``) to a child's output."""

    def __init__(self, alias: str, child: LogicalPlan):
        super().__init__(child)
        self.alias = alias

    def output(self) -> list[Attribute]:
        return [a.with_qualifier(self.alias) for a in self.child.output()]

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "SubqueryAlias":
        return SubqueryAlias(self.alias, children[0])

    def describe(self) -> str:
        return f"SubqueryAlias[{self.alias}]"


# ----------------------------------------------------------------------
# Binary operators
# ----------------------------------------------------------------------


class Join(LogicalPlan):
    def __init__(
        self,
        left: LogicalPlan,
        right: LogicalPlan,
        how: str = "inner",
        condition: Expression | None = None,
    ):
        how = how.lower().replace("_outer", "")
        if how not in JOIN_TYPES:
            raise AnalysisError(f"unsupported join type: {how!r}")
        if how == "cross" and condition is not None:
            raise AnalysisError("cross join cannot have a condition")
        if how != "cross" and condition is None:
            raise AnalysisError(f"{how} join requires a condition")
        self.left = left
        self.right = right
        self.how = how
        self.condition = condition
        self.children = (left, right)

    def output(self) -> list[Attribute]:
        left_out = self.left.output()
        right_out = self.right.output()
        if self.how == "left":
            right_out = [
                Attribute(a.name, a.dtype, a.expr_id, a.qualifier, True)
                for a in right_out
            ]
        elif self.how == "right":
            left_out = [
                Attribute(a.name, a.dtype, a.expr_id, a.qualifier, True)
                for a in left_out
            ]
        elif self.how == "full":
            left_out = [
                Attribute(a.name, a.dtype, a.expr_id, a.qualifier, True)
                for a in left_out
            ]
            right_out = [
                Attribute(a.name, a.dtype, a.expr_id, a.qualifier, True)
                for a in right_out
            ]
        elif self.how in ("semi", "anti"):
            return left_out
        return left_out + right_out

    def expressions(self) -> Sequence[Expression]:
        return (self.condition,) if self.condition is not None else ()

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Join":
        return Join(children[0], children[1], self.how, self.condition)

    def map_expressions(self, fn: Callable[[Expression], Expression]) -> "Join":
        if self.condition is None:
            return self
        condition = fn(self.condition)
        if condition is self.condition:
            return self
        return Join(self.left, self.right, self.how, condition)

    def describe(self) -> str:
        return f"Join[{self.how}, {self.condition!r}]"


class Union(LogicalPlan):
    def __init__(self, left: LogicalPlan, right: LogicalPlan):
        self.left = left
        self.right = right
        self.children = (left, right)

    def output(self) -> list[Attribute]:
        return self.left.output()

    def with_new_children(self, children: Sequence[LogicalPlan]) -> "Union":
        return Union(children[0], children[1])


# ----------------------------------------------------------------------
# Helpers shared by the analyzer / optimizer
# ----------------------------------------------------------------------


def named_expression(expr: Expression, fallback: str) -> Expression:
    """Ensure an expression is named (wrap in Alias if needed)."""
    if isinstance(expr, (Attribute, Alias)):
        return expr
    return Alias(expr, fallback)


def expression_name(expr: Expression) -> str:
    """Best-effort display name for an expression in a select list."""
    stripped = strip_alias(expr)
    if isinstance(expr, Alias):
        return expr.name
    if isinstance(stripped, Attribute):
        return stripped.name
    return repr(stripped)


def attributes_cover(required: set[Attribute], provided: Sequence[Attribute]) -> bool:
    """True if every required attribute id is produced by ``provided``."""
    ids = {a.expr_id for a in provided}
    return all(a.expr_id in ids for a in required)


def instantiate_plan(plan: LogicalPlan) -> LogicalPlan:
    """Deep-copy a plan with fresh attribute/alias ids.

    Used when a catalog plan is referenced: each reference becomes an
    independent instance, so a table used twice in one query (a
    self-join) produces unambiguous attributes — Catalyst's
    deduplication of relation instances.
    """
    mapping: dict[int, Attribute] = {}

    def remap_expr(expr: Expression) -> Expression:
        if isinstance(expr, Attribute) and expr.expr_id in mapping:
            fresh = mapping[expr.expr_id]
            return Attribute(
                expr.name, fresh.dtype, fresh.expr_id, expr.qualifier, fresh.nullable
            )
        return expr

    def rebuild(node: LogicalPlan) -> LogicalPlan:
        fresh_copy = getattr(node, "fresh_copy", None)
        if callable(fresh_copy) and not node.children:
            fresh = fresh_copy()
            for old, new in zip(node.output(), fresh.output()):
                mapping[old.expr_id] = new
            return fresh
        node = node.map_expressions(lambda e: e.transform_up(remap_expr))
        # Aliases define new ids referenced upstream: re-mint them too.
        if isinstance(node, (Project, Aggregate)):
            exprs = (
                node.project_list if isinstance(node, Project) else node.aggregate_list
            )
            fresh_exprs: list[Expression] = []
            for expr in exprs:
                if isinstance(expr, Alias):
                    fresh_alias = Alias(expr.child, expr.name)
                    if expr.child.resolved:
                        mapping[expr.expr_id] = fresh_alias.to_attribute()
                    fresh_exprs.append(fresh_alias)
                else:
                    fresh_exprs.append(expr)
            if isinstance(node, Project):
                return Project(fresh_exprs, node.child)
            return Aggregate(node.grouping, fresh_exprs, node.child)
        return node

    return plan.transform_up(rebuild)
