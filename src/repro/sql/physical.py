"""Physical operators: executable plans compiling to RDDs.

Each operator exposes ``output`` (attributes, for binding) and
``execute()`` returning an RDD of plain tuples. Expressions are bound
to tuple ordinals once, at construction, so per-row evaluation never
touches names (paper Figure 1, "Physical Execution Layer").

Join selection mirrors Spark: a *broadcast hash join* when one side is
estimated small (``Config.broadcast_threshold``), otherwise a
*shuffled hash join* built on cogroup. The indexed operators in
:mod:`repro.core.physical` extend :class:`PhysicalPlan` and slot into
the same pipeline.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro import codegen
from repro.engine.context import EngineContext
from repro.engine.partitioner import HashPartitioner
from repro.engine.rdd import RDD, ParallelCollectionRDD
from repro.errors import PlanningError
from repro.index.bitmap import iter_bits
from repro.serving.context import check_cancelled
from repro.sql.expressions import (
    AggregateExpression,
    Alias,
    Attribute,
    BoundReference,
    Expression,
    SortOrder,
    strip_alias,
)
from repro.sql.relation import BaseRelation
from repro.stats import extract_pruning_predicates


def bind_expression(expr: Expression, input_attrs: Sequence[Attribute]) -> Expression:
    """Replace Attribute references with ordinal BoundReferences."""
    ordinals = {a.expr_id: i for i, a in enumerate(input_attrs)}

    def bind(node: Expression) -> Expression:
        if isinstance(node, Attribute):
            if node.expr_id not in ordinals:
                raise PlanningError(
                    f"attribute {node!r} not found among inputs {list(input_attrs)}"
                )
            return BoundReference(ordinals[node.expr_id], node.dtype, node.name)
        return node

    return expr.transform_up(bind)


class PhysicalPlan:
    """Base class for physical operators.

    Every concrete operator declares its **partitioning contract** with
    a class-level ``PARTITIONING`` attribute — ``"source"`` (creates
    partitions), ``"narrow"`` (per-partition transform), ``"exchange"``
    (repartitions by key), or ``"driver"`` (materializes on the
    driver). The declaration is checked against the operator body by
    ``python -m repro.analysis`` (rules PC001/PC002), which also
    enforces the EXPLAIN-marker contracts: pruning and adaptive
    decisions must be visible in :meth:`describe` output.
    """

    children: tuple["PhysicalPlan", ...] = ()

    def __init__(self, ctx: EngineContext, output: Sequence[Attribute]):
        self.ctx = ctx
        self.output = list(output)

    def execute(self) -> RDD:
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        line = "  " * indent + self.describe()
        return "\n".join([line] + [c.pretty(indent + 1) for c in self.children])

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return self.pretty()


class ScanExec(PhysicalPlan):
    """Scan of an in-memory relation, optionally column-pruned.

    On a :class:`~repro.sql.relation.ColumnarRelation` a pruned scan
    touches only the projected column vectors — vanilla Spark's edge in
    the projection microbenchmark.
    """

    PARTITIONING = "source"

    def __init__(
        self,
        ctx: EngineContext,
        relation: BaseRelation,
        output: Sequence[Attribute],
        columns: Sequence[int] | None = None,
    ):
        super().__init__(ctx, output)
        self.relation = relation
        self.columns = list(columns) if columns is not None else None
        self._keep: list[int] | None = None
        self._pruned = 0
        self._sample_fraction: float | None = None

    def apply_pruning(self, condition: Expression) -> None:
        """Use zone maps to skip partitions a filter can never match.

        Called by the planner with the filter condition sitting directly
        above this scan. Predicate ordinals come from ``self.output``
        (the scan's *projected* columns), so they are mapped back through
        ``self.columns`` to storage ordinals before consulting the zone
        maps. Sound by the zone-map contract: ``may_match`` never returns
        False for a zone containing a matching row, and the filter above
        still re-checks every surviving row.
        """
        if not self.ctx.config.zone_maps_enabled:
            return
        predicates = extract_pruning_predicates(condition, self.output)
        if not predicates:
            return
        if self.columns is not None:
            cols = self.columns
            predicates = [p.with_ordinal(cols[p.ordinal]) for p in predicates]
        zones = self.relation.partition_zones()
        keep = [i for i, zone in enumerate(zones) if zone.may_match(predicates)]
        self._pruned = len(zones) - len(keep)
        if self._pruned:
            self._keep = keep
        self.ctx.pruning_metrics.record_scan(
            partitions_total=len(zones), partitions_pruned=self._pruned
        )

    def estimated_rows(self) -> int | None:
        """Row estimate for deadline-aware planning, scaled by any
        pruning already applied (the fraction of partitions kept)."""
        rows = self.relation.num_rows()
        if rows is None or self._keep is None:
            return rows
        total = self._pruned + len(self._keep)
        if total <= 0:
            return rows
        return int(rows * len(self._keep) / total)

    def apply_sampling(self, fraction: float) -> bool:
        """Degrade to a strided subset of the surviving partitions.

        Called by the serving runtime when the deadline-aware planner
        predicts the exact scan blows the query's remaining deadline
        (DESIGN.md §12). Composes with zone pruning: sampling draws
        from the *kept* partitions, evenly strided so the sample spans
        the relation instead of its prefix. Returns True when the scan
        actually shrank — the plan then carries a ``degraded=True``
        EXPLAIN marker.
        """
        candidates = (
            self._keep
            if self._keep is not None
            else list(range(self.relation.num_partitions))
        )
        if len(candidates) <= 1:
            return False
        target = max(1, round(len(candidates) * fraction))
        if target >= len(candidates):
            return False
        step = len(candidates) / target
        self._keep = [candidates[int(i * step)] for i in range(target)]
        self._sample_fraction = fraction
        return True

    def execute(self) -> RDD:
        return self.relation.to_rdd(self.ctx, self.columns, self._keep)

    def describe(self) -> str:
        cols = "all" if self.columns is None else self.columns
        base = f"Scan[{type(self.relation).__name__}, columns={cols}"
        if self._pruned and self._keep is not None:
            total = self._pruned + len(self._keep)
            base = f"{base}, zone_pruned={self._pruned}/{total}"
        if self._sample_fraction is not None:
            base = f"{base}, degraded=True, sample={self._sample_fraction:.3f}"
        return base + "]"


class LocalDataExec(PhysicalPlan):
    """A small local list of rows (constant relations)."""

    PARTITIONING = "source"

    def __init__(self, ctx: EngineContext, rows: list[tuple], output: Sequence[Attribute]):
        super().__init__(ctx, output)
        self.rows = rows

    def execute(self) -> RDD:
        return self.ctx.parallelize(self.rows, 1)


class FilterExec(PhysicalPlan):
    PARTITIONING = "narrow"

    def __init__(self, condition: Expression, child: PhysicalPlan):
        super().__init__(child.ctx, child.output)
        self.children = (child,)
        self.condition = bind_expression(condition, child.output)

    def execute(self) -> RDD:
        predicate = self.condition
        if self.ctx.config.codegen_enabled:
            kernel = codegen.try_filter_project_kernel(predicate, None)
            if kernel is not None:
                return self.children[0].execute().map_partitions(
                    codegen.chunked(kernel), preserves_partitioning=True
                )

        def keep(row: tuple) -> bool:
            return predicate.eval(row) is True

        return self.children[0].execute().filter(keep)

    def describe(self) -> str:
        return f"Filter[{self.condition!r}]"


class ProjectExec(PhysicalPlan):
    """Projection, optionally with a fused filter.

    ``fused_filter`` carries a selection predicate evaluated against
    the *child's* rows before projecting — the planner supplies it for
    a ``Project(Filter(...))`` pair when codegen is on, so filter and
    projection run as one compiled batch kernel (the moral equivalent
    of Spark fusing both into a single WholeStageCodegen stage).
    """

    PARTITIONING = "narrow"

    def __init__(
        self,
        project_list: Sequence[Expression],
        child: PhysicalPlan,
        fused_filter: Expression | None = None,
    ):
        output = []
        for expr in project_list:
            if isinstance(expr, Attribute):
                output.append(expr)
            elif isinstance(expr, Alias):
                output.append(expr.to_attribute())
            else:
                raise PlanningError(f"unnamed projection {expr!r}")
        super().__init__(child.ctx, output)
        self.children = (child,)
        self.bound = [bind_expression(e, child.output) for e in project_list]
        self.fused_filter = (
            bind_expression(fused_filter, child.output)
            if fused_filter is not None
            else None
        )

    def execute(self) -> RDD:
        exprs = self.bound
        condition = self.fused_filter
        if self.ctx.config.codegen_enabled:
            kernel = codegen.try_filter_project_kernel(condition, exprs)
            if kernel is not None:
                return self.children[0].execute().map_partitions(
                    codegen.chunked(kernel)
                )

        child_rdd = self.children[0].execute()
        if condition is not None:
            child_rdd = child_rdd.filter(lambda row: condition.eval(row) is True)

        def project(row: tuple) -> tuple:
            return tuple(e.eval(row) for e in exprs)

        return child_rdd.map(project)

    def describe(self) -> str:
        names = [a.name for a in self.output]
        if self.fused_filter is not None:
            return f"Project[{names}, fused_filter={self.fused_filter!r}]"
        return f"Project[{names}]"


class UnionExec(PhysicalPlan):
    PARTITIONING = "narrow"

    def __init__(self, left: PhysicalPlan, right: PhysicalPlan):
        super().__init__(left.ctx, left.output)
        self.children = (left, right)

    def execute(self) -> RDD:
        return self.children[0].execute().union(self.children[1].execute())


class LimitExec(PhysicalPlan):
    PARTITIONING = "driver"

    def __init__(self, n: int, child: PhysicalPlan):
        super().__init__(child.ctx, child.output)
        self.children = (child,)
        self.n = n

    def execute(self) -> RDD:
        rows = self.children[0].execute().take(self.n)
        return self.ctx.parallelize(rows, 1)

    def describe(self) -> str:
        return f"Limit[{self.n}]"


class DistinctExec(PhysicalPlan):
    PARTITIONING = "exchange"

    def __init__(self, child: PhysicalPlan):
        super().__init__(child.ctx, child.output)
        self.children = (child,)

    def execute(self) -> RDD:
        return self.children[0].execute().distinct(
            self.ctx.config.shuffle_partitions
        )


class _SortKey:
    """Composite, direction-aware, null-aware sort key."""

    __slots__ = ("values",)

    def __init__(self, values: tuple):
        self.values = values

    def __lt__(self, other: "_SortKey") -> bool:
        return self.values < other.values

    def __le__(self, other: "_SortKey") -> bool:
        return self.values <= other.values

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)


class SortExec(PhysicalPlan):
    """Total sort: range partition on the composite key, sort locally."""

    PARTITIONING = "exchange"

    def __init__(self, orders: Sequence[SortOrder], child: PhysicalPlan):
        super().__init__(child.ctx, child.output)
        self.children = (child,)
        self.orders = [
            SortOrder(
                bind_expression(o.child, child.output), o.ascending, o.nulls_first
            )
            for o in orders
        ]

    def _key_fn(self) -> Callable[[tuple], _SortKey]:
        enabled = self.ctx.config.codegen_enabled
        getters = [
            (codegen.value_fn(o.child, enabled), o.ascending, o.nulls_first)
            for o in self.orders
        ]

        def key(row: tuple) -> _SortKey:
            parts = []
            for get, ascending, nulls_first in getters:
                value = get(row)
                if value is None:
                    # Null ordering: a leading rank keeps None comparable.
                    rank = 0 if nulls_first == ascending else 2
                    parts.append((rank, 0))
                else:
                    if not ascending:
                        value = _Reversed(value)
                    parts.append((1, value))
            return _SortKey(tuple(parts))

        return key

    def execute(self) -> RDD:
        return self.children[0].execute().sort_by(self._key_fn())

    def describe(self) -> str:
        return f"Sort{self.orders}"


class TakeOrderedExec(PhysicalPlan):
    """Top-K: ``LIMIT n`` over ``ORDER BY`` fused into a heap select.

    Each partition keeps only its n smallest rows (by the composite
    sort key), then the driver merges the per-partition winners —
    Spark's ``TakeOrderedAndProject``. Avoids the full shuffle sort
    for the very common "most recent k" query shape (e.g. SNB SQ2).
    """

    PARTITIONING = "driver"

    def __init__(self, n: int, orders: Sequence[SortOrder], child: PhysicalPlan):
        super().__init__(child.ctx, child.output)
        self.children = (child,)
        self.n = n
        self._sorter = SortExec(orders, child)  # reuse its key function

    def execute(self) -> RDD:
        import heapq

        n = self.n
        if n == 0:
            return self.ctx.parallelize([], 1)
        key_fn = self._sorter._key_fn()

        def local_top(rows: Iterator[tuple]) -> Iterator[tuple]:
            return iter(heapq.nsmallest(n, rows, key=key_fn))

        candidates = (
            self.children[0].execute().map_partitions(local_top).collect()
        )
        top = heapq.nsmallest(n, candidates, key=key_fn)
        return self.ctx.parallelize(top, 1)

    def describe(self) -> str:
        return f"TakeOrdered[n={self.n}]"


class _Reversed:
    """Inverts comparison order for descending sort components."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __le__(self, other: "_Reversed") -> bool:
        return other.value <= self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


class _AggSpec:
    """Streaming accumulator for one aggregate function."""

    def __init__(self, fn_name: str, value_expr: Expression | None):
        self.fn_name = fn_name
        self.value_expr = value_expr

    def create(self) -> Any:
        if self.fn_name in ("count",):
            return 0
        if self.fn_name == "count_distinct":
            return set()
        if self.fn_name == "avg":
            return (0, 0.0)  # (count, sum)
        if self.fn_name == "first":
            return (False, None)
        return None  # sum / min / max start empty

    def update(self, acc: Any, row: tuple) -> Any:
        value = self.value_expr.eval(row) if self.value_expr is not None else 1
        if self.fn_name == "count":
            return acc + (1 if (self.value_expr is None or value is not None) else 0)
        if value is None:
            return acc
        if self.fn_name == "count_distinct":
            acc.add(value)
            return acc
        if self.fn_name == "sum":
            return value if acc is None else acc + value
        if self.fn_name == "min":
            return value if acc is None or value < acc else acc
        if self.fn_name == "max":
            return value if acc is None or value > acc else acc
        if self.fn_name == "avg":
            count, total = acc
            return (count + 1, total + value)
        if self.fn_name == "first":
            seen, current = acc
            return acc if seen else (True, value)
        raise PlanningError(f"unknown aggregate {self.fn_name}")

    def merge(self, a: Any, b: Any) -> Any:
        if self.fn_name == "count":
            return a + b
        if self.fn_name == "count_distinct":
            a.update(b)
            return a
        if self.fn_name == "sum":
            if a is None:
                return b
            return a if b is None else a + b
        if self.fn_name == "min":
            if a is None:
                return b
            return a if b is None or a < b else b
        if self.fn_name == "max":
            if a is None:
                return b
            return a if b is None or a > b else b
        if self.fn_name == "avg":
            return (a[0] + b[0], a[1] + b[1])
        if self.fn_name == "first":
            return a if a[0] else b
        raise PlanningError(f"unknown aggregate {self.fn_name}")

    def result(self, acc: Any) -> Any:
        if self.fn_name == "count_distinct":
            return len(acc)
        if self.fn_name == "avg":
            count, total = acc
            return None if count == 0 else total / count
        if self.fn_name == "first":
            return acc[1]
        return acc

    def make_updater(self, enabled: bool = True) -> Callable[[Any, tuple], Any]:
        """A hoisted ``(acc, row) -> acc`` closure.

        Equivalent to :meth:`update` but with the string dispatch
        resolved once and the value expression compiled, so the hot
        per-row loop does no name-based branching.
        """
        fn_name = self.fn_name
        if self.value_expr is None:
            if fn_name == "count":  # COUNT(*) counts every row
                return lambda acc, row: acc + 1
            get = lambda row: 1  # noqa: E731 - matches update()'s default
        else:
            get = codegen.value_fn(self.value_expr, enabled)

        if fn_name == "count":
            return lambda acc, row: acc + (0 if get(row) is None else 1)

        if fn_name == "count_distinct":
            def update_distinct(acc: Any, row: tuple) -> Any:
                value = get(row)
                if value is not None:
                    acc.add(value)
                return acc

            return update_distinct

        if fn_name == "sum":
            def update_sum(acc: Any, row: tuple) -> Any:
                value = get(row)
                if value is None:
                    return acc
                return value if acc is None else acc + value

            return update_sum

        if fn_name == "min":
            def update_min(acc: Any, row: tuple) -> Any:
                value = get(row)
                if value is None:
                    return acc
                return value if acc is None or value < acc else acc

            return update_min

        if fn_name == "max":
            def update_max(acc: Any, row: tuple) -> Any:
                value = get(row)
                if value is None:
                    return acc
                return value if acc is None or value > acc else acc

            return update_max

        if fn_name == "avg":
            def update_avg(acc: Any, row: tuple) -> Any:
                value = get(row)
                if value is None:
                    return acc
                return (acc[0] + 1, acc[1] + value)

            return update_avg

        if fn_name == "first":
            def update_first(acc: Any, row: tuple) -> Any:
                if acc[0]:
                    return acc
                value = get(row)
                return acc if value is None else (True, value)

            return update_first

        raise PlanningError(f"unknown aggregate {fn_name}")


class HashAggregateExec(PhysicalPlan):
    """Two-phase hash aggregation: partial per partition, shuffle by
    group key, final merge (Spark's partial/final HashAggregate)."""

    PARTITIONING = "driver"

    def __init__(
        self,
        grouping: Sequence[Expression],
        aggregate_list: Sequence[Expression],
        child: PhysicalPlan,
    ):
        output = []
        for expr in aggregate_list:
            if isinstance(expr, Attribute):
                output.append(expr)
            elif isinstance(expr, Alias):
                output.append(expr.to_attribute())
            else:
                raise PlanningError(f"unnamed aggregate output {expr!r}")
        super().__init__(child.ctx, output)
        self.children = (child,)
        self.grouping_bound = [bind_expression(g, child.output) for g in grouping]

        # Split output expressions into group-key projections and
        # aggregate accumulators.
        self._specs: list[_AggSpec] = []
        self._out_plan: list[tuple[str, int]] = []  # ("group", i) | ("agg", j)
        group_keys = [strip_alias(g) for g in grouping]
        for expr in aggregate_list:
            inner = strip_alias(expr)
            if isinstance(inner, AggregateExpression):
                value_expr = (
                    bind_expression(inner.child, child.output)
                    if inner.child is not None
                    else None
                )
                fn_name = inner.fn_name
                if inner.distinct and fn_name == "count":
                    fn_name = "count_distinct"
                self._specs.append(_AggSpec(fn_name, value_expr))
                self._out_plan.append(("agg", len(self._specs) - 1))
            else:
                position = None
                for i, g in enumerate(group_keys):
                    if inner.semantic_equals(g):
                        position = i
                        break
                if position is None and isinstance(inner, Attribute):
                    for i, g in enumerate(group_keys):
                        if isinstance(g, Attribute) and g.expr_id == inner.expr_id:
                            position = i
                            break
                if position is None:
                    raise PlanningError(
                        f"aggregate output {expr!r} is neither an aggregate nor "
                        f"a grouping expression"
                    )
                self._out_plan.append(("group", position))

    # -- helpers --------------------------------------------------------

    def _make_partial(self) -> Callable[[Iterator[tuple]], Iterator[tuple[tuple, list]]]:
        """Build the per-partition partial-aggregation closure once.

        The grouping-key extractor is compiled and each spec's update
        is resolved to a hoisted closure, so the row loop is free of
        tree walks and string dispatch.
        """
        specs = self._specs
        enabled = self.ctx.config.codegen_enabled
        if self.grouping_bound:
            key_of = codegen.key_fn(self.grouping_bound, enabled=enabled)
        else:
            key_of = lambda row: ()  # noqa: E731 - global aggregate
        updaters = list(enumerate(spec.make_updater(enabled) for spec in specs))

        def partial(rows: Iterator[tuple]) -> Iterator[tuple[tuple, list]]:
            groups: dict[tuple, list] = {}
            get_group = groups.get
            for row in rows:
                key = key_of(row)
                accs = get_group(key)
                if accs is None:
                    accs = [spec.create() for spec in specs]
                    groups[key] = accs
                for i, update in updaters:
                    accs[i] = update(accs[i], row)
            return iter(groups.items())

        return partial

    def _merge(self, a: list, b: list) -> list:
        return [spec.merge(x, y) for spec, x, y in zip(self._specs, a, b)]

    def _finish(self, key: tuple, accs: list) -> tuple:
        out = []
        for kind, index in self._out_plan:
            if kind == "group":
                out.append(key[index])
            else:
                out.append(self._specs[index].result(accs[index]))
        return tuple(out)

    def execute(self) -> RDD:
        child_rdd = self.children[0].execute()
        partial_fn = self._make_partial()
        if not self.grouping_bound:
            # Global aggregate: merge partials on the driver so empty
            # input still yields exactly one row.
            partials = child_rdd.map_partitions(
                lambda it: list(partial_fn(it))
            ).collect()
            accs = [spec.create() for spec in self._specs]
            for _key, part in partials:
                accs = self._merge(accs, part)
            return self.ctx.parallelize([self._finish((), accs)], 1)
        partial = child_rdd.map_partitions(partial_fn)
        merged = partial.reduce_by_key(
            self._merge, self.ctx.config.shuffle_partitions
        )
        return merged.map(lambda kv: self._finish(kv[0], kv[1]))

    def describe(self) -> str:
        return f"HashAggregate[keys={len(self.grouping_bound)}, aggs={len(self._specs)}]"


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------


def _null_row(width: int) -> tuple:
    return (None,) * width


class ShuffledHashJoinExec(PhysicalPlan):
    """Equi-join via cogroup on the join keys.

    Rows whose key contains NULL never match (SQL semantics); for outer
    joins they are re-emitted padded with NULLs.
    """

    PARTITIONING = "exchange"

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        left_keys: Sequence[Expression],
        right_keys: Sequence[Expression],
        how: str,
        extra_condition: Expression | None = None,
    ):
        output = _join_output(left, right, how)
        super().__init__(left.ctx, output)
        self.children = (left, right)
        self.how = how
        self.left_keys = [bind_expression(k, left.output) for k in left_keys]
        self.right_keys = [bind_expression(k, right.output) for k in right_keys]
        self.extra = (
            bind_expression(extra_condition, list(left.output) + list(right.output))
            if extra_condition is not None
            else None
        )

    def execute(self) -> RDD:
        how = self.how
        lwidth = len(self.children[0].output)
        rwidth = len(self.children[1].output)
        enabled = self.ctx.config.codegen_enabled
        lkey = codegen.key_fn(self.left_keys, null_to_none=True, enabled=enabled)
        rkey = codegen.key_fn(self.right_keys, null_to_none=True, enabled=enabled)
        extra = codegen.predicate_fn(self.extra, enabled)

        left_kv = self.children[0].execute().map(lambda r: (lkey(r), r))
        right_kv = self.children[1].execute().map(lambda r: (rkey(r), r))

        matchable_left = left_kv.filter(lambda kv: kv[0] is not None)
        matchable_right = right_kv.filter(lambda kv: kv[0] is not None)
        grouped = matchable_left.cogroup(
            matchable_right, self.ctx.config.shuffle_partitions
        )

        def emit(kv: tuple) -> Iterator[tuple]:
            _key, (lefts, rights) = kv
            if how in ("inner", "cross"):
                for lrow in lefts:
                    for rrow in rights:
                        combined = lrow + rrow
                        if extra is None or extra(combined) is True:
                            yield combined
            elif how == "left":
                for lrow in lefts:
                    matched = False
                    for rrow in rights:
                        combined = lrow + rrow
                        if extra is None or extra(combined) is True:
                            matched = True
                            yield combined
                    if not matched:
                        yield lrow + _null_row(rwidth)
            elif how == "right":
                for rrow in rights:
                    matched = False
                    for lrow in lefts:
                        combined = lrow + rrow
                        if extra is None or extra(combined) is True:
                            matched = True
                            yield combined
                    if not matched:
                        yield _null_row(lwidth) + rrow
            elif how == "full":
                matched_right = [False] * len(rights)
                for lrow in lefts:
                    matched = False
                    for j, rrow in enumerate(rights):
                        combined = lrow + rrow
                        if extra is None or extra(combined) is True:
                            matched = True
                            matched_right[j] = True
                            yield combined
                    if not matched:
                        yield lrow + _null_row(rwidth)
                for j, rrow in enumerate(rights):
                    if not matched_right[j]:
                        yield _null_row(lwidth) + rrow
            elif how == "semi":
                for lrow in lefts:
                    for rrow in rights:
                        combined = lrow + rrow
                        if extra is None or extra(combined) is True:
                            yield lrow
                            break
            elif how == "anti":
                for lrow in lefts:
                    hit = False
                    for rrow in rights:
                        combined = lrow + rrow
                        if extra is None or extra(combined) is True:
                            hit = True
                            break
                    if not hit:
                        yield lrow

        joined = grouped.flat_map(emit)

        # Null-keyed rows re-enter for the outer variants.
        if how in ("left", "full"):
            null_left = left_kv.filter(lambda kv: kv[0] is None).map(
                lambda kv: kv[1] + _null_row(rwidth)
            )
            joined = joined.union(null_left)
        if how in ("right", "full"):
            null_right = right_kv.filter(lambda kv: kv[0] is None).map(
                lambda kv: _null_row(lwidth) + kv[1]
            )
            joined = joined.union(null_right)
        if how == "anti":
            null_left = left_kv.filter(lambda kv: kv[0] is None).map(lambda kv: kv[1])
            joined = joined.union(null_left)
        return joined

    def describe(self) -> str:
        return f"ShuffledHashJoin[{self.how}]"


class BroadcastHashJoinExec(PhysicalPlan):
    """Hash join with the (small) right side broadcast to every task.

    Supports inner / cross / left / semi / anti, all streaming the left
    side — the shapes where a broadcast build is valid without global
    match tracking.
    """

    PARTITIONING = "driver"

    SUPPORTED = ("inner", "cross", "left", "semi", "anti")

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        left_keys: Sequence[Expression],
        right_keys: Sequence[Expression],
        how: str,
        extra_condition: Expression | None = None,
    ):
        if how not in self.SUPPORTED:
            raise PlanningError(f"broadcast join does not support {how!r}")
        output = _join_output(left, right, how)
        super().__init__(left.ctx, output)
        self.children = (left, right)
        self.how = how
        self.left_keys = [bind_expression(k, left.output) for k in left_keys]
        self.right_keys = [bind_expression(k, right.output) for k in right_keys]
        self.extra = (
            bind_expression(extra_condition, list(left.output) + list(right.output))
            if extra_condition is not None
            else None
        )

    def execute(self) -> RDD:
        how = self.how
        rwidth = len(self.children[1].output)
        enabled = self.ctx.config.codegen_enabled
        lkey = codegen.key_fn(self.left_keys, null_to_none=True, enabled=enabled)
        rkey = codegen.key_fn(self.right_keys, null_to_none=True, enabled=enabled)
        extra = codegen.predicate_fn(self.extra, enabled)

        build: dict[tuple, list[tuple]] = {}
        for rrow in self.children[1].execute().collect():
            key = rkey(rrow)
            if key is None:
                continue
            build.setdefault(key, []).append(rrow)
        shared = self.ctx.broadcast(build)

        def probe(rows: Iterator[tuple]) -> Iterator[tuple]:
            table = shared.value
            table_get = table.get
            for lrow in rows:
                key = lkey(lrow)
                candidates = () if key is None else table_get(key, ())
                if how in ("inner", "cross"):
                    for rrow in candidates:
                        combined = lrow + rrow
                        if extra is None or extra(combined) is True:
                            yield combined
                elif how == "left":
                    matched = False
                    for rrow in candidates:
                        combined = lrow + rrow
                        if extra is None or extra(combined) is True:
                            matched = True
                            yield combined
                    if not matched:
                        yield lrow + _null_row(rwidth)
                elif how == "semi":
                    for rrow in candidates:
                        combined = lrow + rrow
                        if extra is None or extra(combined) is True:
                            yield lrow
                            break
                elif how == "anti":
                    hit = False
                    for rrow in candidates:
                        combined = lrow + rrow
                        if extra is None or extra(combined) is True:
                            hit = True
                            break
                    if not hit:
                        yield lrow

        return self.children[0].execute().map_partitions(probe)

    def describe(self) -> str:
        return f"BroadcastHashJoin[{self.how}]"


class PrematerializedExec(PhysicalPlan):
    """Rows already computed by the adaptive planner, kept partitioned.

    Wraps the materialized partitions of a plan that was executed once
    to measure its true size, so the chosen join strategy re-reads the
    rows instead of recomputing the subtree.
    """

    PARTITIONING = "source"

    def __init__(
        self,
        ctx: EngineContext,
        partitions: list[list[tuple]],
        output: Sequence[Attribute],
    ):
        super().__init__(ctx, output)
        self._partitions = partitions

    def execute(self) -> RDD:
        return ParallelCollectionRDD.from_partitions(self.ctx, self._partitions)

    def describe(self) -> str:
        rows = sum(len(p) for p in self._partitions)
        return f"Prematerialized[{rows} rows, {len(self._partitions)} partitions]"


class AdaptiveJoinExec(PhysicalPlan):
    """Runtime join-strategy selection (Spark AQE's broadcast demotion,
    inverted): the right side is materialized first, its *exact* row
    count measured, and only then is the join strategy chosen.

    The planner inserts this when its row estimate was too coarse to
    commit to a broadcast statically. Materializing the right side is
    work either strategy needs anyway (build side of the hash table or
    shuffle input), so the extra cost is holding the rows, not
    recomputing them.
    """

    PARTITIONING = "driver"

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        left_keys: Sequence[Expression],
        right_keys: Sequence[Expression],
        how: str,
        extra_condition: Expression | None = None,
    ):
        output = _join_output(left, right, how)
        super().__init__(left.ctx, output)
        self.children = (left, right)
        self.how = how
        # Kept unbound: the chosen exec binds them against its children.
        self._left_keys = list(left_keys)
        self._right_keys = list(right_keys)
        self._extra = extra_condition
        self.decision: str | None = None

    def execute(self) -> RDD:
        left, right = self.children
        right_parts = self.ctx.run_job(right.execute(), list)
        right_rows = sum(len(p) for p in right_parts)
        materialized = PrematerializedExec(self.ctx, right_parts, right.output)
        if (
            right_rows <= self.ctx.config.broadcast_threshold
            and self.how in BroadcastHashJoinExec.SUPPORTED
        ):
            self.decision = f"broadcast({right_rows} rows)"
            self.ctx.scheduler.metrics.bump("runtime_broadcast_joins")
            chosen: PhysicalPlan = BroadcastHashJoinExec(
                left, materialized, self._left_keys, self._right_keys,
                self.how, self._extra,
            )
        else:
            self.decision = f"shuffle({right_rows} rows)"
            chosen = ShuffledHashJoinExec(
                left, materialized, self._left_keys, self._right_keys,
                self.how, self._extra,
            )
        return chosen.execute()

    def describe(self) -> str:
        decision = self.decision or "undecided"
        return f"AdaptiveJoin[{self.how}, decision={decision}]"


class CartesianProductExec(PhysicalPlan):
    """Nested-loop cross product (with optional residual condition)."""

    PARTITIONING = "driver"

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        condition: Expression | None = None,
        how: str = "cross",
    ):
        output = _join_output(left, right, "cross")
        super().__init__(left.ctx, output)
        self.children = (left, right)
        self.condition = (
            bind_expression(condition, list(left.output) + list(right.output))
            if condition is not None
            else None
        )

    def execute(self) -> RDD:
        right_rows = self.children[1].execute().collect()
        shared = self.ctx.broadcast(right_rows)
        condition = self.condition

        def cross(rows: Iterator[tuple]) -> Iterator[tuple]:
            for lrow in rows:
                for rrow in shared.value:
                    combined = lrow + rrow
                    if condition is None or condition.eval(combined) is True:
                        yield combined

        return self.children[0].execute().map_partitions(cross)


# ----------------------------------------------------------------------
# Bitmap index scans
# ----------------------------------------------------------------------


class _BitmapFetchRDD(RDD):
    """Fetch exactly the rows a bitmap selection names, per partition.

    ``selections[i]`` is partition *i*'s selected-row bitmap (bit *j* =
    the partition's *j*-th appended row); ``views[i]`` supplies the
    append-ordinal → packed-pointer array that resolves each set bit to
    its stored record. Bits are walked ascending, which *is* append
    order, so output order matches the scan-and-filter plan row for
    row. Reports the storage :class:`HashPartitioner` like the indexed
    scan does — partition count and numbering are unchanged.
    """

    def __init__(
        self,
        ctx: EngineContext,
        snapshots: Sequence[Any],
        selections: Sequence[int],
        views: Sequence[Any],
        columns: Sequence[int] | None = None,
    ):
        super().__init__(ctx, [])
        self.snapshots = list(snapshots)
        self.selections = list(selections)
        self.views = list(views)
        self.columns = list(columns) if columns is not None else None
        self.partitioner = HashPartitioner(len(self.snapshots))

    @property
    def num_partitions(self) -> int:
        return len(self.snapshots)

    def compute(self, split: int) -> Iterator[tuple]:
        # Chaos site: shared with the cTrie probe — either index kind
        # dies when the executor holding its partition does.
        self.context.fault_injector.maybe_fail("index.probe")
        bits = self.selections[split]
        if not bits:
            return iter(())
        snapshot = self.snapshots[split]
        pointers = self.views[split].pointers
        batches = snapshot.partition.batches
        codec = snapshot.partition.codec
        columns = self.columns

        def fetch() -> Iterator[tuple]:
            n = 0
            for position in iter_bits(bits):
                # A dense selection over a large partition walks millions
                # of bits without touching a chunk boundary; poll every
                # 1024 rows so a cancelled query stops fetching instead
                # of materialising the rest of the selection.
                if not (n & 1023):
                    check_cancelled()
                n += 1
                _prev, payload = batches.read(pointers[position])
                if columns is None:
                    yield codec.decode(payload)
                else:
                    yield tuple(
                        codec.decode_field(payload, 0, c) for c in columns
                    )

        return fetch()


class BitmapScanExec(PhysicalPlan):
    """Row fetch driven by one updatable bitmap-index predicate.

    The planner already evaluated the compiled bitmap program against
    each partition's snapshot views *at plan time* (big-int AND/OR over
    whole bitmaps), so this operator holds the exact per-partition
    selection and its popcount — ``execute`` only fetches. Snapshot
    visibility is baked into the selections: every bitmap was masked to
    the MVCC version's row count, so rows appended after the version
    was captured are invisible without any reader/writer blocking.
    """

    PARTITIONING = "source"
    #: EXPLAIN marker for the planner decision this operator embodies.
    MARKER = "bitmap_chosen"

    def __init__(
        self,
        ctx: EngineContext,
        version: Any,
        output: Sequence[Attribute],
        selections: Sequence[int],
        views: Sequence[Any],
        ordinals: Sequence[int],
        selected_rows: int,
        total_rows: int,
        columns: Sequence[int] | None = None,
    ):
        super().__init__(ctx, output)
        self.version = version
        self.selections = list(selections)
        self.views = list(views)
        self.ordinals = list(ordinals)
        self.selected_rows = selected_rows
        self.total_rows = total_rows
        self.columns = list(columns) if columns is not None else None

    def estimated_rows(self) -> int:
        """Exact, not an estimate: the selection popcount."""
        return self.selected_rows

    def execute(self) -> RDD:
        return _BitmapFetchRDD(
            self.ctx, self.version.snapshots, self.selections, self.views,
            self.columns,
        )

    def describe(self) -> str:
        cols = "all" if self.columns is None else self.columns
        return (
            f"{type(self).__name__}[version={self.version.version_id}, "
            f"columns={cols}, {self.MARKER}=True, ordinals={self.ordinals}, "
            f"selected={self.selected_rows}/{self.total_rows}]"
        )


class BitmapIndexAndExec(BitmapScanExec):
    """Multi-predicate bitmap combination (AND/OR intersection).

    Same fetch machinery as :class:`BitmapScanExec`; a distinct class
    (and EXPLAIN marker) because the planner costed a *combined*
    program — the case where bitmap indexes beat both the cTrie lookup
    and the zone-map-pruned scan on selective conjunctions.
    """

    MARKER = "bitmap_and"


def _join_output(left: PhysicalPlan, right: PhysicalPlan, how: str) -> list[Attribute]:
    left_out = list(left.output)
    right_out = list(right.output)
    if how in ("semi", "anti"):
        return left_out
    if how in ("left", "full"):
        right_out = [
            Attribute(a.name, a.dtype, a.expr_id, a.qualifier, True) for a in right_out
        ]
    if how in ("right", "full"):
        left_out = [
            Attribute(a.name, a.dtype, a.expr_id, a.qualifier, True) for a in left_out
        ]
    return left_out + right_out
