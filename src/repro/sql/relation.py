"""In-memory relations: the leaves query plans scan from.

Two layouts matter to the paper's evaluation:

* :class:`RowRelation` — partitioned lists of row tuples, the layout of
  freshly created DataFrames;
* :class:`ColumnarRelation` — per-partition *column* vectors, the
  layout of Spark's in-memory cache. Scanning a pruned set of columns
  only touches those vectors, which is why Figure 2 shows vanilla Spark
  *winning* on projection.

Both expose ``to_rdd(ctx, columns)`` producing an RDD of tuples over
exactly the requested columns.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.engine.context import EngineContext
from repro.engine.rdd import RDD
from repro.errors import SchemaError
from repro.sql.types import StructType
from repro.stats import ZoneMap


class BaseRelation:
    """Common surface of scannable relations."""

    def __init__(self, schema: StructType):
        self.schema = schema
        self._zones: list[ZoneMap] | None = None

    @property
    def num_partitions(self) -> int:
        raise NotImplementedError

    def num_rows(self) -> int:
        raise NotImplementedError

    def to_rdd(
        self,
        ctx: EngineContext,
        columns: Sequence[int] | None = None,
        keep: Sequence[int] | None = None,
    ) -> RDD:
        """An RDD of tuples holding the given column ordinals (all
        columns, in schema order, when ``columns`` is None). ``keep``
        restricts computation to those partition indices — pruned
        splits yield nothing; partition count is unchanged."""
        raise NotImplementedError

    def iter_rows(self) -> Iterator[tuple]:
        raise NotImplementedError

    def partition_zones(self) -> list[ZoneMap]:
        """Per-partition zone maps, built lazily on first use and cached
        (relations are immutable once constructed, so one build is
        sound for the relation's lifetime)."""
        if self._zones is None:
            ncols = len(self.schema)
            self._zones = [
                ZoneMap.from_rows(ncols, self._compute_partition(i, None))  # type: ignore[attr-defined]
                for i in range(self.num_partitions)
            ]
        return self._zones


class _RelationRDD(RDD):
    """RDD view over a relation's partitions (no copying).

    ``keep`` (when set) lists the partition indices zone-map pruning
    left alive; other splits compute to empty without touching the
    relation. Partition numbering is preserved so downstream operators
    and the partitioner contract are unaffected.
    """

    def __init__(
        self,
        ctx: EngineContext,
        relation: BaseRelation,
        columns: Sequence[int] | None,
        keep: Sequence[int] | None = None,
    ):
        super().__init__(ctx, [])
        self._relation = relation
        self._columns = list(columns) if columns is not None else None
        self._keep = frozenset(keep) if keep is not None else None

    @property
    def num_partitions(self) -> int:
        return self._relation.num_partitions

    def compute(self, split: int) -> Iterator[tuple]:
        if self._keep is not None and split not in self._keep:
            return iter(())
        return self._relation._compute_partition(split, self._columns)  # type: ignore[attr-defined]


class RowRelation(BaseRelation):
    """Row-oriented relation: ``partitions[i]`` is a list of tuples."""

    def __init__(self, schema: StructType, partitions: Sequence[Sequence[tuple]]):
        super().__init__(schema)
        self._partitions = [list(p) for p in partitions]

    @classmethod
    def from_rows(
        cls,
        schema: StructType,
        rows: Sequence[Sequence[Any]],
        num_partitions: int,
        validate: bool = True,
    ) -> "RowRelation":
        tuples = []
        for row in rows:
            t = tuple(row)
            if validate:
                schema.validate_row(t)
            tuples.append(t)
        n = max(1, num_partitions)
        size = len(tuples)
        parts = [
            tuples[(i * size) // n : ((i + 1) * size) // n] for i in range(n)
        ]
        return cls(schema, parts)

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def num_rows(self) -> int:
        return sum(len(p) for p in self._partitions)

    def _compute_partition(self, split: int, columns: list[int] | None) -> Iterator[tuple]:
        rows = self._partitions[split]
        if columns is None:
            return iter(rows)
        cols = columns
        return (tuple(row[c] for c in cols) for row in rows)

    def to_rdd(
        self,
        ctx: EngineContext,
        columns: Sequence[int] | None = None,
        keep: Sequence[int] | None = None,
    ) -> RDD:
        return _RelationRDD(ctx, self, columns, keep)

    def iter_rows(self) -> Iterator[tuple]:
        for part in self._partitions:
            yield from part

    def __repr__(self) -> str:
        return f"RowRelation({self.num_rows()} rows, {self.num_partitions} partitions)"


class ColumnarRelation(BaseRelation):
    """Column-oriented relation: ``partitions[i][c]`` is column ``c``'s
    value vector for partition ``i`` (the Spark cache layout)."""

    def __init__(self, schema: StructType, partitions: Sequence[Sequence[list]]):
        super().__init__(schema)
        self._partitions = [list(cols) for cols in partitions]
        for cols in self._partitions:
            if len(cols) != len(schema):
                raise SchemaError(
                    f"partition has {len(cols)} columns, schema has {len(schema)}"
                )

    @classmethod
    def from_row_partitions(
        cls, schema: StructType, partitions: Sequence[Sequence[tuple]]
    ) -> "ColumnarRelation":
        """Transpose row partitions into column vectors (what ``cache()``
        does when materializing a vanilla DataFrame)."""
        ncols = len(schema)
        out = []
        for part in partitions:
            if part:
                cols = [list(values) for values in zip(*part)]
            else:
                cols = [[] for _ in range(ncols)]
            out.append(cols)
        return cls(schema, out)

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def num_rows(self) -> int:
        return sum(len(cols[0]) if cols and cols[0] is not None else 0 for cols in self._partitions)

    def _compute_partition(self, split: int, columns: list[int] | None) -> Iterator[tuple]:
        cols = self._partitions[split]
        if not cols or not cols[0]:
            return iter(())
        if columns is None:
            return iter(zip(*cols))
        # Pruned scan: only the requested vectors are touched.
        return iter(zip(*(cols[c] for c in columns)))

    def to_rdd(
        self,
        ctx: EngineContext,
        columns: Sequence[int] | None = None,
        keep: Sequence[int] | None = None,
    ) -> RDD:
        return _RelationRDD(ctx, self, columns, keep)

    def iter_rows(self) -> Iterator[tuple]:
        for split in range(self.num_partitions):
            yield from self._compute_partition(split, None)

    def memory_bytes(self) -> int:
        """Rough payload size, for the memory-overhead benchmark."""
        from repro.engine.cache import estimate_size

        return sum(estimate_size(cols) for cols in self._partitions)

    def __repr__(self) -> str:
        return (
            f"ColumnarRelation({self.num_rows()} rows, "
            f"{self.num_partitions} partitions, {len(self.schema)} columns)"
        )
