"""The Column wrapper: operator-overloaded expression builder.

``df.col("age") > 21`` builds an expression tree without evaluating
anything; DataFrame operations consume the wrapped expression. Mirrors
``pyspark.sql.Column``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.sql.expressions import (
    Add,
    Alias,
    And,
    CaseWhen,
    Cast,
    Divide,
    EqualTo,
    Expression,
    GreaterThan,
    GreaterThanOrEqual,
    In,
    IsNotNull,
    IsNull,
    LessThan,
    LessThanOrEqual,
    Like,
    Literal,
    Modulo,
    Multiply,
    Not,
    NotEqualTo,
    Or,
    SortOrder,
    Subtract,
    UnaryMinus,
    UnresolvedAttribute,
)
from repro.sql.types import DataType, type_for_name


class Column:
    """A named or computed column expression."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expression):
        self.expr = expr

    # -- construction helpers -------------------------------------------

    @staticmethod
    def _to_expr(other: Any) -> Expression:
        if isinstance(other, Column):
            return other.expr
        if isinstance(other, str):
            # Bare strings name columns in comparison positions only when
            # explicitly wrapped by col(); as operands they are literals.
            return Literal(other)
        return Literal(other)

    @staticmethod
    def _name(name: str) -> "Column":
        if "." in name:
            qualifier, _, base = name.partition(".")
            return Column(UnresolvedAttribute(base, qualifier))
        return Column(UnresolvedAttribute(name))

    def _binary(self, other: Any, node: type) -> "Column":
        return Column(node(self.expr, self._to_expr(other)))

    def _rbinary(self, other: Any, node: type) -> "Column":
        return Column(node(self._to_expr(other), self.expr))

    # -- comparisons ------------------------------------------------------

    def __eq__(self, other: Any) -> "Column":  # type: ignore[override]
        return self._binary(other, EqualTo)

    def __ne__(self, other: Any) -> "Column":  # type: ignore[override]
        return self._binary(other, NotEqualTo)

    def __lt__(self, other: Any) -> "Column":
        return self._binary(other, LessThan)

    def __le__(self, other: Any) -> "Column":
        return self._binary(other, LessThanOrEqual)

    def __gt__(self, other: Any) -> "Column":
        return self._binary(other, GreaterThan)

    def __ge__(self, other: Any) -> "Column":
        return self._binary(other, GreaterThanOrEqual)

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: Any) -> "Column":
        return self._binary(other, Add)

    def __radd__(self, other: Any) -> "Column":
        return self._rbinary(other, Add)

    def __sub__(self, other: Any) -> "Column":
        return self._binary(other, Subtract)

    def __rsub__(self, other: Any) -> "Column":
        return self._rbinary(other, Subtract)

    def __mul__(self, other: Any) -> "Column":
        return self._binary(other, Multiply)

    def __rmul__(self, other: Any) -> "Column":
        return self._rbinary(other, Multiply)

    def __truediv__(self, other: Any) -> "Column":
        return self._binary(other, Divide)

    def __rtruediv__(self, other: Any) -> "Column":
        return self._rbinary(other, Divide)

    def __mod__(self, other: Any) -> "Column":
        return self._binary(other, Modulo)

    def __neg__(self) -> "Column":
        return Column(UnaryMinus(self.expr))

    # -- boolean ----------------------------------------------------------

    def __and__(self, other: Any) -> "Column":
        return self._binary(other, And)

    def __or__(self, other: Any) -> "Column":
        return self._binary(other, Or)

    def __invert__(self) -> "Column":
        return Column(Not(self.expr))

    # -- predicates --------------------------------------------------------

    def is_null(self) -> "Column":
        return Column(IsNull(self.expr))

    def is_not_null(self) -> "Column":
        return Column(IsNotNull(self.expr))

    def isin(self, *values: Any) -> "Column":
        if len(values) == 1 and isinstance(values[0], (list, tuple, set)):
            values = tuple(values[0])
        return Column(In(self.expr, [self._to_expr(v) for v in values]))

    def like(self, pattern: str) -> "Column":
        return Column(Like(self.expr, Literal(pattern)))

    def between(self, low: Any, high: Any) -> "Column":
        return (self >= low) & (self <= high)

    # -- naming / casting ---------------------------------------------------

    def alias(self, name: str) -> "Column":
        return Column(Alias(self.expr, name))

    def cast(self, dtype: DataType | str) -> "Column":
        if isinstance(dtype, str):
            dtype = type_for_name(dtype)
        return Column(Cast(self.expr, dtype))

    # -- ordering ------------------------------------------------------------

    def asc(self) -> "Column":
        return Column(SortOrder(self.expr, ascending=True))

    def desc(self) -> "Column":
        return Column(SortOrder(self.expr, ascending=False))

    # -- case/when -------------------------------------------------------------

    @classmethod
    def _case_when(cls, condition: "Column", value: Any) -> "Column":
        return Column(CaseWhen([(condition.expr, cls._to_expr(value))]))

    def when(self, condition: "Column", value: Any) -> "Column":
        if not isinstance(self.expr, CaseWhen) or self.expr.else_value is not None:
            raise ValueError("when() must follow when() without otherwise()")
        branches = [*self.expr.branches, (condition.expr, self._to_expr(value))]
        return Column(CaseWhen(branches))

    def otherwise(self, value: Any) -> "Column":
        if not isinstance(self.expr, CaseWhen) or self.expr.else_value is not None:
            raise ValueError("otherwise() must follow when()")
        return Column(CaseWhen(self.expr.branches, self._to_expr(value)))

    def __bool__(self) -> bool:
        raise TypeError(
            "Columns build expression trees; use & | ~ instead of and/or/not"
        )

    def __repr__(self) -> str:
        return f"Column({self.expr!r})"
