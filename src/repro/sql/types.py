"""SQL type system: data types, schemas, and rows.

Types carry just enough metadata for three consumers:

* the analyzer (type checking, implicit numeric widening);
* the binary row codec of the indexed core (fixed width + struct code);
* the columnar cache (value validation on load).

Internally the engine passes plain Python tuples between operators for
speed; :class:`Row` is the user-facing wrapper produced by
``DataFrame.collect`` with attribute and name access.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.errors import SchemaError


class DataType:
    """Base class of all SQL data types."""

    #: struct format character for the binary codec (None = var-length).
    struct_code: str | None = None
    #: fixed encoded width in bytes (None = var-length).
    fixed_width: int | None = None
    #: accepted Python types for values of this type.
    python_types: tuple[type, ...] = ()
    #: True for types usable in arithmetic.
    numeric: bool = False

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Type", "").lower()

    def valid(self, value: Any) -> bool:
        if value is None:
            return True
        if isinstance(value, bool) and bool not in self.python_types:
            return False
        return isinstance(value, self.python_types)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self).__name__)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BooleanType(DataType):
    struct_code = "?"
    fixed_width = 1
    python_types = (bool,)


class IntegerType(DataType):
    """32-bit signed integer."""

    struct_code = "i"
    fixed_width = 4
    python_types = (int,)
    numeric = True
    MIN, MAX = -(2**31), 2**31 - 1

    def valid(self, value: Any) -> bool:
        return super().valid(value) and (value is None or self.MIN <= value <= self.MAX)


class LongType(DataType):
    """64-bit signed integer."""

    struct_code = "q"
    fixed_width = 8
    python_types = (int,)
    numeric = True
    MIN, MAX = -(2**63), 2**63 - 1

    def valid(self, value: Any) -> bool:
        return super().valid(value) and (value is None or self.MIN <= value <= self.MAX)


class DoubleType(DataType):
    struct_code = "d"
    fixed_width = 8
    python_types = (float, int)
    numeric = True


class StringType(DataType):
    python_types = (str,)


class BinaryType(DataType):
    python_types = (bytes,)


class TimestampType(DataType):
    """Milliseconds since the Unix epoch, stored as a 64-bit integer."""

    struct_code = "q"
    fixed_width = 8
    python_types = (int,)
    numeric = True


class DateType(DataType):
    """Days since the Unix epoch, stored as a 32-bit integer."""

    struct_code = "i"
    fixed_width = 4
    python_types = (int,)
    numeric = True


_ATOMIC_TYPES: dict[str, DataType] = {
    t().name: t()
    for t in (
        BooleanType,
        IntegerType,
        LongType,
        DoubleType,
        StringType,
        BinaryType,
        TimestampType,
        DateType,
    )
}
_ATOMIC_TYPES["int"] = IntegerType()
_ATOMIC_TYPES["bigint"] = LongType()
_ATOMIC_TYPES["float"] = DoubleType()
_ATOMIC_TYPES["bool"] = BooleanType()


def type_for_name(name: str) -> DataType:
    """Resolve a type from its SQL-ish name (``long``, ``string``, ...)."""
    try:
        return _ATOMIC_TYPES[name.lower()]
    except KeyError:
        raise SchemaError(f"unknown data type: {name!r}") from None


def infer_type(value: Any) -> DataType:
    """Infer the type of a single Python value."""
    if isinstance(value, bool):
        return BooleanType()
    if isinstance(value, int):
        return LongType()
    if isinstance(value, float):
        return DoubleType()
    if isinstance(value, str):
        return StringType()
    if isinstance(value, bytes):
        return BinaryType()
    raise SchemaError(f"cannot infer SQL type for {value!r} ({type(value).__name__})")


def common_type(a: DataType, b: DataType) -> DataType:
    """Widest common type for implicit coercion (numeric widening)."""
    if a == b:
        return a
    order = [BooleanType(), IntegerType(), LongType(), DoubleType()]
    if a in order and b in order:
        return order[max(order.index(a), order.index(b))]
    if isinstance(a, (TimestampType, DateType)) and b.numeric:
        return LongType()
    if isinstance(b, (TimestampType, DateType)) and a.numeric:
        return LongType()
    raise SchemaError(f"no common type for {a!r} and {b!r}")


class StructField:
    """A named, typed, nullable field of a schema."""

    __slots__ = ("name", "dtype", "nullable")

    def __init__(self, name: str, dtype: DataType, nullable: bool = True):
        self.name = name
        self.dtype = dtype
        self.nullable = nullable

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StructField)
            and self.name == other.name
            and self.dtype == other.dtype
            and self.nullable == other.nullable
        )

    def __hash__(self) -> int:
        return hash((self.name, self.dtype, self.nullable))

    def __repr__(self) -> str:
        null = "" if self.nullable else ", nullable=False"
        return f"StructField({self.name!r}, {self.dtype!r}{null})"


class StructType:
    """An ordered collection of fields; the schema of a relation."""

    def __init__(self, fields: Sequence[StructField]):
        self.fields = list(fields)
        names = [f.name for f in self.fields]
        # Duplicate names are legal in *derived* schemas (e.g. a self
        # join selecting both sides' `name`), exactly as in Spark; the
        # duplicated name just cannot be looked up by name any more.
        self._index: dict[str, int] = {}
        self._ambiguous: set[str] = set()
        for i, name in enumerate(names):
            if name in self._index:
                self._ambiguous.add(name)
            else:
                self._index[name] = i

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[str, DataType | str]]) -> "StructType":
        """Build a schema from ``[("name", LongType()), ("x", "string")]``."""
        fields = []
        for name, dtype in pairs:
            if isinstance(dtype, str):
                dtype = type_for_name(dtype)
            fields.append(StructField(name, dtype))
        return cls(fields)

    @property
    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    def field_index(self, name: str) -> int:
        if name in self._ambiguous:
            raise SchemaError(f"field name {name!r} is ambiguous in {self.names}")
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"no field {name!r} in schema {self.names}"
            ) from None

    def __getitem__(self, key: str | int) -> StructField:
        if isinstance(key, int):
            return self.fields[key]
        return self.fields[self.field_index(key)]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[StructField]:
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and self.fields == other.fields

    def validate_row(self, row: Sequence[Any]) -> None:
        """Raise :class:`SchemaError` if the tuple violates the schema."""
        if len(row) != len(self.fields):
            raise SchemaError(
                f"row has {len(row)} values, schema has {len(self.fields)} fields"
            )
        for value, field in zip(row, self.fields):
            if value is None:
                if not field.nullable:
                    raise SchemaError(f"null in non-nullable field {field.name!r}")
            elif not field.dtype.valid(value):
                raise SchemaError(
                    f"value {value!r} invalid for field {field.name!r} "
                    f"of type {field.dtype.name}"
                )

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}: {f.dtype.name}" for f in self.fields)
        return f"StructType({inner})"


class Row:
    """A collected result row with name, index, and attribute access."""

    __slots__ = ("_values", "_schema")

    def __init__(self, values: Sequence[Any], schema: StructType):
        self._values = tuple(values)
        self._schema = schema

    def __getitem__(self, key: str | int) -> Any:
        if isinstance(key, int):
            return self._values[key]
        return self._values[self._schema.field_index(key)]

    def __getattr__(self, name: str) -> Any:
        try:
            return self._values[self._schema.field_index(name)]
        except SchemaError:
            raise AttributeError(name) from None

    def as_dict(self) -> dict[str, Any]:
        return dict(zip(self._schema.names, self._values))

    def as_tuple(self) -> tuple[Any, ...]:
        return self._values

    @property
    def schema(self) -> StructType:
        return self._schema

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v!r}" for n, v in zip(self._schema.names, self._values))
        return f"Row({inner})"
