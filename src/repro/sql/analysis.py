"""The analyzer: name resolution and semantic checks.

Runs resolution rules to a fixed point over the logical plan, exactly
like Catalyst's analysis layer (paper Figure 1, "Analysis Layer"):

* expand ``*`` / ``alias.*`` in select lists;
* resolve column names (optionally qualified) to :class:`Attribute`
  references from child outputs;
* resolve function calls by name into scalar or aggregate expressions;
* give every select-list expression a name;
* rewrite HAVING predicates that contain aggregates;
* re-attach ORDER BY columns that a SELECT pruned away;
* finally, type-check filters/joins and verify aggregate semantics.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AnalysisError
from repro.sql.expressions import (
    AggregateExpression,
    Alias,
    Attribute,
    Expression,
    SortOrder,
    UnresolvedAttribute,
    UnresolvedFunction,
    UnresolvedStar,
    make_scalar_function,
    strip_alias,
)
from repro.sql.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Sort,
    SubqueryAlias,
    Union,
    expression_name,
)
from repro.sql.types import BooleanType

_MAX_PASSES = 25


def resolve_name(
    name: str, qualifier: str | None, attrs: Sequence[Attribute]
) -> Attribute | None:
    """Match a (possibly qualified) name against candidate attributes."""
    matches = [
        a
        for a in attrs
        if a.name == name and (qualifier is None or a.qualifier == qualifier)
    ]
    if len(matches) > 1:
        # Identical attribute reached via multiple paths is not ambiguous.
        ids = {a.expr_id for a in matches}
        if len(ids) > 1:
            raise AnalysisError(
                f"ambiguous column {qualifier + '.' if qualifier else ''}{name}: "
                f"candidates {matches}"
            )
    return matches[0] if matches else None


class Analyzer:
    """Resolves a raw logical plan produced by the parser or the
    DataFrame API."""

    def analyze(self, plan: LogicalPlan) -> LogicalPlan:
        for _ in range(_MAX_PASSES):
            before = plan
            plan = plan.transform_up(self._resolve_node)
            if plan.resolved and plan is before:
                break
        if not plan.resolved:
            unresolved = self._find_unresolved(plan)
            raise AnalysisError(f"could not resolve: {unresolved}\nplan:\n{plan.pretty()}")
        self._check(plan)
        return plan

    # ------------------------------------------------------------------

    def _resolve_node(self, plan: LogicalPlan) -> LogicalPlan:
        plan = self._expand_stars(plan)
        plan = self._resolve_references(plan)
        plan = self._resolve_functions(plan)
        plan = self._name_select_list(plan)
        plan = self._global_aggregates(plan)
        plan = self._rewrite_having(plan)
        plan = self._recover_sort_columns(plan)
        return plan

    def _child_attributes(self, plan: LogicalPlan) -> list[Attribute]:
        attrs: list[Attribute] = []
        for child in plan.children:
            try:
                attrs.extend(child.output())
            except AnalysisError:
                return []
        return attrs

    def _expand_stars(self, plan: LogicalPlan) -> LogicalPlan:
        if not isinstance(plan, (Project, Aggregate)):
            return plan
        exprs = plan.project_list if isinstance(plan, Project) else plan.aggregate_list
        if not any(isinstance(e, UnresolvedStar) for e in exprs):
            return plan
        child_attrs = self._child_attributes(plan)
        if not child_attrs:
            return plan
        expanded: list[Expression] = []
        for expr in exprs:
            if isinstance(expr, UnresolvedStar):
                if expr.qualifier is None:
                    expanded.extend(child_attrs)
                else:
                    matching = [a for a in child_attrs if a.qualifier == expr.qualifier]
                    if not matching:
                        raise AnalysisError(f"unknown qualifier {expr.qualifier!r} in *")
                    expanded.extend(matching)
            else:
                expanded.append(expr)
        if isinstance(plan, Project):
            return Project(expanded, plan.child)
        return Aggregate(plan.grouping, expanded, plan.child)

    def _resolve_references(self, plan: LogicalPlan) -> LogicalPlan:
        attrs = self._child_attributes(plan)
        if not attrs:
            return plan

        def resolve(expr: Expression) -> Expression:
            if isinstance(expr, UnresolvedAttribute):
                found = resolve_name(expr.name, expr.qualifier, attrs)
                return found if found is not None else expr
            return expr

        return plan.map_expressions(lambda e: e.transform_up(resolve))

    def _resolve_functions(self, plan: LogicalPlan) -> LogicalPlan:
        def resolve(expr: Expression) -> Expression:
            if not isinstance(expr, UnresolvedFunction):
                return expr
            if any(not c.resolved for c in expr.children):
                return expr
            name = expr.name.lower()
            if name in AggregateExpression.FUNCTIONS or (
                name == "count" and expr.distinct
            ):
                if name == "count" and expr.distinct:
                    name = "count_distinct"
                child = expr.children[0] if expr.children else None
                return AggregateExpression(name, child, expr.distinct)
            return make_scalar_function(name, list(expr.children))

        return plan.map_expressions(lambda e: e.transform_up(resolve))

    def _name_select_list(self, plan: LogicalPlan) -> LogicalPlan:
        if isinstance(plan, Project):
            exprs, changed = self._named(plan.project_list)
            return Project(exprs, plan.child) if changed else plan
        if isinstance(plan, Aggregate):
            exprs, changed = self._named(plan.aggregate_list)
            return Aggregate(plan.grouping, exprs, plan.child) if changed else plan
        return plan

    @staticmethod
    def _named(exprs: Sequence[Expression]) -> tuple[list[Expression], bool]:
        out: list[Expression] = []
        changed = False
        for expr in exprs:
            if isinstance(expr, (Attribute, Alias)) or not expr.resolved:
                out.append(expr)
            else:
                out.append(Alias(expr, expression_name(expr)))
                changed = True
        return out, changed

    def _global_aggregates(self, plan: LogicalPlan) -> LogicalPlan:
        """``SELECT count(*) FROM t`` (no GROUP BY) → global Aggregate."""
        if not isinstance(plan, Project):
            return plan
        has_agg = any(
            True
            for e in plan.project_list
            for _ in e.collect(lambda x: isinstance(x, AggregateExpression))
        )
        if not has_agg:
            return plan
        return Aggregate([], plan.project_list, plan.child)

    def _rewrite_having(self, plan: LogicalPlan) -> LogicalPlan:
        """``HAVING sum(x) > 5`` → extend the aggregate list with the
        aggregate, filter on it, and project the original columns."""
        if not (isinstance(plan, Filter) and isinstance(plan.child, Aggregate)):
            return plan
        aggs_in_condition = list(
            plan.condition.collect(lambda e: isinstance(e, AggregateExpression))
        )
        if not aggs_in_condition:
            return plan
        agg = plan.child
        if not (agg.resolved and plan.condition.resolved):
            return plan
        extra: list[Alias] = []

        def hoist(expr: Expression) -> Expression:
            if isinstance(expr, AggregateExpression):
                alias = Alias(expr, f"_having_{len(extra)}")
                extra.append(alias)
                return alias.to_attribute()
            return expr

        condition = plan.condition.transform_up(hoist)
        widened = Aggregate(agg.grouping, [*agg.aggregate_list, *extra], agg.child)
        original = [a for a in agg.output()]
        return Project(original, Filter(condition, widened))

    def _recover_sort_columns(self, plan: LogicalPlan) -> LogicalPlan:
        """ORDER BY referencing columns the SELECT dropped: widen the
        project, sort, then re-project (Spark's ResolveMissingReferences)."""
        if not (isinstance(plan, Sort) and isinstance(plan.child, Project)):
            return plan
        project = plan.child
        if not project.resolved:
            return plan
        available = {a.expr_id for a in project.output()}
        below = project.child.output()

        missing: list[Attribute] = []
        unresolved_fixable = True

        def fix(expr: Expression) -> Expression:
            nonlocal unresolved_fixable
            if isinstance(expr, UnresolvedAttribute):
                found = resolve_name(expr.name, expr.qualifier, below)
                if found is not None:
                    if found.expr_id not in available:
                        missing.append(found)
                    return found
                unresolved_fixable = False
            elif isinstance(expr, Attribute) and expr.expr_id not in available:
                if any(a.expr_id == expr.expr_id for a in below):
                    missing.append(expr)
                else:
                    unresolved_fixable = False
            return expr

        orders = [
            SortOrder(o.child.transform_up(fix), o.ascending, o.nulls_first)
            for o in plan.orders
        ]
        if not missing or not unresolved_fixable:
            if any(not o.resolved for o in plan.orders) and unresolved_fixable:
                return Sort(orders, project)
            return plan
        unique_missing: list[Attribute] = []
        seen = set(available)
        for attr in missing:
            if attr.expr_id not in seen:
                unique_missing.append(attr)
                seen.add(attr.expr_id)
        widened = Project([*project.project_list, *unique_missing], project.child)
        return Project(project.output(), Sort(orders, widened))

    # ------------------------------------------------------------------

    def _find_unresolved(self, plan: LogicalPlan) -> list[str]:
        out = []
        for node in plan.collect_plans(lambda _p: True):
            for expr in node.expressions():
                for sub in expr.collect(lambda e: not e.resolved and not e.children):
                    out.append(repr(sub))
        return out or ["<unknown>"]

    def _check(self, plan: LogicalPlan) -> None:
        for node in plan.collect_plans(lambda _p: True):
            if isinstance(node, Filter):
                if node.condition.data_type() != BooleanType():
                    raise AnalysisError(
                        f"filter condition is not boolean: {node.condition!r}"
                    )
                self._no_aggregates(node.condition, "a WHERE clause")
            elif isinstance(node, Join) and node.condition is not None:
                if node.condition.data_type() != BooleanType():
                    raise AnalysisError(
                        f"join condition is not boolean: {node.condition!r}"
                    )
            elif isinstance(node, Aggregate):
                self._check_aggregate(node)
            elif isinstance(node, Project):
                for expr in node.project_list:
                    self._no_aggregates(expr, "a SELECT without GROUP BY")
            elif isinstance(node, Union):
                lhs, rhs = node.left.output(), node.right.output()
                if len(lhs) != len(rhs):
                    raise AnalysisError(
                        f"UNION arity mismatch: {len(lhs)} vs {len(rhs)} columns"
                    )
                for a, b in zip(lhs, rhs):
                    if a.dtype != b.dtype:
                        raise AnalysisError(
                            f"UNION type mismatch on {a.name}: {a.dtype!r} vs {b.dtype!r}"
                        )

    @staticmethod
    def _no_aggregates(expr: Expression, where: str) -> None:
        if any(True for _ in expr.collect(lambda e: isinstance(e, AggregateExpression))):
            raise AnalysisError(f"aggregate function not allowed in {where}: {expr!r}")

    @staticmethod
    def _check_aggregate(node: Aggregate) -> None:
        grouping = [strip_alias(g) for g in node.grouping]
        grouping_ids = {
            g.expr_id for g in grouping if isinstance(g, Attribute)
        }
        for expr in node.aggregate_list:
            inner = strip_alias(expr)
            if isinstance(inner, AggregateExpression):
                continue
            # Non-aggregate output is legal if it *is* a grouping
            # expression, or is built purely from grouping columns.
            if any(inner.semantic_equals(g) for g in grouping):
                continue
            for ref in inner.references:
                if ref.expr_id not in grouping_ids:
                    raise AnalysisError(
                        f"column {ref!r} must appear in GROUP BY or inside an "
                        f"aggregate function"
                    )
