"""Plan cache: memoized logical optimization with parameter slots.

Low-latency serving repeats the same query shapes with different
constants (``WHERE id = ?``), and logical optimization — a dozen rules
run to fixed point over the whole tree — is pure overhead the second
time around. This cache memoizes the *standard-batch* optimized plan
keyed by a fingerprint of the analyzed plan, with comparison literals
masked out as parameter slots so ``id = 5`` and ``id = 7`` share one
template.

Scope is deliberately the standard batches only: the extensions batch
(the index-aware rewrites) bakes literal values and MVCC versions into
physical-ish nodes, so it always runs fresh on the (substituted) copy.
All optimizer rules are functional — a rule that changes nothing
returns the same object, and rewrites build new trees — so a cached
template is never mutated by reuse.

Soundness of slot masking:

* Only a :class:`~repro.sql.expressions.Literal` that is the *direct
  child* of a :class:`~repro.sql.expressions.BinaryComparison` with
  exactly one literal side is a slot. No standard rule's decision
  depends on the *value* of such a literal, only on its presence —
  unless the other side folds to a literal too, in which case
  ``constant_folding`` consumes it.
* Every other literal (IN lists, arithmetic operands, booleans under
  And/Or, fold results) is baked into the fingerprint by value, so
  value-sensitive rules (``boolean_simplification``,
  ``simplify_in_lists``, ``prune_filters``, ...) key the cache.
* At insert time each slot literal is checked for *identity survival*
  into the optimized template. Survivors become substitutable slots
  (reuse rewrites the template with the new literal); casualties —
  a comparison that folded away — demote to exact-match slots, which
  hit only when the incoming value equals the cached one.

Relation leaves key by object identity (the cached template keeps them
alive, so ids cannot be recycled while the entry lives), and MVCC
versions key by ``version_id`` — an append moves the version and
naturally misses, so a stale index-era template is never replayed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.sql.expressions import (
    Attribute,
    BinaryComparison,
    Expression,
    Literal,
)
from repro.sql.logical import LogicalPlan
from repro.sql.relation import BaseRelation


class _FingerprintState:
    """Accumulator threaded through one fingerprint walk."""

    __slots__ = ("slots", "pins", "_expr_ids")

    def __init__(self) -> None:
        self.slots: list[Literal] = []  # eligible literals, walk order
        self.pins: list[Any] = []  # identity-keyed leaves (keep alive)
        self._expr_ids: dict[int, int] = {}  # expr_id -> first-seen index

    def norm_expr_id(self, expr_id: int) -> int:
        """Attribute ids are minted per query; normalize to occurrence
        order so two instantiations of one shape fingerprint equal."""
        return self._expr_ids.setdefault(expr_id, len(self._expr_ids))


def _scalar_token(value: Any) -> Any:
    """A hashable, deterministic token for a non-tree attribute."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, (tuple, list)):
        return ("seq", tuple(_scalar_token(v) for v in value))
    if isinstance(value, dict):
        return (
            "map",
            tuple(sorted((str(k), _scalar_token(v)) for k, v in value.items())),
        )
    # DataTypes, StructTypes, etc. define value-based reprs; anything
    # with a default (address-bearing) repr would just always miss.
    return ("repr", type(value).__name__, repr(value))


def _node_attrs(node: Any) -> list[tuple[str, Any]]:
    attrs = getattr(node, "__dict__", None)
    if attrs is not None:
        return sorted(attrs.items())
    return sorted(
        (name, getattr(node, name))
        for name in getattr(type(node), "__slots__", ())
        if hasattr(node, name)
    )


def _walk_value(value: Any, state: _FingerprintState) -> Any:
    if isinstance(value, Expression):
        return _walk_expr(value, state, slot_ok=False)
    if isinstance(value, LogicalPlan):
        return _walk_plan(value, state)
    if isinstance(value, (tuple, list)):
        return ("seq", tuple(_walk_value(v, state) for v in value))
    if isinstance(value, BaseRelation):
        state.pins.append(value)
        return ("rel", id(value))
    version_id = getattr(value, "version_id", None)
    if version_id is not None and type(value).__name__ == "Version":
        return ("ver", version_id)
    if type(value).__module__ == "repro.sql.types":
        return _scalar_token(value)  # DataTypes compare (and repr) by value
    if type(value).__module__.startswith("repro."):
        # Opaque engine object (e.g. an IndexedDataFrame): identity key,
        # pinned so the id stays unambiguous for the entry's lifetime.
        state.pins.append(value)
        return ("obj", type(value).__name__, id(value))
    return _scalar_token(value)


def _walk_expr(expr: Expression, state: _FingerprintState, slot_ok: bool) -> Any:
    if isinstance(expr, Literal):
        if slot_ok:
            state.slots.append(expr)
            return ("?", len(state.slots) - 1, _scalar_token(expr.dtype))
        return ("lit", _scalar_token(expr.value), _scalar_token(expr.dtype))
    if isinstance(expr, Attribute):
        return (
            "attr",
            state.norm_expr_id(expr.expr_id),
            expr.name,
            _scalar_token(expr.dtype),
            expr.nullable,
        )
    children = expr.children
    if isinstance(expr, BinaryComparison) and len(children) == 2:
        # Exactly one literal side -> that literal is a parameter slot.
        literal_sides = sum(isinstance(c, Literal) for c in children)
        child_ok = literal_sides == 1
    else:
        child_ok = False
    walked_children = tuple(
        _walk_expr(c, state, slot_ok=child_ok and isinstance(c, Literal))
        for c in children
    )
    extras = tuple(
        # Expression ids (Alias and friends) are minted per query, like
        # Attribute ids — normalize them the same way.
        (name, state.norm_expr_id(value))
        if name == "expr_id" and isinstance(value, int)
        else (name, _walk_value(value, state))
        for name, value in _node_attrs(expr)
        if name != "children"
        and not isinstance(value, Expression)
        and not (
            isinstance(value, (tuple, list))
            and any(isinstance(v, Expression) for v in value)
        )
    )
    return ("e", type(expr).__name__, walked_children, extras)


def _walk_plan(plan: LogicalPlan, state: _FingerprintState) -> Any:
    walked_children = tuple(_walk_plan(c, state) for c in plan.children)
    extras = tuple(
        (name, _walk_value(value, state))
        for name, value in _node_attrs(plan)
        if not isinstance(value, LogicalPlan)
        and not (
            isinstance(value, (tuple, list))
            and any(isinstance(v, LogicalPlan) for v in value)
        )
    )
    return ("p", type(plan).__name__, walked_children, extras)


def fingerprint(plan: LogicalPlan) -> tuple[Any, list[Literal], list[Any]]:
    """Returns ``(key, slot_literals, pinned_objects)`` for a plan."""
    state = _FingerprintState()
    key = _walk_plan(plan, state)
    return key, state.slots, state.pins


def _substitute_by_identity(
    plan: LogicalPlan, mapping: dict[int, Literal]
) -> LogicalPlan:
    """Functional rewrite replacing template literals (by id) with the
    incoming query's literals; the template itself is untouched."""

    def sub(expr: Expression) -> Expression:
        replacement = mapping.get(id(expr))
        return expr if replacement is None else replacement

    return plan.transform_expressions(sub)


class _Entry:
    __slots__ = ("template", "specs", "pins")

    def __init__(self, template: LogicalPlan, specs: list[tuple], pins: list[Any]):
        self.template = template
        #: Per slot, aligned with the fingerprint's slot walk order:
        #: ``("sub", template_literal)`` for identity-surviving slots,
        #: ``("exact", value, dtype)`` for folded-away ones.
        self.specs = specs
        self.pins = pins


class PlanCache:
    """LRU cache of standard-optimized plan templates.

    Thread-safe: served queries optimize concurrently. Lookup and
    insert are O(plan size); the stored template is shared and only
    ever read (substitution builds a fresh tree).
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Any, _Entry]" = OrderedDict()  # guarded-by: _lock
        #: Fully-optimized plans (extensions batch included), keyed by
        #: (template key, exact slot values). Extension rewrites bake
        #: literal keys and MVCC versions into the tree, so these
        #: entries are only reusable verbatim — and because Version
        #: leaves fingerprint as ("ver", version_id), an append moves
        #: the version and every full entry for the old version (its
        #: bitmap-vs-cTrie era included) naturally misses.
        self._full: "OrderedDict[Any, _Entry]" = OrderedDict()  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def full_len(self) -> int:
        with self._lock:
            return len(self._full)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._full.clear()

    @staticmethod
    def _full_key(key: Any, slots: list[Literal]) -> Any:
        return (
            key,
            tuple(
                (_scalar_token(s.value), _scalar_token(s.dtype)) for s in slots
            ),
        )

    def lookup_full(self, key: Any, slots: list[Literal]) -> LogicalPlan | None:
        """A fully-optimized plan for this exact (shape, values) pair.

        No substitution happens here: a full entry already went through
        the extensions batch, which bakes slot values in (an IN-list of
        cTrie keys, a costed bitmap choice), so only an exact value
        match may reuse it.
        """
        full_key = self._full_key(key, slots)
        with self._lock:
            entry = self._full.get(full_key)
            if entry is None:
                return None
            self._full.move_to_end(full_key)
            return entry.template

    def insert_full(
        self,
        key: Any,
        slots: list[Literal],
        pins: list[Any],
        plan: LogicalPlan,
    ) -> None:
        if self.capacity <= 0:
            return
        entry = _Entry(plan, [], pins)
        full_key = self._full_key(key, slots)
        with self._lock:
            self._full[full_key] = entry
            self._full.move_to_end(full_key)
            while len(self._full) > self.capacity:
                self._full.popitem(last=False)

    def lookup(self, key: Any, slots: list[Literal]) -> LogicalPlan | None:
        """A reusable optimized plan for this fingerprint, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
        mapping: dict[int, Literal] = {}
        for literal, spec in zip(slots, entry.specs):
            if spec[0] == "exact":
                _, value, dtype = spec
                if literal.value != value or literal.dtype != dtype:
                    return None  # value-sensitive slot changed: miss
            else:
                template_literal = spec[1]
                if template_literal.value != literal.value:
                    mapping[id(template_literal)] = literal
        if not mapping:
            return entry.template
        return _substitute_by_identity(entry.template, mapping)

    def insert(
        self,
        key: Any,
        slots: list[Literal],
        pins: list[Any],
        template: LogicalPlan,
    ) -> None:
        if self.capacity <= 0:
            return
        survivors = {id(node) for node in _collect_literals(template)}
        counts: dict[int, int] = {}
        for literal in slots:
            counts[id(literal)] = counts.get(id(literal), 0) + 1
        specs: list[tuple] = []
        for literal in slots:
            # A literal object shared between two slots cannot be
            # substituted per-slot; demote every occurrence to exact.
            if counts[id(literal)] == 1 and id(literal) in survivors:
                specs.append(("sub", literal))
            else:
                specs.append(("exact", literal.value, literal.dtype))
        entry = _Entry(template, specs, pins)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)


def _collect_literals(plan: LogicalPlan):
    stack: list[Any] = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, LogicalPlan):
            stack.extend(node.children)
            stack.extend(node.expressions())
        elif isinstance(node, Expression):
            if isinstance(node, Literal):
                yield node
            stack.extend(node.children)


__all__ = ["PlanCache", "fingerprint"]
