"""Physical planning: strategies mapping logical to physical plans.

A *strategy* is a callable ``(logical_plan, planner) -> PhysicalPlan |
None``. The planner tries strategies in order, extension strategies
first — the exact mechanism (modelled on Spark's ``extraStrategies``)
the Indexed DataFrame uses to inject its operators without touching
this module (paper §2: *"without modifying the Spark source code"*).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import FAIL_STOP, PlanningError
from repro.sql.expressions import (
    Attribute,
    EqualTo,
    Expression,
    combine_conjuncts,
    split_conjuncts,
)
from repro.sql.logical import (
    Aggregate,
    ScannableLeaf,
    Distinct,
    Filter,
    Join,
    Limit,
    LocalRelation,
    LogicalPlan,
    Project,
    Relation,
    Sort,
    SubqueryAlias,
    Union,
)
from repro.sql.physical import (
    AdaptiveJoinExec,
    BroadcastHashJoinExec,
    CartesianProductExec,
    DistinctExec,
    FilterExec,
    HashAggregateExec,
    LimitExec,
    LocalDataExec,
    PhysicalPlan,
    ProjectExec,
    ScanExec,
    ShuffledHashJoinExec,
    SortExec,
    TakeOrderedExec,
    UnionExec,
)

Strategy = Callable[[LogicalPlan, "Planner"], Optional[PhysicalPlan]]

#: Fallback selectivity guesses for row estimation.
_FILTER_SELECTIVITY = 0.25


def estimate_rows(plan: LogicalPlan) -> int | None:
    """Best-effort cardinality estimate used for broadcast decisions."""
    if isinstance(plan, Relation):
        return plan.relation.num_rows()
    if isinstance(plan, LocalRelation):
        return len(plan.rows)
    if isinstance(plan, Filter):
        below = estimate_rows(plan.child)
        return None if below is None else max(1, int(below * _FILTER_SELECTIVITY))
    if isinstance(plan, Limit):
        below = estimate_rows(plan.child)
        return plan.n if below is None else min(plan.n, below)
    if isinstance(plan, (Project, Sort, SubqueryAlias)):
        return estimate_rows(plan.children[0])
    if isinstance(plan, (Distinct, Aggregate)):
        below = estimate_rows(plan.children[0])
        return None if below is None else max(1, below // 2)
    if isinstance(plan, Union):
        left = estimate_rows(plan.left)
        right = estimate_rows(plan.right)
        if left is None or right is None:
            return None
        return left + right
    # Indexed relations and joins: let callers handle specially.
    for attr in ("estimated_rows",):
        method = getattr(plan, attr, None)
        if callable(method):
            return method()
    return None


def extract_equi_join_keys(
    join: Join,
) -> tuple[list[Expression], list[Expression], Expression | None] | None:
    """Split a join condition into equi-key pairs plus a residual.

    Returns ``(left_keys, right_keys, extra)`` or None when no equi
    pair exists.
    """
    if join.condition is None:
        return None
    left_ids = {a.expr_id for a in join.left.output()}
    right_ids = {a.expr_id for a in join.right.output()}
    left_keys: list[Expression] = []
    right_keys: list[Expression] = []
    residual: list[Expression] = []
    for conjunct in split_conjuncts(join.condition):
        if isinstance(conjunct, EqualTo):
            lrefs = {a.expr_id for a in conjunct.left.references}
            rrefs = {a.expr_id for a in conjunct.right.references}
            if lrefs and rrefs:
                if lrefs <= left_ids and rrefs <= right_ids:
                    left_keys.append(conjunct.left)
                    right_keys.append(conjunct.right)
                    continue
                if lrefs <= right_ids and rrefs <= left_ids:
                    left_keys.append(conjunct.right)
                    right_keys.append(conjunct.left)
                    continue
        residual.append(conjunct)
    if not left_keys:
        return None
    return left_keys, right_keys, combine_conjuncts(residual)


class Planner:
    """Turns optimized logical plans into physical plans.

    Extension strategies are *advisory*: one that raises is skipped
    (counted in :attr:`strategy_failures`) and planning degrades to the
    next strategy, ultimately the built-in :func:`basic_strategy` — a
    buggy injected strategy can cost the indexed fast path but never a
    query. Failures of the final strategy propagate: with nothing left
    to fall back to, swallowing them would only obscure the error.
    """

    def __init__(self, session: "object", extra_strategies: Sequence[Strategy] | None = None):
        self.session = session
        self.strategies: list[Strategy] = list(extra_strategies or [])
        self.strategies.append(basic_strategy)
        self.strategy_failures = 0
        self.last_strategy_error: BaseException | None = None

    @property
    def ctx(self):  # noqa: ANN201 - EngineContext, avoids circular import
        return self.session.ctx  # type: ignore[attr-defined]

    @property
    def config(self):  # noqa: ANN201
        return self.session.config  # type: ignore[attr-defined]

    def plan(self, logical: LogicalPlan) -> PhysicalPlan:
        last = len(self.strategies) - 1
        for position, strategy in enumerate(self.strategies):
            try:
                physical = strategy(logical, self)
            except FAIL_STOP:
                # Cancellation / sanitizer / recovery failures are
                # not a strategy miss; trying the next strategy
                # would mask them.
                raise
            except Exception as exc:
                if position == last:
                    raise
                self.strategy_failures += 1
                self.last_strategy_error = exc
                continue
            if physical is not None:
                return physical
        raise PlanningError(f"no strategy produced a plan for:\n{logical.pretty()}")


def _apply_pruning(child_exec: PhysicalPlan, condition: Expression) -> None:
    """Give a scan sitting under a filter the chance to zone-prune.

    Duck-typed (any exec exposing ``apply_pruning``) so the indexed scan
    in :mod:`repro.core.physical` participates without this module
    importing it — the same inversion the strategy mechanism uses.
    """
    apply = getattr(child_exec, "apply_pruning", None)
    if apply is not None:
        apply(condition)


def _plan_join(join: Join, planner: Planner) -> PhysicalPlan:
    left = planner.plan(join.left)
    right = planner.plan(join.right)

    keys = extract_equi_join_keys(join)
    if keys is None:
        if join.how in ("cross", "inner"):
            return CartesianProductExec(left, right, join.condition)
        raise PlanningError(
            f"{join.how} join without equi-keys is not supported: {join.condition!r}"
        )
    left_keys, right_keys, extra = keys

    threshold = planner.config.broadcast_threshold
    right_rows = estimate_rows(join.right)
    can_broadcast = (
        right_rows is not None
        and right_rows <= threshold
        and join.how in BroadcastHashJoinExec.SUPPORTED
    )
    if can_broadcast:
        return BroadcastHashJoinExec(
            left, right, left_keys, right_keys, join.how, extra
        )
    # The static estimate said "too big to broadcast" (or gave nothing);
    # with adaptive execution on, defer the call until the right side's
    # exact size is known at runtime (Spark AQE's join replanning).
    if (
        planner.config.adaptive_enabled
        and join.how in BroadcastHashJoinExec.SUPPORTED
    ):
        return AdaptiveJoinExec(left, right, left_keys, right_keys, join.how, extra)
    return ShuffledHashJoinExec(left, right, left_keys, right_keys, join.how, extra)


def basic_strategy(plan: LogicalPlan, planner: Planner) -> PhysicalPlan | None:
    """The default lowering for every logical node."""
    if isinstance(plan, Relation):
        return ScanExec(planner.ctx, plan.relation, plan.output())
    if isinstance(plan, LocalRelation):
        return LocalDataExec(planner.ctx, plan.rows, plan.output())
    if isinstance(plan, Project):
        # Attribute-only projection directly over a scan → pruned scan.
        if isinstance(plan.child, Relation) and all(
            isinstance(e, Attribute) for e in plan.project_list
        ):
            child_out = plan.child.output()
            positions = {a.expr_id: i for i, a in enumerate(child_out)}
            columns = [positions[e.expr_id] for e in plan.project_list]  # type: ignore[union-attr]
            return ScanExec(
                planner.ctx, plan.child.relation, plan.output(), columns
            )
        # Project over Filter → one fused compiled filter+project
        # kernel (whole-stage-codegen fusion). Only taken when codegen
        # is on so the interpreted A/B plans keep the two-operator
        # shape; indexed strategies run before this one and are
        # unaffected.
        if isinstance(plan.child, Filter) and planner.config.codegen_enabled:
            child_exec = planner.plan(plan.child.child)
            _apply_pruning(child_exec, plan.child.condition)
            return ProjectExec(
                plan.project_list,
                child_exec,
                fused_filter=plan.child.condition,
            )
        return ProjectExec(plan.project_list, planner.plan(plan.child))
    if isinstance(plan, Filter):
        child_exec = planner.plan(plan.child)
        _apply_pruning(child_exec, plan.condition)
        return FilterExec(plan.condition, child_exec)
    if isinstance(plan, Join):
        return _plan_join(plan, planner)
    if isinstance(plan, Aggregate):
        return HashAggregateExec(
            plan.grouping, plan.aggregate_list, planner.plan(plan.child)
        )
    if isinstance(plan, Sort):
        return SortExec(plan.orders, planner.plan(plan.child))
    if isinstance(plan, Limit):
        # LIMIT over ORDER BY fuses into a Top-K heap select.
        if isinstance(plan.child, Sort):
            sort = plan.child
            return TakeOrderedExec(plan.n, sort.orders, planner.plan(sort.child))
        return LimitExec(plan.n, planner.plan(plan.child))
    if isinstance(plan, Distinct):
        return DistinctExec(planner.plan(plan.child))
    if isinstance(plan, Union):
        return UnionExec(planner.plan(plan.left), planner.plan(plan.right))
    if isinstance(plan, SubqueryAlias):
        return planner.plan(plan.child)
    if isinstance(plan, ScannableLeaf):
        return plan.scan_exec(planner.ctx)
    return None
