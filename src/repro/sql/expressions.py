"""Expression trees: literals, attributes, predicates, arithmetic.

Lifecycle of an expression (same as Catalyst):

1. the parser / DataFrame API produces *unresolved* nodes
   (:class:`UnresolvedAttribute`, :class:`UnresolvedStar`);
2. the analyzer resolves them into :class:`Attribute` references with
   globally unique ``expr_id``\\ s (so self-joins stay unambiguous) and
   checks types;
3. the optimizer rewrites resolved trees (folding, simplification);
4. physical planning *binds* attributes to tuple ordinals
   (:class:`BoundReference`), after which :meth:`Expression.eval` is
   executable against raw row tuples.

SQL three-valued logic is respected throughout: comparisons involving
NULL yield NULL, AND/OR use Kleene semantics, and filters keep only
rows whose predicate is exactly True.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator, Sequence

from repro.errors import AnalysisError
from repro.sql.types import (
    BooleanType,
    DataType,
    DoubleType,
    LongType,
    StringType,
    common_type,
    infer_type,
)

_expr_ids = itertools.count(1)


def next_expr_id() -> int:
    return next(_expr_ids)


class Expression:
    """Base class for all expression nodes."""

    children: tuple["Expression", ...] = ()

    # -- resolution ----------------------------------------------------

    @property
    def resolved(self) -> bool:
        return all(c.resolved for c in self.children)

    @property
    def foldable(self) -> bool:
        """True if the expression can be evaluated at plan time."""
        return bool(self.children) and all(c.foldable for c in self.children)

    def data_type(self) -> DataType:
        raise AnalysisError(f"{type(self).__name__} has no data type before resolution")

    @property
    def nullable(self) -> bool:
        return True

    # -- evaluation ----------------------------------------------------

    def eval(self, row: tuple) -> Any:
        raise AnalysisError(f"{type(self).__name__} cannot be evaluated (unbound?)")

    # -- tree machinery --------------------------------------------------

    def with_new_children(self, children: Sequence["Expression"]) -> "Expression":
        if not children and not self.children:
            return self
        raise NotImplementedError(type(self).__name__)

    def transform_up(self, fn: Callable[["Expression"], "Expression"]) -> "Expression":
        """Bottom-up rewrite; ``fn`` may return the node unchanged."""
        if self.children:
            new_children = [c.transform_up(fn) for c in self.children]
            if any(n is not o for n, o in zip(new_children, self.children)):
                node = self.with_new_children(new_children)
            else:
                node = self
        else:
            node = self
        return fn(node)

    def collect(self, pred: Callable[["Expression"], bool]) -> Iterator["Expression"]:
        if pred(self):
            yield self
        for c in self.children:
            yield from c.collect(pred)

    @property
    def references(self) -> set["Attribute"]:
        out: set[Attribute] = set()
        for node in self.collect(lambda e: isinstance(e, Attribute)):
            out.add(node)  # type: ignore[arg-type]
        return out

    def semantic_equals(self, other: "Expression") -> bool:
        """Structural equality ignoring aliases and cosmetic wrappers."""
        a, b = strip_alias(self), strip_alias(other)
        if isinstance(a, Attribute) and isinstance(b, Attribute):
            return a.expr_id == b.expr_id
        if type(a) is not type(b) or len(a.children) != len(b.children):
            return False
        if isinstance(a, Literal):
            return a.value == b.value and a.dtype == b.dtype  # type: ignore[attr-defined]
        return all(x.semantic_equals(y) for x, y in zip(a.children, b.children))

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.children)
        return f"{type(self).__name__}({inner})"


def strip_alias(expr: Expression) -> Expression:
    while isinstance(expr, Alias):
        expr = expr.child
    return expr


# ----------------------------------------------------------------------
# Leaves
# ----------------------------------------------------------------------


class Literal(Expression):
    """A constant value with a fixed type."""

    def __init__(self, value: Any, dtype: DataType | None = None):
        self.value = value
        if dtype is None:
            dtype = StringType() if value is None else infer_type(value)
        self.dtype = dtype

    @property
    def resolved(self) -> bool:
        return True

    @property
    def foldable(self) -> bool:
        return True

    @property
    def nullable(self) -> bool:
        return self.value is None

    def data_type(self) -> DataType:
        return self.dtype

    def eval(self, row: tuple) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class UnresolvedAttribute(Expression):
    """A column name not yet matched to a relation's output."""

    def __init__(self, name: str, qualifier: str | None = None):
        self.name = name
        self.qualifier = qualifier

    @property
    def resolved(self) -> bool:
        return False

    def __repr__(self) -> str:
        q = f"{self.qualifier}." if self.qualifier else ""
        return f"'{q}{self.name}"


class UnresolvedStar(Expression):
    """``*`` or ``alias.*`` in a select list."""

    def __init__(self, qualifier: str | None = None):
        self.qualifier = qualifier

    @property
    def resolved(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"'{self.qualifier}.*" if self.qualifier else "'*"


class UnresolvedFunction(Expression):
    """A function call by name, not yet resolved to scalar/aggregate."""

    def __init__(self, name: str, args: Sequence["Expression"], distinct: bool = False):
        self.name = name
        self.children = tuple(args)
        self.distinct = distinct

    @property
    def resolved(self) -> bool:
        return False

    def with_new_children(self, children: Sequence["Expression"]) -> "UnresolvedFunction":
        return UnresolvedFunction(self.name, children, self.distinct)

    def __repr__(self) -> str:
        distinct = "DISTINCT " if self.distinct else ""
        return f"'{self.name}({distinct}{', '.join(map(repr, self.children))})"


class Attribute(Expression):
    """A resolved column reference with a globally unique id."""

    def __init__(
        self,
        name: str,
        dtype: DataType,
        expr_id: int | None = None,
        qualifier: str | None = None,
        nullable: bool = True,
    ):
        self.name = name
        self.dtype = dtype
        self.expr_id = expr_id if expr_id is not None else next_expr_id()
        self.qualifier = qualifier
        self._nullable = nullable

    @property
    def resolved(self) -> bool:
        return True

    @property
    def foldable(self) -> bool:
        return False

    @property
    def nullable(self) -> bool:
        return self._nullable

    def data_type(self) -> DataType:
        return self.dtype

    def with_qualifier(self, qualifier: str | None) -> "Attribute":
        return Attribute(self.name, self.dtype, self.expr_id, qualifier, self._nullable)

    def renamed(self, name: str) -> "Attribute":
        return Attribute(name, self.dtype, self.expr_id, self.qualifier, self._nullable)

    def fresh(self) -> "Attribute":
        """Same name/type, new identity (used by aliasing relations)."""
        return Attribute(self.name, self.dtype, None, self.qualifier, self._nullable)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Attribute) and self.expr_id == other.expr_id

    def __hash__(self) -> int:
        return hash(self.expr_id)

    def __repr__(self) -> str:
        q = f"{self.qualifier}." if self.qualifier else ""
        return f"{q}{self.name}#{self.expr_id}"


class BoundReference(Expression):
    """An attribute bound to a tuple ordinal — directly executable."""

    def __init__(self, ordinal: int, dtype: DataType, name: str = "?"):
        self.ordinal = ordinal
        self.dtype = dtype
        self.name = name

    @property
    def resolved(self) -> bool:
        return True

    @property
    def foldable(self) -> bool:
        return False

    def data_type(self) -> DataType:
        return self.dtype

    def eval(self, row: tuple) -> Any:
        return row[self.ordinal]

    def __repr__(self) -> str:
        return f"input[{self.ordinal}:{self.name}]"


# ----------------------------------------------------------------------
# Unary nodes
# ----------------------------------------------------------------------


class UnaryExpression(Expression):
    def __init__(self, child: Expression):
        self.child = child
        self.children = (child,)

    def with_new_children(self, children: Sequence[Expression]) -> Expression:
        return type(self)(children[0])


class Alias(UnaryExpression):
    """Names an expression in a select list."""

    def __init__(self, child: Expression, name: str, expr_id: int | None = None):
        super().__init__(child)
        self.name = name
        self.expr_id = expr_id if expr_id is not None else next_expr_id()

    def with_new_children(self, children: Sequence[Expression]) -> "Alias":
        return Alias(children[0], self.name, self.expr_id)

    def data_type(self) -> DataType:
        return self.child.data_type()

    @property
    def nullable(self) -> bool:
        return self.child.nullable

    def eval(self, row: tuple) -> Any:
        return self.child.eval(row)

    def to_attribute(self) -> Attribute:
        return Attribute(
            self.name, self.child.data_type(), self.expr_id, None, self.child.nullable
        )

    def __repr__(self) -> str:
        return f"{self.child!r} AS {self.name}"


class Not(UnaryExpression):
    def data_type(self) -> DataType:
        return BooleanType()

    def eval(self, row: tuple) -> Any:
        value = self.child.eval(row)
        return None if value is None else (not value)


class UnaryMinus(UnaryExpression):
    def data_type(self) -> DataType:
        return self.child.data_type()

    def eval(self, row: tuple) -> Any:
        value = self.child.eval(row)
        return None if value is None else -value


class IsNull(UnaryExpression):
    def data_type(self) -> DataType:
        return BooleanType()

    @property
    def nullable(self) -> bool:
        return False

    def eval(self, row: tuple) -> Any:
        return self.child.eval(row) is None


class IsNotNull(UnaryExpression):
    def data_type(self) -> DataType:
        return BooleanType()

    @property
    def nullable(self) -> bool:
        return False

    def eval(self, row: tuple) -> Any:
        return self.child.eval(row) is not None


class Cast(UnaryExpression):
    """Explicit or analyzer-inserted type conversion."""

    _casters: dict[str, Callable[[Any], Any]] = {
        "boolean": bool,
        "integer": int,
        "long": int,
        "bigint": int,
        "double": float,
        "string": str,
        "timestamp": int,
        "date": int,
    }

    def __init__(self, child: Expression, dtype: DataType):
        super().__init__(child)
        self.dtype = dtype

    def with_new_children(self, children: Sequence[Expression]) -> "Cast":
        return Cast(children[0], self.dtype)

    def data_type(self) -> DataType:
        return self.dtype

    def eval(self, row: tuple) -> Any:
        value = self.child.eval(row)
        if value is None:
            return None
        caster = self._casters.get(self.dtype.name)
        if caster is None:
            raise AnalysisError(f"cannot cast to {self.dtype.name}")
        try:
            return caster(value)
        except (TypeError, ValueError):
            return None  # SQL CAST semantics: invalid casts produce NULL

    def __repr__(self) -> str:
        return f"CAST({self.child!r} AS {self.dtype.name})"


# ----------------------------------------------------------------------
# Binary nodes
# ----------------------------------------------------------------------


class BinaryExpression(Expression):
    symbol = "?"

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right
        self.children = (left, right)

    def with_new_children(self, children: Sequence[Expression]) -> Expression:
        return type(self)(children[0], children[1])

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class BinaryArithmetic(BinaryExpression):
    op: Callable[[Any, Any], Any]
    #: Python operator token used by :mod:`repro.codegen` when the node
    #: compiles to a plain infix expression (None = needs special
    #: handling, e.g. the divide-by-zero guard).
    py_op: str | None = None

    def data_type(self) -> DataType:
        return common_type(self.left.data_type(), self.right.data_type())

    def eval(self, row: tuple) -> Any:
        lhs = self.left.eval(row)
        if lhs is None:
            return None
        rhs = self.right.eval(row)
        if rhs is None:
            return None
        return type(self).op(lhs, rhs)


class Add(BinaryArithmetic):
    symbol = "+"
    py_op = "+"
    op = staticmethod(lambda a, b: a + b)


class Subtract(BinaryArithmetic):
    symbol = "-"
    py_op = "-"
    op = staticmethod(lambda a, b: a - b)


class Multiply(BinaryArithmetic):
    symbol = "*"
    py_op = "*"
    op = staticmethod(lambda a, b: a * b)


class Divide(BinaryArithmetic):
    symbol = "/"
    op = staticmethod(lambda a, b: None if b == 0 else a / b)

    def data_type(self) -> DataType:
        return DoubleType()


class Modulo(BinaryArithmetic):
    symbol = "%"
    op = staticmethod(lambda a, b: None if b == 0 else a % b)


class BinaryComparison(BinaryExpression):
    op: Callable[[Any, Any], bool]
    #: Python comparison token for :mod:`repro.codegen`.
    py_op: str | None = None

    def data_type(self) -> DataType:
        return BooleanType()

    def eval(self, row: tuple) -> Any:
        lhs = self.left.eval(row)
        if lhs is None:
            return None
        rhs = self.right.eval(row)
        if rhs is None:
            return None
        return type(self).op(lhs, rhs)


class EqualTo(BinaryComparison):
    symbol = "="
    py_op = "=="
    op = staticmethod(lambda a, b: a == b)


class NotEqualTo(BinaryComparison):
    symbol = "!="
    py_op = "!="
    op = staticmethod(lambda a, b: a != b)


class LessThan(BinaryComparison):
    symbol = "<"
    py_op = "<"
    op = staticmethod(lambda a, b: a < b)


class LessThanOrEqual(BinaryComparison):
    symbol = "<="
    py_op = "<="
    op = staticmethod(lambda a, b: a <= b)


class GreaterThan(BinaryComparison):
    symbol = ">"
    py_op = ">"
    op = staticmethod(lambda a, b: a > b)


class GreaterThanOrEqual(BinaryComparison):
    symbol = ">="
    py_op = ">="
    op = staticmethod(lambda a, b: a >= b)


class And(BinaryExpression):
    symbol = "AND"

    def data_type(self) -> DataType:
        return BooleanType()

    def eval(self, row: tuple) -> Any:
        lhs = self.left.eval(row)
        if lhs is False:
            return False
        rhs = self.right.eval(row)
        if rhs is False:
            return False
        if lhs is None or rhs is None:
            return None
        return True


class Or(BinaryExpression):
    symbol = "OR"

    def data_type(self) -> DataType:
        return BooleanType()

    def eval(self, row: tuple) -> Any:
        lhs = self.left.eval(row)
        if lhs is True:
            return True
        rhs = self.right.eval(row)
        if rhs is True:
            return True
        if lhs is None or rhs is None:
            return None
        return False


class In(Expression):
    """``expr IN (e1, e2, ...)`` with SQL null semantics."""

    def __init__(self, value: Expression, options: Sequence[Expression]):
        self.value = value
        self.options = tuple(options)
        self.children = (value, *self.options)

    def with_new_children(self, children: Sequence[Expression]) -> "In":
        return In(children[0], children[1:])

    def data_type(self) -> DataType:
        return BooleanType()

    def eval(self, row: tuple) -> Any:
        needle = self.value.eval(row)
        if needle is None:
            return None
        saw_null = False
        for option in self.options:
            candidate = option.eval(row)
            if candidate is None:
                saw_null = True
            elif candidate == needle:
                return True
        return None if saw_null else False

    def __repr__(self) -> str:
        return f"{self.value!r} IN ({', '.join(map(repr, self.options))})"


class InSubquery(Expression):
    """``expr IN (SELECT ...)`` — a parse-time marker.

    Desugared by the session (before analysis) into a left-semi join
    (or left-anti for ``NOT IN``). Only valid as a WHERE conjunct; the
    subquery must produce exactly one column. Note: the anti-join
    rewrite of ``NOT IN`` is null-naive (a NULL-producing subquery does
    not blank the result as strict SQL would).
    """

    def __init__(self, value: Expression, plan: "object", negated: bool = False):
        self.value = value
        self.plan = plan  # a LogicalPlan; typed loosely to avoid cycles
        self.negated = negated
        self.children = (value,)

    @property
    def resolved(self) -> bool:
        return False  # must be desugared before analysis completes

    def with_new_children(self, children: Sequence["Expression"]) -> "InSubquery":
        return InSubquery(children[0], self.plan, self.negated)

    def __repr__(self) -> str:
        negated = "NOT " if self.negated else ""
        return f"{self.value!r} {negated}IN (<subquery>)"


class Like(BinaryExpression):
    """SQL LIKE with ``%`` and ``_`` wildcards."""

    symbol = "LIKE"

    def data_type(self) -> DataType:
        return BooleanType()

    def eval(self, row: tuple) -> Any:
        value = self.left.eval(row)
        pattern = self.right.eval(row)
        if value is None or pattern is None:
            return None
        import re

        regex = "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$"
        return re.match(regex, value) is not None


class CaseWhen(Expression):
    """``CASE WHEN c1 THEN v1 ... ELSE d END``."""

    def __init__(
        self,
        branches: Sequence[tuple[Expression, Expression]],
        else_value: Expression | None = None,
    ):
        self.branches = [(c, v) for c, v in branches]
        self.else_value = else_value
        flat: list[Expression] = []
        for cond, value in self.branches:
            flat.extend((cond, value))
        if else_value is not None:
            flat.append(else_value)
        self.children = tuple(flat)

    def with_new_children(self, children: Sequence[Expression]) -> "CaseWhen":
        pairs = [
            (children[i], children[i + 1]) for i in range(0, 2 * len(self.branches), 2)
        ]
        else_value = children[-1] if self.else_value is not None else None
        return CaseWhen(pairs, else_value)

    def data_type(self) -> DataType:
        return self.branches[0][1].data_type()

    def eval(self, row: tuple) -> Any:
        for cond, value in self.branches:
            if cond.eval(row) is True:
                return value.eval(row)
        if self.else_value is not None:
            return self.else_value.eval(row)
        return None

    def __repr__(self) -> str:
        parts = " ".join(f"WHEN {c!r} THEN {v!r}" for c, v in self.branches)
        tail = f" ELSE {self.else_value!r}" if self.else_value is not None else ""
        return f"CASE {parts}{tail} END"


class Coalesce(Expression):
    """First non-null argument."""

    def __init__(self, args: Sequence[Expression]):
        self.children = tuple(args)
        if not self.children:
            raise AnalysisError("coalesce requires at least one argument")

    def with_new_children(self, children: Sequence[Expression]) -> "Coalesce":
        return Coalesce(children)

    def data_type(self) -> DataType:
        return self.children[0].data_type()

    def eval(self, row: tuple) -> Any:
        for child in self.children:
            value = child.eval(row)
            if value is not None:
                return value
        return None


# ----------------------------------------------------------------------
# Scalar functions
# ----------------------------------------------------------------------


class ScalarFunction(Expression):
    """A named scalar function with a Python implementation.

    Null-in/null-out by default: if any argument is NULL the result is
    NULL without invoking the implementation.
    """

    def __init__(
        self,
        name: str,
        args: Sequence[Expression],
        fn: Callable[..., Any],
        return_type: DataType,
    ):
        self.name = name
        self.children = tuple(args)
        self.fn = fn
        self.return_type = return_type

    def with_new_children(self, children: Sequence[Expression]) -> "ScalarFunction":
        return ScalarFunction(self.name, children, self.fn, self.return_type)

    def data_type(self) -> DataType:
        return self.return_type

    def eval(self, row: tuple) -> Any:
        args = []
        for child in self.children:
            value = child.eval(row)
            if value is None:
                return None
            args.append(value)
        return self.fn(*args)

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.children))})"


#: Scalar function registry: name → (implementation, return type factory).
SCALAR_FUNCTIONS: dict[str, tuple[Callable[..., Any], Callable[[list[DataType]], DataType]]] = {
    "upper": (lambda s: s.upper(), lambda _ts: StringType()),
    "lower": (lambda s: s.lower(), lambda _ts: StringType()),
    "length": (lambda s: len(s), lambda _ts: LongType()),
    "abs": (lambda x: abs(x), lambda ts: ts[0]),
    "substring": (lambda s, pos, ln: s[pos - 1 : pos - 1 + ln], lambda _ts: StringType()),
    "concat": (lambda *xs: "".join(str(x) for x in xs), lambda _ts: StringType()),
    "year": (lambda ms: 1970 + ms // (365 * 24 * 3600 * 1000), lambda _ts: LongType()),
    "trim": (lambda s: s.strip(), lambda _ts: StringType()),
    "ltrim": (lambda s: s.lstrip(), lambda _ts: StringType()),
    "rtrim": (lambda s: s.rstrip(), lambda _ts: StringType()),
    "replace": (lambda s, old, new: s.replace(old, new), lambda _ts: StringType()),
    "round": (lambda x, digits=0: round(x, int(digits)), lambda _ts: DoubleType()),
    "floor": (lambda x: int(x // 1), lambda _ts: LongType()),
    "ceil": (lambda x: -int((-x) // 1), lambda _ts: LongType()),
    "greatest": (lambda *xs: max(xs), lambda ts: ts[0]),
    "least": (lambda *xs: min(xs), lambda ts: ts[0]),
    "sqrt": (lambda x: x ** 0.5, lambda _ts: DoubleType()),
    "pow": (lambda x, y: x ** y, lambda _ts: DoubleType()),
    "reverse": (lambda s: s[::-1], lambda _ts: StringType()),
    "startswith": (lambda s, p: s.startswith(p), lambda _ts: BooleanType()),
    "endswith": (lambda s, p: s.endswith(p), lambda _ts: BooleanType()),
    "contains": (lambda s, p: p in s, lambda _ts: BooleanType()),
}


def make_scalar_function(name: str, args: Sequence[Expression]) -> ScalarFunction:
    key = name.lower()
    if key not in SCALAR_FUNCTIONS:
        raise AnalysisError(f"unknown function: {name}")
    fn, type_factory = SCALAR_FUNCTIONS[key]
    arg_types = [a.data_type() if a.resolved else StringType() for a in args]
    return ScalarFunction(key, args, fn, type_factory(arg_types))


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------


class AggregateExpression(Expression):
    """An aggregate call in a select/agg list (e.g. ``sum(x)``).

    Carries the function name; the physical planner maps it onto a
    streaming accumulator (:mod:`repro.sql.physical`).
    """

    FUNCTIONS = ("count", "sum", "avg", "min", "max", "count_distinct", "first")

    def __init__(self, fn_name: str, child: Expression | None, distinct: bool = False):
        self.fn_name = fn_name.lower()
        if self.fn_name not in self.FUNCTIONS:
            raise AnalysisError(f"unknown aggregate function: {fn_name}")
        self.child = child
        self.distinct = distinct
        self.children = (child,) if child is not None else ()

    def with_new_children(self, children: Sequence[Expression]) -> "AggregateExpression":
        child = children[0] if children else None
        return AggregateExpression(self.fn_name, child, self.distinct)

    @property
    def foldable(self) -> bool:
        return False

    @property
    def nullable(self) -> bool:
        return self.fn_name != "count"

    def data_type(self) -> DataType:
        if self.fn_name in ("count", "count_distinct"):
            return LongType()
        if self.fn_name == "avg":
            return DoubleType()
        assert self.child is not None
        return self.child.data_type()

    def __repr__(self) -> str:
        inner = repr(self.child) if self.child is not None else "*"
        distinct = "DISTINCT " if self.distinct else ""
        return f"{self.fn_name}({distinct}{inner})"


class SortOrder(Expression):
    """Sort direction wrapper used by ORDER BY / ``DataFrame.order_by``."""

    def __init__(self, child: Expression, ascending: bool = True, nulls_first: bool = True):
        self.child = child
        self.ascending = ascending
        self.nulls_first = nulls_first
        self.children = (child,)

    def with_new_children(self, children: Sequence[Expression]) -> "SortOrder":
        return SortOrder(children[0], self.ascending, self.nulls_first)

    def data_type(self) -> DataType:
        return self.child.data_type()

    def __repr__(self) -> str:
        direction = "ASC" if self.ascending else "DESC"
        return f"{self.child!r} {direction}"


def split_conjuncts(expr: Expression) -> list[Expression]:
    """Flatten a predicate into its AND-ed conjuncts."""
    if isinstance(expr, And):
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def combine_conjuncts(exprs: Sequence[Expression]) -> Expression | None:
    """Rebuild a predicate from conjuncts; None for an empty list."""
    result: Expression | None = None
    for expr in exprs:
        result = expr if result is None else And(result, expr)
    return result
