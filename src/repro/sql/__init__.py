"""Spark-SQL substrate: DataFrame API, Catalyst-style optimizer, SQL.

Layers, mirroring Figure 1 of the paper:

* **analysis layer** — :mod:`repro.sql.analysis` resolves names/types;
* **logical optimization layer** — :mod:`repro.sql.optimizer` runs
  rule batches to a fixed point;
* **physical planning layer** — :mod:`repro.sql.planner` applies
  strategies (including *injected* ones — the extension point the
  Indexed DataFrame uses) to produce executable operators;
* **physical execution layer** — :mod:`repro.sql.physical` operators
  compile to RDDs on the engine.
"""

from repro.sql.dataframe import DataFrame, GroupedData
from repro.sql.functions import (
    avg,
    coalesce,
    col,
    count,
    count_distinct,
    lit,
    max_,
    min_,
    sum_,
    when,
)
from repro.sql.session import Session
from repro.sql.types import (
    BooleanType,
    DataType,
    DoubleType,
    IntegerType,
    LongType,
    Row,
    StringType,
    StructField,
    StructType,
    TimestampType,
)

__all__ = [
    "DataFrame",
    "GroupedData",
    "Session",
    "Row",
    "DataType",
    "BooleanType",
    "DoubleType",
    "IntegerType",
    "LongType",
    "StringType",
    "TimestampType",
    "StructField",
    "StructType",
    "col",
    "lit",
    "when",
    "count",
    "count_distinct",
    "sum_",
    "avg",
    "min_",
    "max_",
    "coalesce",
]
