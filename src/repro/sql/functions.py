"""Column functions: the user-facing expression constructors.

Mirrors ``pyspark.sql.functions``: ``col``/``lit`` build references and
constants, ``when`` builds conditionals, and the aggregate helpers
(``count``, ``sum_``, ...) build aggregate expressions for
``GroupedData.agg`` / ``DataFrame.agg``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.sql.column import Column
from repro.sql.expressions import (
    AggregateExpression,
    Coalesce,
    Expression,
    Literal,
    UnresolvedAttribute,
    UnresolvedFunction,
)

__all__ = [
    "col",
    "lit",
    "when",
    "coalesce",
    "count",
    "count_distinct",
    "sum_",
    "avg",
    "min_",
    "max_",
    "first",
    "expr_function",
]


def col(name: str) -> Column:
    """Reference a column by (optionally qualified) name."""
    if "." in name:
        qualifier, _, base = name.partition(".")
        return Column(UnresolvedAttribute(base, qualifier))
    return Column(UnresolvedAttribute(name))


def lit(value: Any) -> Column:
    """A literal value column."""
    if isinstance(value, Column):
        return value
    return Column(Literal(value))


def when(condition: Column, value: Any) -> Column:
    """Start a CASE WHEN chain: ``when(c, v).otherwise(d)``."""
    return Column._case_when(condition, value)


def _col_expr(item: Column | str) -> Expression:
    """Strings name columns here (pyspark convention), not literals."""
    if isinstance(item, Column):
        return item.expr
    if "." in item:
        qualifier, _, base = item.partition(".")
        return UnresolvedAttribute(base, qualifier)
    return UnresolvedAttribute(item)


def coalesce(*cols: Column | str) -> Column:
    exprs = [_col_expr(c) for c in cols]
    return Column(Coalesce(exprs))


def _agg(fn_name: str, column: Column | str | None, distinct: bool = False) -> Column:
    child: Expression | None
    if column is None:
        child = None
    else:
        child = _col_expr(column)
    return Column(AggregateExpression(fn_name, child, distinct))


def count(column: Column | str | None = None) -> Column:
    """``count(col)`` (non-null) or ``count()`` / ``count('*')`` for rows."""
    if isinstance(column, str) and column == "*":
        column = None
    return _agg("count", column)


def count_distinct(column: Column | str) -> Column:
    return _agg("count_distinct", column, distinct=True)


def sum_(column: Column | str) -> Column:
    return _agg("sum", column)


def avg(column: Column | str) -> Column:
    return _agg("avg", column)


def min_(column: Column | str) -> Column:
    return _agg("min", column)


def max_(column: Column | str) -> Column:
    return _agg("max", column)


def first(column: Column | str) -> Column:
    return _agg("first", column)


def expr_function(name: str, *args: Column | str) -> Column:
    """Call a registered scalar function by name (e.g. ``upper``).

    String arguments name columns; wrap constants with :func:`lit`.
    """
    exprs: Sequence[Expression] = [_col_expr(a) for a in args]
    return Column(UnresolvedFunction(name, exprs))
