"""Session: the SparkSession analogue and the library extension point.

A session owns the engine context, analyzer, optimizer, planner, and a
catalog of temp views. Extensions — such as the Indexed DataFrame's
optimizer rule and planner strategy — register through
:class:`SessionExtensions` *before or after* session creation, exactly
mirroring how the paper's library injects itself into stock Spark.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.config import Config
from repro.engine.context import EngineContext
from repro.errors import AnalysisError, ReproError
from repro.sql.analysis import Analyzer
from repro.sql.dataframe import DataFrame
from repro.sql.expressions import Expression
from repro.sql.logical import LogicalPlan, Relation, UnresolvedRelation
from repro.sql.optimizer import Optimizer, Rule
from repro.sql.planner import Planner, Strategy
from repro.sql.relation import RowRelation
from repro.sql.types import StructType


class Catalog:
    """Temp-view registry: name → logical plan."""

    def __init__(self) -> None:
        self._tables: dict[str, LogicalPlan] = {}

    def register(self, name: str, plan: LogicalPlan) -> None:
        self._tables[name.lower()] = plan

    def lookup(self, name: str) -> LogicalPlan:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise AnalysisError(f"table or view not found: {name}") from None

    def drop(self, name: str) -> bool:
        return self._tables.pop(name.lower(), None) is not None

    def names(self) -> list[str]:
        return sorted(self._tables)


class SessionExtensions:
    """Injected rules/strategies (Spark's ``SparkSessionExtensions``)."""

    def __init__(self) -> None:
        self.optimizer_rules: list[Rule] = []
        self.planner_strategies: list[Strategy] = []

    def inject_optimizer_rule(self, rule: Rule) -> None:
        self.optimizer_rules.append(rule)

    def inject_planner_strategy(self, strategy: Strategy) -> None:
        self.planner_strategies.append(strategy)


class Session:
    """Entry point for DataFrame and SQL workloads.

    Example::

        session = Session(Config(executor_threads=2))
        df = session.create_dataframe(
            [(1, "ann"), (2, "bob")], [("id", "long"), ("name", "string")]
        )
        df.create_or_replace_temp_view("people")
        session.sql("SELECT name FROM people WHERE id = 2").show()
    """

    def __init__(
        self, config: Config | None = None, extensions: SessionExtensions | None = None
    ):
        self.config = config or Config()
        self.ctx = EngineContext(self.config)
        self.catalog = Catalog()
        self.extensions = extensions or SessionExtensions()
        self.analyzer = Analyzer()
        # Durable state (WAL + checkpoints + recovery). Imported lazily
        # and only when enabled: with the flag off the session carries
        # no durability machinery at all and behaves bit-identically.
        self.durability = None
        if self.config.durability_enabled:
            from repro.durability import DurabilityCoordinator

            self.durability = DurabilityCoordinator(self)
        # Serving layer (admission control, deadlines, memory budgets,
        # circuit breakers). Same lazy pattern: with the flag off the
        # session carries none of the governance machinery.
        self.serving = None
        if self.config.serving_enabled:
            from repro.serving import ServingRuntime

            self.serving = ServingRuntime(self)
        self._rebuild_pipeline()

    def _rebuild_pipeline(self) -> None:
        """(Re)build optimizer/planner after extension registration."""
        from repro.sql.plan_cache import PlanCache

        self.optimizer = Optimizer(extra_rules=self.extensions.optimizer_rules)
        self.planner = Planner(
            self, extra_strategies=self.extensions.planner_strategies
        )
        # Rebuilt (empty) alongside the optimizer: a cached template is
        # only valid for the rule set that produced it.
        self.plan_cache = (
            PlanCache(self.config.plan_cache_size)
            if self.config.plan_cache_size > 0
            else None
        )

    def optimize_plan(self, analyzed: LogicalPlan) -> LogicalPlan:
        """Optimize an analyzed plan, memoizing the standard batches.

        The plan cache keys on a fingerprint of the analyzed tree with
        comparison literals masked as parameter slots, so repeated
        query shapes (``id = ?``) skip the rule fixed-point entirely.
        Extension rules always run fresh — they bake literal values and
        MVCC versions into the plan (see :mod:`repro.sql.plan_cache`).
        """
        cache = self.plan_cache
        if cache is None:
            return self.optimizer.optimize(analyzed)
        from repro.sql.plan_cache import fingerprint

        metrics = self.ctx.scheduler.metrics
        key, slots, pins = fingerprint(analyzed)
        # Full-plan level: extension output (index rewrites with their
        # literal keys and MVCC versions baked in) memoized by exact
        # (shape, values). Versions live in the fingerprint key, so an
        # append invalidates by construction and a stale bitmap-vs-
        # cTrie era plan is never replayed.
        full = cache.lookup_full(key, slots)
        if full is not None:
            metrics.bump("plan_cache_hits")
            metrics.bump("plan_cache_full_hits")
            return full
        plan = cache.lookup(key, slots)
        if plan is None:
            metrics.bump("plan_cache_misses")
            plan = self.optimizer.optimize_standard(analyzed)
            cache.insert(key, slots, pins, plan)
        else:
            metrics.bump("plan_cache_hits")
        final = self.optimizer.run_extensions(plan)
        cache.insert_full(key, slots, pins, final)
        return final

    # ------------------------------------------------------------------
    # DataFrame construction
    # ------------------------------------------------------------------

    def create_dataframe(
        self,
        data: Sequence[Sequence[Any] | Mapping[str, Any]],
        schema: StructType | Sequence[tuple[str, Any]],
        num_partitions: int | None = None,
        validate: bool = True,
    ) -> DataFrame:
        """Create a DataFrame from local rows (tuples or dicts)."""
        if not isinstance(schema, StructType):
            schema = StructType.from_pairs(list(schema))
        rows: list[tuple] = []
        for item in data:
            if isinstance(item, Mapping):
                rows.append(tuple(item.get(name) for name in schema.names))
            else:
                rows.append(tuple(item))
        relation = RowRelation.from_rows(
            schema,
            rows,
            num_partitions or self.config.default_parallelism,
            validate=validate,
        )
        return DataFrame(self, Relation(relation))

    def table(self, name: str) -> DataFrame:
        return DataFrame(self, self.catalog.lookup(name))

    def create_or_replace_temp_view(self, name: str, df: DataFrame) -> None:
        self.catalog.register(name, df.plan)

    # ------------------------------------------------------------------
    # SQL
    # ------------------------------------------------------------------

    def sql(self, text: str) -> DataFrame:
        """Run a SQL statement.

        ``SELECT`` queries return a DataFrame; ``CREATE [OR REPLACE]
        TEMP[ORARY] VIEW name AS SELECT ...`` registers a view and
        returns an empty DataFrame (like Spark's DDL results).
        """
        from repro.sql.parser import parse_query

        ddl = self._try_parse_create_view(text)
        if ddl is not None:
            name, body = ddl
            self.catalog.register(name, parse_query(body))
            from repro.sql.logical import LocalRelation

            return DataFrame(self, LocalRelation([], []))
        return DataFrame(self, parse_query(text))

    @staticmethod
    def _try_parse_create_view(text: str) -> tuple[str, str] | None:
        """Match the CREATE TEMP VIEW prefix; returns (name, query)."""
        import re

        pattern = re.compile(
            r"^\s*create\s+(?:or\s+replace\s+)?temp(?:orary)?\s+view\s+"
            r"([A-Za-z_][A-Za-z0-9_]*)\s+as\s+(.*)$",
            re.IGNORECASE | re.DOTALL,
        )
        match = pattern.match(text)
        if match is None:
            if re.match(r"^\s*create\b", text, re.IGNORECASE):
                raise AnalysisError(
                    "only CREATE [OR REPLACE] TEMP VIEW <name> AS <select> "
                    "is supported"
                )
            return None
        return match.group(1), match.group(2)

    def parse_expression(self, text: str) -> Expression:
        from repro.sql.parser import parse_expression

        return parse_expression(text)

    def resolve_tables(self, plan: LogicalPlan) -> LogicalPlan:
        """Replace UnresolvedRelation leaves with catalog plans and
        desugar IN-subqueries into semi/anti joins."""

        from repro.sql.logical import instantiate_plan

        def resolve(node: LogicalPlan) -> LogicalPlan:
            if isinstance(node, UnresolvedRelation):
                resolved = self.resolve_tables(self.catalog.lookup(node.name))
                # Fresh ids per reference: a table used twice (self-join)
                # must not share attribute identities.
                return instantiate_plan(resolved)
            return node

        return self._desugar_subqueries(plan.transform_up(resolve))

    def _desugar_subqueries(self, plan: LogicalPlan) -> LogicalPlan:
        """``WHERE x IN (SELECT ...)`` → left-semi join (anti for NOT)."""
        from repro.sql.expressions import (
            EqualTo,
            InSubquery,
            combine_conjuncts,
            split_conjuncts,
        )
        from repro.sql.logical import Filter, Join

        def desugar(node: LogicalPlan) -> LogicalPlan:
            if not isinstance(node, Filter):
                self._reject_stray_subqueries(node)
                return node
            conjuncts = split_conjuncts(node.condition)
            markers = [c for c in conjuncts if isinstance(c, InSubquery)]
            if not markers:
                for conjunct in conjuncts:
                    self._reject_nested_subqueries(conjunct)
                return node
            child = node.child
            for marker in markers:
                sub_plan = self.resolve_tables(marker.plan)
                analyzed = self.analyzer.analyze(sub_plan)
                output = analyzed.output()
                if len(output) != 1:
                    raise AnalysisError(
                        f"IN subquery must return exactly one column, got "
                        f"{len(output)}"
                    )
                how = "anti" if marker.negated else "semi"
                # The tested value belongs to the OUTER scope: resolve
                # it against the filter child now, so it can never be
                # captured by a same-named subquery column.
                value = self._resolve_against(marker.value, child)
                child = Join(child, analyzed, how, EqualTo(value, output[0]))
            rest = combine_conjuncts(
                [c for c in conjuncts if not isinstance(c, InSubquery)]
            )
            return Filter(rest, child) if rest is not None else child

        return plan.transform_up(desugar)

    @staticmethod
    def _resolve_against(expr: "Expression", plan: LogicalPlan) -> "Expression":
        """Best-effort resolution of name references against one plan's
        output (used to pin outer-scope names during desugaring)."""
        from repro.sql.analysis import resolve_name
        from repro.sql.expressions import UnresolvedAttribute

        try:
            attrs = plan.output()
        except (ReproError, AttributeError, TypeError):
            # Child not resolvable yet; fail-stop errors propagate.
            return expr

        def resolve(node: "Expression") -> "Expression":
            if isinstance(node, UnresolvedAttribute):
                found = resolve_name(node.name, node.qualifier, attrs)
                if found is not None:
                    return found
            return node

        return expr.transform_up(resolve)

    @staticmethod
    def _reject_nested_subqueries(expr: "Expression") -> None:
        from repro.sql.expressions import InSubquery

        for _hit in expr.collect(lambda e: isinstance(e, InSubquery)):
            raise AnalysisError(
                "IN (SELECT ...) is only supported as a top-level WHERE conjunct"
            )

    @staticmethod
    def _reject_stray_subqueries(node: LogicalPlan) -> None:
        from repro.sql.expressions import InSubquery

        for expr in node.expressions():
            for _hit in expr.collect(lambda e: isinstance(e, InSubquery)):
                raise AnalysisError(
                    "IN (SELECT ...) is only supported in a WHERE clause"
                )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def serve(
        self,
        text: str,
        *,
        tenant: str = "default",
        deadline_s: float | None = None,
        priority: int = 0,
    ) -> "Any":
        """Run a SQL query through the serving layer.

        Unlike :meth:`sql` (which returns a lazy DataFrame), this
        admits the query through the admission controller, executes it
        under its deadline/memory budgets, and returns a
        :class:`~repro.serving.ServingResult` with the collected rows.
        Raises :class:`~repro.errors.QueryRejectedError` under
        overload and :class:`~repro.errors.QueryCancelledError` when
        the deadline or a memory kill fires.
        """
        if self.serving is None:
            raise AnalysisError(
                "serving is disabled; construct the Session with "
                "Config(serving_enabled=True) or set REPRO_SERVING=1"
            )
        return self.serving.execute(
            text, tenant=tenant, deadline_s=deadline_s, priority=priority
        )

    def stop(self) -> None:
        if self.serving is not None:
            self.serving.cancel_all("session stopped")
        if self.durability is not None:
            self.durability.close()
        self.ctx.stop()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
