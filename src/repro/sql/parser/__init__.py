"""SQL front-end: lexer and recursive-descent parser.

Supports the query subset the paper's workloads need (and then some):
``SELECT`` lists with expressions/aliases/stars, ``FROM`` with aliases
and subqueries, all join types with ``ON``, ``WHERE``, ``GROUP BY`` /
``HAVING``, ``ORDER BY`` with directions, ``LIMIT``, ``UNION [ALL]``,
and a full expression grammar (arithmetic, comparisons, boolean logic,
``IN`` / ``BETWEEN`` / ``LIKE`` / ``IS NULL``, ``CASE WHEN``, function
calls, ``CAST``, ``DISTINCT`` aggregates).
"""

from repro.sql.parser.lexer import Lexer, Token, TokenType
from repro.sql.parser.parser import parse_expression, parse_query

__all__ = ["Lexer", "Token", "TokenType", "parse_expression", "parse_query"]
