"""SQL lexer: text → token stream.

Keywords are case-insensitive; identifiers keep their original case.
String literals use single quotes with ``''`` escaping. Numbers lex as
integers unless they contain ``.`` or an exponent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError

KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "join", "inner", "left", "right", "full", "outer", "cross", "on",
    "as", "and", "or", "not", "in", "is", "null", "like", "between",
    "case", "when", "then", "else", "end", "cast", "distinct", "union",
    "all", "asc", "desc", "true", "false",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r})"


_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),."


class Lexer:
    """Tokenizes SQL text; iterate or call :meth:`tokens`."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def tokens(self) -> list[Token]:
        return list(self)

    def __iter__(self) -> Iterator[Token]:
        text, n = self.text, len(self.text)
        i = 0
        while i < n:
            ch = text[i]
            if ch.isspace():
                i += 1
                continue
            if ch == "-" and i + 1 < n and text[i + 1] == "-":
                # line comment
                while i < n and text[i] != "\n":
                    i += 1
                continue
            start = i
            if ch.isalpha() or ch == "_":
                while i < n and (text[i].isalnum() or text[i] == "_"):
                    i += 1
                word = text[start:i]
                lowered = word.lower()
                if lowered in KEYWORDS:
                    yield Token(TokenType.KEYWORD, lowered, start)
                else:
                    yield Token(TokenType.IDENT, word, start)
                continue
            if ch.isdigit():
                is_float = False
                while i < n and text[i].isdigit():
                    i += 1
                if i < n and text[i] == "." and i + 1 < n and text[i + 1].isdigit():
                    is_float = True
                    i += 1
                    while i < n and text[i].isdigit():
                        i += 1
                if i < n and text[i] in "eE":
                    probe = i + 1
                    if probe < n and text[probe] in "+-":
                        probe += 1
                    if probe < n and text[probe].isdigit():
                        is_float = True
                        i = probe
                        while i < n and text[i].isdigit():
                            i += 1
                kind = TokenType.FLOAT if is_float else TokenType.INT
                yield Token(kind, text[start:i], start)
                continue
            if ch == "'":
                i += 1
                chars: list[str] = []
                while True:
                    if i >= n:
                        raise ParseError("unterminated string literal", start)
                    if text[i] == "'":
                        if i + 1 < n and text[i + 1] == "'":
                            chars.append("'")
                            i += 2
                            continue
                        i += 1
                        break
                    chars.append(text[i])
                    i += 1
                yield Token(TokenType.STRING, "".join(chars), start)
                continue
            if ch == "`":
                i += 1
                ident_start = i
                while i < n and text[i] != "`":
                    i += 1
                if i >= n:
                    raise ParseError("unterminated quoted identifier", start)
                yield Token(TokenType.IDENT, text[ident_start:i], start)
                i += 1
                continue
            matched = False
            for op in _OPERATORS:
                if text.startswith(op, i):
                    yield Token(TokenType.OPERATOR, op, start)
                    i += len(op)
                    matched = True
                    break
            if matched:
                continue
            if ch in _PUNCT:
                yield Token(TokenType.PUNCT, ch, start)
                i += 1
                continue
            raise ParseError(f"unexpected character {ch!r}", i)
        yield Token(TokenType.EOF, "", n)
