"""Recursive-descent SQL parser: tokens → logical plan / expression.

Grammar (roughly)::

    query      := select (UNION ALL? select)*
    select     := SELECT DISTINCT? select_list
                  FROM relation join* where? group? having? order? limit?
    relation   := ident alias? | '(' query ')' alias?
    join       := join_type JOIN relation (ON expr)?
    expr       := or_expr
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | predicate
    predicate  := additive (cmp additive | IS NOT? NULL | NOT? IN (...)
                  | NOT? BETWEEN additive AND additive | NOT? LIKE additive)?
    additive   := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary      := '-' unary | primary
    primary    := literal | CASE ... END | CAST '(' expr AS type ')'
                  | func '(' DISTINCT? args ')' | qualified_ident | '(' expr ')'
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ParseError
from repro.sql.expressions import (
    Add,
    Alias,
    And,
    CaseWhen,
    Cast,
    Divide,
    EqualTo,
    Expression,
    GreaterThan,
    GreaterThanOrEqual,
    In,
    InSubquery,
    IsNotNull,
    IsNull,
    LessThan,
    LessThanOrEqual,
    Like,
    Literal,
    Modulo,
    Multiply,
    Not,
    NotEqualTo,
    Or,
    SortOrder,
    Subtract,
    UnaryMinus,
    UnresolvedAttribute,
    UnresolvedFunction,
    UnresolvedStar,
)
from repro.sql.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Sort,
    SubqueryAlias,
    Union,
    UnresolvedRelation,
)
from repro.sql.parser.lexer import Lexer, Token, TokenType
from repro.sql.types import BooleanType, type_for_name


def parse_query(text: str) -> LogicalPlan:
    """Parse a full SELECT query into an unresolved logical plan."""
    parser = _Parser(Lexer(text).tokens())
    plan = parser.parse_query()
    parser.expect_eof()
    return plan


def parse_expression(text: str) -> Expression:
    """Parse a standalone SQL expression (used by ``df.filter(str)``)."""
    parser = _Parser(Lexer(text).tokens())
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: Sequence[Token]):
        self._tokens = list(tokens)
        self._pos = 0

    # -- token utilities -------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        self._pos += 1
        return token

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> None:
        if not self.accept_keyword(name):
            raise ParseError(
                f"expected {name.upper()}, found {self.current.value!r}",
                self.current.position,
            )

    def accept_punct(self, value: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == value:
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> None:
        if not self.accept_punct(value):
            raise ParseError(
                f"expected {value!r}, found {self.current.value!r}",
                self.current.position,
            )

    def accept_operator(self, *values: str) -> str | None:
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in values:
            self.advance()
            return token.value
        return None

    def expect_eof(self) -> None:
        if self.current.type is not TokenType.EOF:
            raise ParseError(
                f"unexpected trailing input: {self.current.value!r}",
                self.current.position,
            )

    # -- query ------------------------------------------------------------

    def parse_query(self) -> LogicalPlan:
        plan = self.parse_select()
        while self.accept_keyword("union"):
            bag = self.accept_keyword("all")
            right = self.parse_select()
            plan = Union(plan, right)
            if not bag:
                # SQL: bare UNION deduplicates; UNION ALL keeps bags.
                plan = Distinct(plan)
        return plan

    def parse_select(self) -> LogicalPlan:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        select_list = self.parse_select_list()

        self.expect_keyword("from")
        plan = self.parse_relation()
        while True:
            join = self.parse_join(plan)
            if join is None:
                break
            plan = join

        if self.accept_keyword("where"):
            plan = Filter(self.parse_expr(), plan)

        grouping: list[Expression] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            grouping.append(self.parse_expr())
            while self.accept_punct(","):
                grouping.append(self.parse_expr())
            plan = Aggregate(grouping, select_list, plan)
        else:
            plan = Project(select_list, plan)

        if self.accept_keyword("having"):
            plan = Filter(self.parse_expr(), plan)

        if self.accept_keyword("order"):
            self.expect_keyword("by")
            orders = [self.parse_sort_order()]
            while self.accept_punct(","):
                orders.append(self.parse_sort_order())
            plan = Sort(orders, plan)

        if self.accept_keyword("limit"):
            token = self.current
            if token.type is not TokenType.INT:
                raise ParseError("LIMIT expects an integer", token.position)
            self.advance()
            plan = Limit(int(token.value), plan)

        if distinct:
            plan = Distinct(plan)
        return plan

    def parse_select_list(self) -> list[Expression]:
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self) -> Expression:
        token = self.current
        if token.type is TokenType.OPERATOR and token.value == "*":
            self.advance()
            return UnresolvedStar()
        expr = self.parse_expr()
        if self.accept_keyword("as"):
            name = self._expect_ident("alias")
            return Alias(expr, name)
        if self.current.type is TokenType.IDENT:
            return Alias(expr, self.advance().value)
        return expr

    def parse_relation(self) -> LogicalPlan:
        if self.accept_punct("("):
            inner = self.parse_query()
            self.expect_punct(")")
            alias = self._optional_alias()
            if alias is None:
                raise ParseError(
                    "subquery in FROM requires an alias", self.current.position
                )
            return SubqueryAlias(alias, inner)
        name = self._expect_ident("table name")
        plan: LogicalPlan = UnresolvedRelation(name)
        alias = self._optional_alias()
        return SubqueryAlias(alias, plan) if alias else SubqueryAlias(name, plan)

    def _optional_alias(self) -> str | None:
        if self.accept_keyword("as"):
            return self._expect_ident("alias")
        if self.current.type is TokenType.IDENT:
            return self.advance().value
        return None

    def parse_join(self, left: LogicalPlan) -> LogicalPlan | None:
        how = "inner"
        checkpoint = self._pos
        if self.accept_keyword("inner"):
            how = "inner"
        elif self.accept_keyword("left"):
            self.accept_keyword("outer")
            how = "left"
        elif self.accept_keyword("right"):
            self.accept_keyword("outer")
            how = "right"
        elif self.accept_keyword("full"):
            self.accept_keyword("outer")
            how = "full"
        elif self.accept_keyword("cross"):
            how = "cross"
        if not self.accept_keyword("join"):
            self._pos = checkpoint
            return None
        right = self.parse_relation()
        condition: Expression | None = None
        if how != "cross":
            self.expect_keyword("on")
            condition = self.parse_expr()
        return Join(left, right, how, condition)

    def parse_sort_order(self) -> SortOrder:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return SortOrder(expr, ascending)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        expr = self.parse_and()
        while self.accept_keyword("or"):
            expr = Or(expr, self.parse_and())
        return expr

    def parse_and(self) -> Expression:
        expr = self.parse_not()
        while self.accept_keyword("and"):
            expr = And(expr, self.parse_not())
        return expr

    def parse_not(self) -> Expression:
        if self.accept_keyword("not"):
            return Not(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expression:
        expr = self.parse_additive()
        op = self.accept_operator("=", "!=", "<>", "<", "<=", ">", ">=")
        if op is not None:
            right = self.parse_additive()
            mapping = {
                "=": EqualTo,
                "!=": NotEqualTo,
                "<>": NotEqualTo,
                "<": LessThan,
                "<=": LessThanOrEqual,
                ">": GreaterThan,
                ">=": GreaterThanOrEqual,
            }
            return mapping[op](expr, right)
        if self.accept_keyword("is"):
            negate = self.accept_keyword("not")
            self.expect_keyword("null")
            return IsNotNull(expr) if negate else IsNull(expr)
        negate = self.accept_keyword("not")
        if self.accept_keyword("in"):
            self.expect_punct("(")
            if self.current.is_keyword("select"):
                subplan = self.parse_query()
                self.expect_punct(")")
                return InSubquery(expr, subplan, negated=negate)
            options = [self.parse_expr()]
            while self.accept_punct(","):
                options.append(self.parse_expr())
            self.expect_punct(")")
            result: Expression = In(expr, options)
            return Not(result) if negate else result
        if self.accept_keyword("between"):
            low = self.parse_additive()
            self.expect_keyword("and")
            high = self.parse_additive()
            result = And(GreaterThanOrEqual(expr, low), LessThanOrEqual(expr, high))
            return Not(result) if negate else result
        if self.accept_keyword("like"):
            pattern = self.parse_additive()
            result = Like(expr, pattern)
            return Not(result) if negate else result
        if negate:
            raise ParseError(
                "NOT must precede IN / BETWEEN / LIKE here", self.current.position
            )
        return expr

    def parse_additive(self) -> Expression:
        expr = self.parse_multiplicative()
        while True:
            op = self.accept_operator("+", "-")
            if op is None:
                return expr
            right = self.parse_multiplicative()
            expr = Add(expr, right) if op == "+" else Subtract(expr, right)

    def parse_multiplicative(self) -> Expression:
        expr = self.parse_unary()
        while True:
            op = self.accept_operator("*", "/", "%")
            if op is None:
                return expr
            right = self.parse_unary()
            node = {"*": Multiply, "/": Divide, "%": Modulo}[op]
            expr = node(expr, right)

    def parse_unary(self) -> Expression:
        if self.accept_operator("-"):
            return UnaryMinus(self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.current
        if token.type is TokenType.INT:
            self.advance()
            return Literal(int(token.value))
        if token.type is TokenType.FLOAT:
            self.advance()
            return Literal(float(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("true"):
            self.advance()
            return Literal(True, BooleanType())
        if token.is_keyword("false"):
            self.advance()
            return Literal(False, BooleanType())
        if token.is_keyword("null"):
            self.advance()
            return Literal(None)
        if token.is_keyword("case"):
            return self.parse_case()
        if token.is_keyword("cast"):
            self.advance()
            self.expect_punct("(")
            inner = self.parse_expr()
            self.expect_keyword("as")
            type_name = self._expect_ident("type name")
            self.expect_punct(")")
            return Cast(inner, type_for_name(type_name))
        if self.accept_punct("("):
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        if token.type is TokenType.IDENT or token.type is TokenType.KEYWORD:
            return self.parse_identifier_or_call()
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def parse_case(self) -> Expression:
        self.expect_keyword("case")
        branches: list[tuple[Expression, Expression]] = []
        else_value: Expression | None = None
        while self.accept_keyword("when"):
            condition = self.parse_expr()
            self.expect_keyword("then")
            branches.append((condition, self.parse_expr()))
        if self.accept_keyword("else"):
            else_value = self.parse_expr()
        self.expect_keyword("end")
        if not branches:
            raise ParseError("CASE requires at least one WHEN", self.current.position)
        return CaseWhen(branches, else_value)

    def parse_identifier_or_call(self) -> Expression:
        token = self.advance()
        name = token.value
        if self.accept_punct("("):
            distinct = self.accept_keyword("distinct")
            args: list[Expression] = []
            if self.current.type is TokenType.OPERATOR and self.current.value == "*":
                self.advance()  # count(*)
            elif not (
                self.current.type is TokenType.PUNCT and self.current.value == ")"
            ):
                args.append(self.parse_expr())
                while self.accept_punct(","):
                    args.append(self.parse_expr())
            self.expect_punct(")")
            return UnresolvedFunction(name, args, distinct)
        if self.accept_punct("."):
            nxt = self.current
            if nxt.type is TokenType.OPERATOR and nxt.value == "*":
                self.advance()
                return UnresolvedStar(name)
            column = self._expect_ident("column name")
            return UnresolvedAttribute(column, name)
        return UnresolvedAttribute(name)

    def _expect_ident(self, what: str) -> str:
        token = self.current
        if token.type is TokenType.IDENT:
            self.advance()
            return token.value
        raise ParseError(f"expected {what}, found {token.value!r}", token.position)
